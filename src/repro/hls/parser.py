"""Recursive-descent parser for mini-C.

Grammar (EBNF, whitespace/comments elided)::

    program    := statement*
    statement  := decl | assign ';' | if | for | ';'
    decl       := ('in'|'out')? type declarator (',' declarator)* ';'
    declarator := IDENT ('[' NUMBER ']')? ('=' expr)?
    assign     := lvalue ('='|'+='|'-='|'*='|'/='|'%='|'&='|'|='|'^='|'<<='|'>>=') expr
                | lvalue '++' | lvalue '--'
    if         := 'if' '(' expr ')' block ('else' block)?
    for        := 'for' '(' assign ';' expr ';' assign ')' block
    block      := '{' statement* '}' | statement
    lvalue     := IDENT ('[' expr ']')?

Expressions use C precedence: ternary > logical-or > logical-and >
bit-or > bit-xor > bit-and > equality > relational > shift > additive >
multiplicative > unary > primary.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hls.ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Conditional,
    Decl,
    Expr,
    For,
    If,
    NumberLit,
    Program,
    Stmt,
    UnaryOp,
    VarRef,
)
from repro.hls.lexer import Token, TokenKind, tokenize

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

# Binary precedence climbing table: level -> operators at that level.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._current
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_op(self, text: str) -> Token:
        token = self._current
        if not token.is_op(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line, token.column)
        return self._advance()

    # -- program --------------------------------------------------------------
    def parse_program(self, name: str = "program") -> Program:
        statements: list[Stmt] = []
        while self._current.kind is not TokenKind.EOF:
            statements.extend(self._parse_statement())
        return Program(statements=statements, name=name)

    # -- statements -----------------------------------------------------------
    def _parse_statement(self) -> list[Stmt]:
        token = self._current
        if token.is_punct(";"):
            self._advance()
            return []
        if token.is_keyword("in", "out", "int", "short", "char"):
            return self._parse_decl()
        if token.is_keyword("if"):
            return [self._parse_if()]
        if token.is_keyword("for"):
            return [self._parse_for()]
        if token.kind is TokenKind.IDENT:
            assign = self._parse_assign()
            self._expect_punct(";")
            return [assign]
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    def _parse_decl(self) -> list[Decl]:
        token = self._current
        qualifier = ""
        if token.is_keyword("in", "out"):
            qualifier = token.text
            self._advance()
        type_token = self._current
        if not type_token.is_keyword("int", "short", "char"):
            raise ParseError(
                f"expected a type, found {type_token.text!r}",
                type_token.line,
                type_token.column,
            )
        self._advance()
        declarators: list[Decl] = []
        while True:
            name_token = self._expect_ident()
            array_size: int | None = None
            init: Expr | None = None
            if self._current.is_punct("["):
                self._advance()
                size_token = self._current
                if size_token.kind is not TokenKind.NUMBER:
                    raise ParseError(
                        "array size must be a constant",
                        size_token.line,
                        size_token.column,
                    )
                array_size = int(size_token.text, 0)
                self._advance()
                self._expect_punct("]")
            if self._current.is_op("="):
                self._advance()
                init = self._parse_expr()
            declarators.append(
                Decl(
                    qualifier=qualifier,
                    ctype=type_token.text,
                    name=name_token.text,
                    array_size=array_size,
                    init=init,
                    line=name_token.line,
                )
            )
            if self._current.is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")
        return declarators

    def _parse_if(self) -> If:
        token = self._advance()  # 'if'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body: tuple[Stmt, ...] = ()
        if self._current.is_keyword("else"):
            self._advance()
            else_body = self._parse_block()
        return If(cond=cond, then_body=then_body, else_body=else_body, line=token.line)

    def _parse_for(self) -> For:
        token = self._advance()  # 'for'
        self._expect_punct("(")
        init_assign = self._parse_assign()
        if not isinstance(init_assign.target, VarRef):
            raise ParseError("loop variable must be a scalar", token.line, token.column)
        self._expect_punct(";")
        cond = self._parse_expr()
        self._expect_punct(";")
        step = self._parse_assign()
        self._expect_punct(")")
        body = self._parse_block()
        return For(
            var=init_assign.target.name,
            init=init_assign.value,
            cond=cond,
            step=step,
            body=body,
            line=token.line,
        )

    def _parse_block(self) -> tuple[Stmt, ...]:
        if self._current.is_punct("{"):
            self._advance()
            statements: list[Stmt] = []
            while not self._current.is_punct("}"):
                if self._current.kind is TokenKind.EOF:
                    raise ParseError(
                        "unterminated block", self._current.line, self._current.column
                    )
                statements.extend(self._parse_statement())
            self._advance()
            return tuple(statements)
        return tuple(self._parse_statement())

    def _parse_assign(self) -> Assign:
        name_token = self._expect_ident()
        target: VarRef | ArrayRef = VarRef(name_token.text, line=name_token.line)
        if self._current.is_punct("["):
            self._advance()
            index = self._parse_expr()
            self._expect_punct("]")
            target = ArrayRef(name_token.text, index, line=name_token.line)
        op_token = self._current
        if op_token.is_op("++", "--"):
            self._advance()
            delta = "+=" if op_token.text == "++" else "-="
            return Assign(target=target, op=delta, value=NumberLit(1, op_token.line), line=op_token.line)
        if op_token.kind is not TokenKind.OP or op_token.text not in _ASSIGN_OPS:
            raise ParseError(
                f"expected assignment operator, found {op_token.text!r}",
                op_token.line,
                op_token.column,
            )
        self._advance()
        value = self._parse_expr()
        return Assign(target=target, op=op_token.text, value=value, line=op_token.line)

    # -- expressions ----------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> Expr:
        cond = self._parse_binary(0)
        if self._current.is_op("?"):
            token = self._advance()
            if_true = self._parse_expr()
            self._expect_punct(":")
            if_false = self._parse_conditional()
            return Conditional(cond, if_true, if_false, line=token.line)
        return cond

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._current.kind is TokenKind.OP and self._current.text in ops:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = BinaryOp(op_token.text, left, right, line=op_token.line)
        return left

    def _parse_unary(self) -> Expr:
        token = self._current
        if token.is_op("-", "~", "!", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return UnaryOp(token.text, operand, line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return NumberLit(int(token.text, 0), line=token.line)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._current.is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                return ArrayRef(token.text, index, line=token.line)
            return VarRef(token.text, line=token.line)
        if token.is_punct("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse_source(source: str, name: str = "program") -> Program:
    """Parse mini-C text into a :class:`Program` AST."""
    return Parser(tokenize(source)).parse_program(name)
