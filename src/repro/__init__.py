"""repro — aging-aware MILP floorplanner for multi-context CGRRAs.

A full reproduction of "An Efficient MILP-Based Aging-Aware Floorplanner
for Multi-Context Coarse-Grained Runtime Reconfigurable FPGAs" (DATE
2020), including every substrate the paper depends on: a CGRRA fabric
model, a mini-C HLS frontend, an aging-unaware baseline placer, static
timing analysis, a compact thermal model, the NBTI/MTTF lifetime model,
a PuLP-like MILP layer on open solvers, and the paper's two-step
re-mapping algorithm itself.

Quickstart
----------
>>> from repro import compile_source, schedule_dfg, tech_map, Fabric, run_flow
>>> dfg = compile_source("in int a, b; out int y = a * 3 + b;", "tiny")
>>> design = tech_map(schedule_dfg(dfg, capacity=16))
>>> result = run_flow(design, Fabric(4, 4))
>>> result.mttf_increase >= 1.0
True
"""

from repro.aging import (
    MttfReport,
    NbtiModel,
    StressMap,
    compute_mttf,
    compute_stress_map,
    mttf_increase,
    vth_curve,
)
from repro.arch import Fabric, Floorplan, OpKind, PECell, UnitKind
from repro.benchgen import (
    TABLE1,
    SyntheticSpec,
    Table1Entry,
    build_benchmark,
    kernel_source,
    load_benchmark,
)
from repro.core import (
    AgingAwareFlow,
    Algorithm1Config,
    FlowConfig,
    FlowResult,
    RemapConfig,
    RemapResult,
    run_algorithm1,
    run_flow,
)
from repro.errors import ReproError
from repro.hls import (
    DataflowGraph,
    MappedDesign,
    Schedule,
    compile_source,
    schedule_dfg,
    tech_map,
)
from repro.milp import Model, ScipyBackend, SolveStatus
from repro.place import place_baseline
from repro.thermal import ThermalSimulator
from repro.timing import TimingPath, analyze, filter_paths

__version__ = "1.0.0"

__all__ = [
    "AgingAwareFlow",
    "Algorithm1Config",
    "DataflowGraph",
    "Fabric",
    "Floorplan",
    "FlowConfig",
    "FlowResult",
    "MappedDesign",
    "Model",
    "MttfReport",
    "NbtiModel",
    "OpKind",
    "PECell",
    "RemapConfig",
    "RemapResult",
    "ReproError",
    "Schedule",
    "ScipyBackend",
    "SolveStatus",
    "StressMap",
    "SyntheticSpec",
    "TABLE1",
    "Table1Entry",
    "ThermalSimulator",
    "TimingPath",
    "UnitKind",
    "analyze",
    "build_benchmark",
    "compile_source",
    "compute_mttf",
    "compute_stress_map",
    "filter_paths",
    "kernel_source",
    "load_benchmark",
    "mttf_increase",
    "place_baseline",
    "run_algorithm1",
    "run_flow",
    "schedule_dfg",
    "tech_map",
    "vth_curve",
    "__version__",
]
