"""The portfolio's lane catalogue.

A *lane* is a named backend the racing executor can start: the HiGHS
branch-and-cut backend (``"highs"``), the pure-Python branch-and-bound
backend (``"branch-bound"``), and a cheap LP-round-and-check feasibility
prober (``"prober"``) that only joins races over pure-feasibility models
(the paper's ``ObjFunc: Null`` formulation (3)).

Lanes share the backend ``solve(model, **options) -> Solution`` protocol,
so the executor treats them uniformly; certification of the winner is the
executor's job, which is what lets a lane as naive as the prober race at
all — a wrong rounding is struck, never accepted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.milp.model import Model, hint_vector
from repro.milp.status import Solution, SolveStatus
from repro.obs import counter, get_logger, span
from repro.obs.solverstats import SolveStats
from repro.portfolio.cancel import current_cancel_token
from repro.resilience.deadline import current_deadline

_log = get_logger("portfolio.lanes")

#: Default lane order: leader first.  HiGHS leads because it is the fast
#: backend on every benchmark; branch-and-bound is the independent
#: implementation that survives HiGHS-specific failures; the prober only
#: ever races feasibility models.
DEFAULT_LANES = ("highs", "branch-bound", "prober")


class FeasibilityProber:
    """A greedy feasibility lane: warm hint, else LP + snap-rounding.

    The prober never proves optimality and never *claims* more than "this
    point satisfies the matrix form".  Three outcomes:

    * a validated point (``OPTIMAL`` — on a feasibility model any
      feasible point is an answer);
    * a proven ``INFEASIBLE`` (the LP relaxation is infeasible, which
      soundly implies the MILP is);
    * an honest ``ERROR`` with ``limit_reason="incomplete"`` when the
      rounding fails — the executor treats that as "no answer", not as a
      lane failure, because incompleteness is the prober's contract.
    """

    def __init__(self, time_limit: float | None = None) -> None:
        self.time_limit = time_limit

    @staticmethod
    def applicable(model: Model) -> bool:
        return not model.has_objective()

    def solve(self, model: Model, **options) -> Solution:
        from scipy.optimize import linprog

        deadline = current_deadline()
        deadline.check(f"prober:{model.name}")
        stats = SolveStats(backend="prober", kind="milp")
        with span(
            "solver", backend="prober", kind="milp", model=model.name
        ) as solver_span:
            solution = self._probe(model, stats, linprog, **options)
            stats.elapsed_s = solver_span.duration_s
            if solution.stats is None:
                solution.stats = stats
            solver_span.set(
                status=solution.status.value, **solution.stats.span_attrs()
            )
        counter("portfolio.prober.solves").inc()
        return solution

    def _probe(self, model: Model, stats: SolveStats, linprog, **options):
        if model.has_objective():
            stats.limit_reason = "incomplete"
            return Solution(
                status=SolveStatus.ERROR,
                message="prober declined: model has an objective",
            )
        form = model.to_matrix_form()
        token = current_cancel_token()
        if token.cancelled:
            stats.limit_reason = "cancelled"
            return Solution(status=SolveStatus.ERROR, message="cancelled")

        if not form.variables:
            # Zero-variable model (every op frozen): the empty point is
            # the only candidate, and its row activities are constants —
            # so the check is a *proof* either way, not a probe.
            x0 = hint_vector(form, np.zeros(0))
            if x0 is not None:
                stats.incumbent = 0.0
                return self._accept(form, x0, stats, "zero-variable model")
            return Solution(
                status=SolveStatus.INFEASIBLE,
                message="zero-variable model violates a constant row",
            )

        hint = options.get("warm_start")
        if hint:
            x0 = hint_vector(form, hint)
            if x0 is not None:
                stats.warm_started = True
                stats.incumbent = float(form.objective @ x0)
                counter("portfolio.prober.hint_hits").inc()
                return self._accept(form, x0, stats, "warm-start hint")

        deadline = current_deadline()
        time_limit = deadline.cap(options.get("time_limit", self.time_limit))
        a_ub, b_ub, a_eq, b_eq = form.ub_eq_split()
        kwargs: dict = {}
        if a_ub is not None:
            kwargs["A_ub"], kwargs["b_ub"] = a_ub, b_ub
        if a_eq is not None:
            kwargs["A_eq"], kwargs["b_eq"] = a_eq, b_eq
        lp_options: dict = {}
        if time_limit is not None:
            lp_options["time_limit"] = float(time_limit)
        result = linprog(
            form.objective,
            bounds=np.column_stack([form.lower, form.upper]),
            method="highs",
            options=lp_options,
            **kwargs,
        )
        if result.status == 2:
            # LP relaxation infeasible => the MILP is infeasible.  This is
            # the one *proof* the prober can deliver.
            return Solution(status=SolveStatus.INFEASIBLE, message=result.message)
        if result.status != 0 or result.x is None:
            stats.limit_reason = "incomplete"
            return Solution(
                status=SolveStatus.ERROR,
                message=f"prober LP inconclusive: {result.message}",
            )
        stats.lp_objective = float(form.objective @ result.x)
        if token.cancelled:
            stats.limit_reason = "cancelled"
            return Solution(status=SolveStatus.ERROR, message="cancelled")
        x = np.asarray(result.x, dtype=float).copy()
        discrete = np.flatnonzero(form.integrality)
        x[discrete] = np.round(x[discrete])
        validated = hint_vector(form, x)
        if validated is None:
            counter("portfolio.prober.round_misses").inc()
            stats.limit_reason = "incomplete"
            return Solution(
                status=SolveStatus.ERROR,
                message="prober rounding violated a constraint",
            )
        stats.incumbent = float(form.objective @ validated)
        counter("portfolio.prober.round_hits").inc()
        return self._accept(form, validated, stats, "LP + snap rounding")

    @staticmethod
    def _accept(form, x, stats, how: str) -> Solution:
        values = {var: float(x[i]) for i, var in enumerate(form.variables)}
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=stats.incumbent,
            values=values,
            message=f"prober: feasible point via {how}",
            stats=stats,
        )


def make_lane_backend(
    name: str,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
):
    """Instantiate the backend for one lane name."""
    if name == "highs":
        from repro.milp.scipy_backend import ScipyBackend

        return ScipyBackend(time_limit=time_limit, mip_rel_gap=mip_rel_gap)
    if name == "branch-bound":
        from repro.milp.branch_bound import BranchBoundBackend

        return BranchBoundBackend(time_limit=time_limit)
    if name == "prober":
        return FeasibilityProber(time_limit=time_limit)
    raise ModelError(
        f"unknown portfolio lane {name!r}; known: {', '.join(DEFAULT_LANES)}"
    )


def lane_applicable(name: str, backend, model: Model) -> bool:
    """Whether a lane can answer for ``model`` at all."""
    applicable = getattr(backend, "applicable", None)
    if applicable is None:
        return True
    return bool(applicable(model))
