"""Cross-backend differential certification.

Two solver backends that share no code beyond the modelling layer — HiGHS
through scipy and the pure-Python branch-and-bound — are the strongest
independent oracle this repo has: a model solved by both, with both
solutions row-certified and the objectives agreeing within tolerance, is
very unlikely to be silently mis-lowered.  ``repro verify
--certify-backend`` and the fuzz tests drive this module.
"""

from __future__ import annotations

from repro.errors import CertificationError, SolverError
from repro.milp.status import SolveStatus
from repro.obs import get_logger
from repro.verify.certifier import Certificate, certify_solution

_log = get_logger("verify.differential")

#: Relative objective-agreement tolerance between backends.  Generous on
#: purpose: backends may stop at different feasible incumbents when a MIP
#: gap or limit is configured; exact agreement is only expected on solves
#: run to proven optimality.
OBJ_REL_TOL = 1e-6
OBJ_ABS_TOL = 1e-6

#: CLI spellings of the two backends.
BACKEND_NAMES = ("highs", "branch-bound")


def make_backend(name: str, time_limit_s: float | None = None):
    """Instantiate a backend from its CLI spelling."""
    if name == "highs":
        from repro.milp.scipy_backend import ScipyBackend

        return ScipyBackend(time_limit=time_limit_s)
    if name in ("branch-bound", "branch_bound"):
        from repro.milp.branch_bound import BranchBoundBackend

        return BranchBoundBackend(time_limit=time_limit_s)
    raise CertificationError(
        f"unknown certify backend {name!r} (choose from {BACKEND_NAMES})"
    )


def differential_solve(
    model,
    backends: dict,
    rel_tol: float = OBJ_REL_TOL,
    abs_tol: float = OBJ_ABS_TOL,
) -> dict:
    """Solve ``model`` with every named backend and cross-certify.

    Each backend's solution is row-certified against the uncompiled model
    (:func:`certify_solution`); solved objectives must agree pairwise
    within ``abs_tol + rel_tol * scale``.  Returns a JSON-ready report;
    ``report["ok"]`` is the verdict.
    """
    objectives: dict[str, float] = {}
    statuses: dict[str, str] = {}
    certificates: dict[str, Certificate] = {}
    for name, backend in backends.items():
        try:
            solution = model.solve(backend)
        except SolverError as exc:
            statuses[name] = f"error: {exc}"
            continue
        statuses[name] = solution.status.value
        if not solution.status.has_solution:
            continue
        objectives[name] = float(solution.objective)
        certificates[name] = certify_solution(model, solution)

    agree = True
    max_gap = 0.0
    solved = list(objectives.items())
    for i, (name_a, obj_a) in enumerate(solved):
        for name_b, obj_b in solved[i + 1:]:
            gap = abs(obj_a - obj_b)
            scale = max(1.0, abs(obj_a), abs(obj_b))
            max_gap = max(max_gap, gap / scale)
            if gap > abs_tol + rel_tol * scale:
                agree = False
                _log.warning(
                    "objective mismatch %s=%.9g vs %s=%.9g (gap %.3g)",
                    name_a, obj_a, name_b, obj_b, gap,
                )
    feasible_everywhere = all(
        status in (SolveStatus.OPTIMAL.value, SolveStatus.FEASIBLE.value)
        for status in statuses.values()
    )
    certified = all(cert.ok for cert in certificates.values())
    return {
        "ok": agree and feasible_everywhere and certified,
        "agree": agree,
        "statuses": statuses,
        "objectives": objectives,
        "max_rel_gap": max_gap,
        "certificates": {
            name: cert.to_dict() for name, cert in certificates.items()
        },
    }
