"""JSONL sink round-trip, tree rendering and trace summarization."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    TreeSink,
    attached,
    event,
    render_tree,
    span,
    summarize_records,
    summarize_trace,
)
from repro.obs.trace import REQUIRED_KEYS, TraceError, parse_trace_line


def _run_workload(*sinks):
    """A miniature flow shape shared by the round-trip tests."""
    with attached(*sinks):
        with span("flow", benchmark="unit"):
            with span("phase1"):
                pass
            with span("phase2"):
                with span("iteration", index=1):
                    pass
                with span("iteration", index=2):
                    pass
            event("flow.fallback", mttf_increase=0.9)


class TestJsonlRoundTrip:
    def test_every_line_parses_with_required_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            _run_workload(sink)
            registry = MetricsRegistry()
            registry.counter("unit.count").inc(2)
            registry.histogram("unit.hist").observe(1.0)
            sink.write_metrics(registry.snapshot())
        lines = path.read_text().splitlines()
        assert len(lines) == sink.lines_written == 8  # 5 spans+1 event+2 metrics
        for line in lines:
            record = json.loads(line)
            for key in REQUIRED_KEYS:
                assert key in record, f"{key} missing from {record}"

    def test_span_records_carry_hierarchy(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            _run_workload(sink)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans = {r["path"]: r for r in records if r["type"] == "span"}
        assert spans["flow"]["parent"] is None
        assert spans["flow > phase2"]["parent"] == "flow"
        iteration = [
            r for r in records
            if r["type"] == "span" and r["name"] == "iteration"
        ]
        assert [r["attrs"]["index"] for r in iteration] == [1, 2]

    def test_accepts_open_file_object(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        _run_workload(sink)
        sink.close()  # must not close a caller-owned file
        assert buffer.getvalue().count("\n") == 6

    def test_summarize_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            _run_workload(sink)
        summary = summarize_trace(path)
        by_path = {row.path: row for row in summary.stages}
        assert by_path["flow > phase2 > iteration"].count == 2
        assert summary.total_s == pytest.approx(
            by_path["flow"].total_s
        )
        assert summary.events[0]["name"] == "flow.fallback"


class TestTraceValidation:
    def test_rejects_non_json(self):
        with pytest.raises(TraceError):
            parse_trace_line("not json", lineno=3)

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError) as err:
            summarize_trace(tmp_path / "nope.jsonl")
        assert "cannot read trace" in str(err.value)

    def test_rejects_missing_keys(self):
        with pytest.raises(TraceError) as err:
            parse_trace_line(json.dumps({"type": "span", "name": "x"}))
        assert "duration_s" in str(err.value)

    def test_summarize_metric_records(self):
        records = [
            {"type": "span", "name": "a", "path": "a", "parent": None,
             "duration_s": 1.0},
            {"type": "metric", "name": "m", "parent": None,
             "duration_s": 0.0, "kind": "counter", "value": 7},
        ]
        summary = summarize_records(records)
        assert summary.metrics["m"]["value"] == 7
        assert summary.total_s == 1.0


class TestTreeRendering:
    def test_tree_groups_repeated_paths(self):
        sink = TreeSink()
        _run_workload(sink)
        rendered = sink.render()
        assert "iteration" in rendered
        assert "2x" in rendered  # the two iteration spans merged into one row

    def test_parents_precede_children(self):
        sink = TreeSink()
        _run_workload(sink)
        lines = sink.render().splitlines()
        names = [line.split()[0] for line in lines]
        assert names.index("flow") < names.index("phase2")
        assert names.index("phase2") < names.index("iteration")

    def test_empty_tree(self):
        assert render_tree([]) == "(no spans recorded)"
