"""Self-contained run reports (``repro explain``).

Builds a single-file HTML (or markdown) report from the artefacts a run
leaves behind — a ``flow_result`` record (``repro flow ... -o record.json``)
and/or a JSONL trace (``--trace run.jsonl``) — so a solve can be explained
offline, on a machine with neither the repo nor a network:

* **overview** — the flow summary (MTTF increase, CPD, degradation);
* **timeline** — the span tree as per-stage wall-time bars;
* **convergence** — the per-solve table (nodes, incumbent, bound, gap);
* **trajectory** — Algorithm 1's ``ST_target`` relaxation history;
* **attribution** — binding-constraint analysis of feasible solves in
  domain terms (families, top binding rows, saturated PEs);
* **stress** — per-context stress heatmaps of both floorplans;
* **explanations** — every ``algorithm1.explain`` event, including the
  IIS (irreducible infeasible subsystem) of an infeasible terminal solve.

Sections are built only when their inputs exist, and every built section
is guaranteed non-empty — the CI report gate relies on that.

Like :mod:`repro.obs.perf`, this module stays out of ``repro.obs.__init__``:
it imports ``repro.io`` and ``repro.aging`` (which import ``repro.obs``),
so eager package-root import would be a cycle.  Import it as
``from repro.obs import report``.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.logs import get_logger
from repro.obs.solverstats import convergence_rows
from repro.obs.trace import TraceSummary

_log = get_logger("obs.report")

#: Version tag of the report layout.
REPORT_SCHEMA = "repro.report/1"

#: Heatmap colour ramp endpoints (light -> saturated), as RGB tuples.
_HEAT_LOW = (247, 251, 255)
_HEAT_HIGH = (8, 48, 107)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #16213e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #16213e; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .9rem; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: left; }
th { background: #eef2f7; }
.bar { background: #4a7ebb; height: .8rem; display: inline-block; }
.heat td { text-align: right; font-variant-numeric: tabular-nums; }
.note { color: #556; font-style: italic; }
pre { background: #f6f8fa; padding: .6rem; overflow-x: auto; }
""".strip()


# -- section model -------------------------------------------------------------


@dataclass
class Section:
    """One report section: a slug (stable anchor), title and blocks.

    A block is a tuple whose first element names the kind:
    ``("text", str)``, ``("mapping", dict)``,
    ``("table", headers, rows)``,
    ``("bars", [(label, seconds, share), ...])`` or
    ``("heatmap", row_labels, col_labels, grid)``.
    """

    slug: str
    title: str
    blocks: list[tuple] = field(default_factory=list)

    def text(self, message: str) -> None:
        self.blocks.append(("text", message))

    def mapping(self, data: dict) -> None:
        if data:
            self.blocks.append(("mapping", data))

    def table(self, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        if rows:
            self.blocks.append(("table", list(headers), [list(r) for r in rows]))


@dataclass
class Report:
    """An ordered collection of non-empty sections, renderable twice."""

    title: str
    sections: list[Section] = field(default_factory=list)

    def add(self, section: Section) -> None:
        """Keep ``section`` only when it actually carries content."""
        if section.blocks:
            self.sections.append(section)

    def render(self, fmt: str) -> str:
        if fmt == "html":
            return render_html(self)
        if fmt in ("md", "markdown"):
            return render_markdown(self)
        raise ValueError(f"unknown report format {fmt!r}")


# -- builders ------------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return ", ".join(_fmt(v) for v in value)
    return str(value)


def _overview_section(record: dict | None, trace: TraceSummary | None) -> Section:
    section = Section("overview", "Run overview")
    if record is not None:
        summary = dict(record.get("summary") or {})
        alg1 = record.get("algorithm1") or {}
        if alg1.get("degradation_reason"):
            summary["degradation_reason"] = alg1["degradation_reason"]
        section.mapping(summary)
    if trace is not None and trace.records:
        section.mapping({
            "trace records": trace.records,
            "trace wall time (s)": round(trace.total_s, 3),
            "events": len(trace.events),
            "degradation events": len(trace.degradations),
            "solver spans": len(trace.solves),
        })
    return section


def _timeline_section(trace: TraceSummary | None) -> Section:
    section = Section("timeline", "Flow timeline")
    if trace is None or not trace.stages:
        return section
    bars = []
    for stage in trace.stages:
        share = 100.0 * stage.total_s / trace.total_s if trace.total_s else 0.0
        label = "  " * stage.depth + stage.name
        bars.append((label, round(stage.total_s, 3), round(share, 1)))
    section.blocks.append(("bars", bars))
    return section


def _evaluation_section(trace: TraceSummary | None) -> Section:
    """Evaluation-stage breakdown (the vectorized kernels' host spans).

    Aggregates STA / stress / thermal / certification spans across the
    whole span tree and lists the ``kernels.*`` timer and lowering-cache
    metrics beneath them, so a report answers "did the kernels run, and
    what did evaluation cost" at a glance.  Empty (and therefore
    omitted) when the trace carries no evaluation spans.
    """
    section = Section("evaluation", "Evaluation stages")
    if trace is None:
        return section
    rows = trace.evaluation_table()
    if rows:
        section.table(["stage", "count", "wall_s", "share_%"], rows)
    kernel_rows = []
    for name, data in trace.kernel_metrics().items():
        count = data.get("count", data.get("value", 0))
        total = data.get("sum", data.get("value", 0.0))
        kernel_rows.append([name, count, round(float(total), 4)])
    if kernel_rows:
        section.table(["kernel metric", "count", "total"], kernel_rows)
    return section


def _iter_solve_stats(record: dict) -> list[dict]:
    """Flatten every per-solve stats dict out of a record's iteration log."""

    def walk(entry: dict, prefix: str) -> list[tuple[str, dict]]:
        found = []
        for key in ("lp_stats", "ilp_stats", "solve_stats"):
            stats = entry.get(key)
            if isinstance(stats, dict):
                found.append((f"{prefix}{key}", stats))
        for index, ctx in enumerate(entry.get("contexts") or ()):
            found.extend(walk(ctx, f"{prefix}context{index}."))
        return found

    solves = []
    for entry in (record.get("algorithm1") or {}).get("iterations") or ():
        label = f"iter{entry.get('iteration', '?')}."
        for name, stats in walk(entry, label):
            solves.append({"label": name, **stats})
    return solves


def _convergence_section(
    record: dict | None, trace: TraceSummary | None
) -> Section:
    section = Section("convergence", "Solver convergence")
    if trace is not None and trace.solves:
        section.table(
            ["model", "backend", "kind", "status", "nodes", "incumbent",
             "bound", "gap_%", "wall_s"],
            convergence_rows(trace.solves),
        )
        return section
    if record is not None:
        rows = []
        for stats in _iter_solve_stats(record):
            gap = stats.get("mip_gap")
            rows.append([
                stats["label"],
                stats.get("backend", "?"),
                stats.get("kind", "?"),
                stats.get("nodes", 0),
                _fmt(stats.get("incumbent")) if stats.get("incumbent") is not None else "-",
                _fmt(stats.get("best_bound")) if stats.get("best_bound") is not None else "-",
                f"{100.0 * float(gap):.2f}" if gap is not None else "-",
                stats.get("limit_reason") or "-",
                round(float(stats.get("elapsed_s", 0.0)), 3),
            ])
        section.table(
            ["solve", "backend", "kind", "nodes", "incumbent", "bound",
             "gap_%", "limit", "wall_s"],
            rows,
        )
    return section


def _trajectory_section(
    record: dict | None, trace: TraceSummary | None
) -> Section:
    section = Section("trajectory", "Algorithm 1 relaxation trajectory")
    runs: list[dict] = []
    if record is not None:
        stats = (record.get("algorithm1") or {}).get("stats") or {}
        if stats:
            runs.append(stats)
    elif trace is not None:
        runs.extend(trace.alg1_runs)
    for run in runs:
        section.mapping({
            "ST range (ns)": (
                f"[{run.get('st_low_ns', 0.0):.4g}, "
                f"{run.get('st_up_ns', 0.0):.4g}]"
            ),
            "Delta (ns)": run.get("delta_ns"),
            "bisection steps": run.get("bisection_steps"),
            "iterations": run.get("iterations"),
            "relaxations": run.get("relaxations"),
            "final ST_target (ns)": run.get("final_st_target_ns"),
            "solves": run.get("solves"),
            "total nodes": run.get("total_nodes"),
            "max MIP gap": run.get("max_mip_gap"),
            "certifications": run.get("certifications"),
            "cert failures": run.get("cert_failures"),
        })
        trajectory = run.get("st_trajectory") or []
        verdicts = run.get("verdicts") or []
        section.table(
            ["iteration", "ST_target (ns)", "verdict"],
            [
                [i + 1, round(float(st), 4), verdict]
                for i, (st, verdict) in enumerate(zip(trajectory, verdicts))
            ],
        )
    return section


def _portfolio_section(
    record: dict | None, trace: TraceSummary | None
) -> Section:
    """Per-solve lane table + breaker states of a portfolio run.

    Empty (and therefore dropped) for serial runs: races come from the
    trace's ``portfolio.race`` events or, offline, from the record's
    ``algorithm1.stats.portfolio`` snapshot.
    """
    section = Section("portfolio", "Solver portfolio races")
    snapshot = None
    if record is not None:
        snapshot = (
            (record.get("algorithm1") or {}).get("stats") or {}
        ).get("portfolio")
    races: list[dict] = list(trace.races) if trace is not None else []
    if not races and snapshot:
        races = list(snapshot.get("races") or [])
    rows: list[list] = []
    for race in races:
        for lane in race.get("lanes") or []:
            started = lane.get("started_s")
            finished = lane.get("finished_s")
            wall: Any = ""
            if started is not None and finished is not None:
                wall = round(finished - started, 3)
            cancelled = lane.get("cancelled_at_s")
            rows.append([
                race.get("model", ""),
                race.get("winner", ""),
                race.get("margin_s") if race.get("margin_s") is not None else "",
                lane.get("lane", ""),
                lane.get("verdict", ""),
                "" if started is None else round(started, 3),
                wall,
                "" if cancelled is None else round(cancelled, 3),
            ])
    section.table(
        ["model", "winner", "margin_s", "lane", "verdict", "start_s",
         "wall_s", "cancelled_s"],
        rows,
    )
    if snapshot:
        section.mapping({
            "lanes": _fmt(snapshot.get("lanes")),
            "raced solves": snapshot.get("solves"),
            "wins per lane": _fmt(snapshot.get("winners")),
            "hedge delay (s)": snapshot.get("hedge_delay_s"),
        })
        breaker_rows = []
        for lane, breaker in (snapshot.get("breakers") or {}).items():
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in (breaker.get("failure_kinds") or {}).items()
            )
            breaker_rows.append([
                lane,
                breaker.get("state", ""),
                breaker.get("successes", 0),
                breaker.get("failures", 0),
                kinds,
                breaker.get("probes", 0),
            ])
        section.table(
            ["lane", "breaker", "successes", "failures", "failure kinds",
             "probes"],
            breaker_rows,
        )
    return section


def _attributions(record: dict | None, trace: TraceSummary | None) -> list[dict]:
    """Every attribution payload in reach, most recent first.

    Trace solver spans carry the compact brief; record iteration logs
    carry the full :func:`repro.explain.attribute_solution` output.
    Full payloads are preferred.
    """
    full: list[dict] = []
    briefs: list[dict] = []
    if record is not None:
        for stats in _iter_solve_stats(record):
            attribution = stats.get("attribution")
            if isinstance(attribution, dict):
                full.append({"label": stats["label"], **attribution})
    if trace is not None:
        for span_record in trace.solves:
            attrs = span_record.get("attrs") or {}
            brief = attrs.get("attribution")
            if isinstance(brief, dict):
                briefs.append({"label": attrs.get("model", "?"), **brief})
    return list(reversed(full)) or list(reversed(briefs))


def _attribution_section(
    record: dict | None, trace: TraceSummary | None
) -> Section:
    section = Section("attribution", "Binding-constraint attribution")
    payloads = _attributions(record, trace)
    if not payloads:
        return section
    latest = payloads[0]
    families = latest.get("families") or {}
    if families and isinstance(next(iter(families.values())), dict):
        section.table(
            ["family", "rows", "binding", "min slack"],
            [
                [name, fam.get("rows"), fam.get("binding"),
                 _fmt(fam.get("min_slack"))]
                for name, fam in sorted(families.items())
            ],
        )
    elif families:
        section.table(
            ["family", "binding rows"],
            [[name, count] for name, count in sorted(families.items())],
        )
    top = latest.get("top_binding") or []
    if top:
        section.table(
            ["row", "name", "family", "sense", "rhs", "slack"],
            [
                [row.get("row"), row.get("name"), row.get("family"),
                 row.get("sense"), _fmt(row.get("rhs")),
                 _fmt(row.get("slack"))]
                for row in top
            ],
        )
    elif latest.get("top"):
        section.mapping({"top binding rows": ", ".join(latest["top"])})
    saturated = latest.get("saturated_pes")
    if saturated:
        section.mapping({"saturated PEs (stress at ST_target)": saturated})
    tight = latest.get("tight_paths")
    if tight:
        section.mapping({"CPD-critical monitored paths": tight})
    if len(payloads) > 1:
        section.text(
            f"(from solve {latest.get('label', '?')}; "
            f"{len(payloads) - 1} earlier attribution(s) omitted)"
        )
    return section


def _stress_section(record: dict | None) -> Section:
    section = Section("stress", "Per-context stress heatmap")
    if record is None:
        return section
    try:
        from repro.aging.stress import compute_stress_map
        from repro.io.serialize import design_from_dict, floorplan_from_dict

        design = design_from_dict(record["design"])
        plans = [
            ("original", floorplan_from_dict(record["original_floorplan"])),
            ("re-mapped", floorplan_from_dict(record["remapped_floorplan"])),
        ]
    except Exception as exc:  # noqa: BLE001 - report must not die on old records
        _log.warning("stress heatmap skipped: %s", exc)
        return section
    for label, floorplan in plans:
        stress = compute_stress_map(design, floorplan)
        grid = [
            [round(float(v), 3) for v in row] for row in stress.per_context_ns
        ]
        accumulated = [round(float(v), 3) for v in stress.accumulated_ns]
        section.text(
            f"{label} floorplan — accumulated stress "
            f"max {max(accumulated):.4g} ns, worst PE {stress.argmax_pe()}"
        )
        section.blocks.append((
            "heatmap",
            [f"ctx {c}" for c in range(stress.num_contexts)] + ["accumulated"],
            [f"PE{p}" for p in range(stress.num_pes)],
            grid + [accumulated],
        ))
    return section


def _explanations_section(
    record: dict | None, trace: TraceSummary | None
) -> Section:
    section = Section("explanations", "Why the solve ended this way")
    explains: list[dict] = []
    if record is not None:
        explains.extend((record.get("algorithm1") or {}).get("explanations") or [])
    if trace is not None:
        known = {json.dumps(e, sort_keys=True, default=str) for e in explains}
        for entry in trace.explains:
            if json.dumps(entry, sort_keys=True, default=str) not in known:
                explains.append(entry)
    if not explains and record is not None:
        alg1 = record.get("algorithm1") or {}
        if alg1.get("stats", {}).get("verdicts") == ["accepted"] or (
            alg1.get("degradation") == "none"
        ):
            section.text(
                "Nothing to explain: every iteration was accepted and the "
                "run ended without degradation."
            )
            return section
    for entry in explains:
        entry = dict(entry)
        iis = entry.pop("iis", None)
        culprit = entry.pop("culprit", None)
        section.mapping({k: _fmt(v) for k, v in entry.items()})
        if culprit:
            section.mapping({
                "culprit path context": culprit.get("context"),
                "culprit ops": _fmt(culprit.get("ops")),
                "culprit delay (ns)": _fmt(culprit.get("delay_ns")),
            })
        if iis:
            section.text(_describe_iis(iis))
            section.table(
                ["row", "constraint", "sense", "rhs", "domain tags"],
                [
                    [
                        member.get("index"),
                        member.get("name"),
                        member.get("sense"),
                        _fmt(member.get("rhs")),
                        ", ".join(
                            f"{k}={v}"
                            for k, v in (member.get("tags") or {}).items()
                        ),
                    ]
                    for member in iis.get("members") or ()
                ],
            )
    return section


def _describe_iis(iis: dict) -> str:
    status = iis.get("status")
    if status != "iis":
        return (
            f"IIS extraction ended with status {status!r}: "
            f"{iis.get('note') or 'no irreducible subsystem identified'}"
        )
    members = iis.get("members") or []
    quality = "minimal" if iis.get("minimal") else "reduced (not proven minimal)"
    verified = ", independently re-verified" if iis.get("verified") else ""
    return (
        f"The infeasibility reduces to {len(members)} constraint(s) "
        f"({quality}{verified}; {iis.get('probes', 0)} probe solves in "
        f"{float(iis.get('elapsed_s', 0.0)):.2f}s). Removing any one of "
        "them makes the remaining system feasible."
    )


def build_report(
    record: dict | None = None,
    trace: TraceSummary | None = None,
    title: str | None = None,
) -> Report:
    """Assemble a report from whatever artefacts are in hand.

    ``record`` is a loaded ``flow_result`` document; ``trace`` a
    :class:`~repro.obs.trace.TraceSummary`.  Either may be ``None``, not
    both.
    """
    if record is None and trace is None:
        raise ValueError("need a flow record, a trace summary, or both")
    benchmark = None
    if record is not None:
        benchmark = (record.get("summary") or {}).get("benchmark")
    report = Report(title or f"Solve report: {benchmark or 'trace'}")
    report.add(_overview_section(record, trace))
    report.add(_timeline_section(trace))
    report.add(_evaluation_section(trace))
    report.add(_convergence_section(record, trace))
    report.add(_portfolio_section(record, trace))
    report.add(_trajectory_section(record, trace))
    report.add(_attribution_section(record, trace))
    report.add(_stress_section(record))
    report.add(_explanations_section(record, trace))
    return report


# -- renderers -----------------------------------------------------------------


def _heat_color(value: float, low: float, high: float) -> str:
    if high <= low:
        fraction = 0.0
    else:
        fraction = max(0.0, min(1.0, (value - low) / (high - low)))
    channels = [
        round(a + fraction * (b - a))
        for a, b in zip(_HEAT_LOW, _HEAT_HIGH)
    ]
    return "#{:02x}{:02x}{:02x}".format(*channels)


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def render_html(report: Report) -> str:
    """One self-contained HTML document: inline CSS, no external assets."""
    out = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>{_esc(report.title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(report.title)}</h1>",
        f"<p class=\"note\">schema {REPORT_SCHEMA}</p>",
    ]
    for section in report.sections:
        out.append(f"<section id=\"{_esc(section.slug)}\">")
        out.append(f"<h2>{_esc(section.title)}</h2>")
        for block in section.blocks:
            out.append(_render_html_block(block))
        out.append("</section>")
    out.append("</body></html>")
    return "\n".join(out)


def _render_html_block(block: tuple) -> str:
    kind = block[0]
    if kind == "text":
        return f"<p class=\"note\">{_esc(block[1])}</p>"
    if kind == "mapping":
        rows = "".join(
            f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>"
            for k, v in block[1].items()
        )
        return f"<table>{rows}</table>"
    if kind == "table":
        _, headers, rows = block
        head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
            for row in rows
        )
        return f"<table><tr>{head}</tr>{body}</table>"
    if kind == "bars":
        rows = []
        for label, seconds, share in block[1]:
            width = max(1, round(3 * share))
            rows.append(
                "<tr>"
                f"<td><pre style=\"margin:0\">{_esc(label)}</pre></td>"
                f"<td>{seconds:.3f}s</td><td>{share:.1f}%</td>"
                f"<td><span class=\"bar\" style=\"width:{width}px\"></span></td>"
                "</tr>"
            )
        return (
            "<table><tr><th>stage</th><th>wall</th><th>share</th><th></th></tr>"
            + "".join(rows)
            + "</table>"
        )
    if kind == "heatmap":
        _, row_labels, col_labels, grid = block
        flat = [v for row in grid for v in row]
        low, high = (min(flat), max(flat)) if flat else (0.0, 0.0)
        head = "<tr><th></th>" + "".join(
            f"<th>{_esc(c)}</th>" for c in col_labels
        ) + "</tr>"
        body = []
        for label, row in zip(row_labels, grid):
            cells = "".join(
                f"<td style=\"background:{_heat_color(v, low, high)};"
                f"color:{'#fff' if high > low and (v - low) / (high - low) > 0.6 else '#1a1a2e'}\">"
                f"{v:g}</td>"
                for v in row
            )
            body.append(f"<tr><th>{_esc(label)}</th>{cells}</tr>")
        return f"<table class=\"heat\">{head}{''.join(body)}</table>"
    raise ValueError(f"unknown block kind {kind!r}")


def render_markdown(report: Report) -> str:
    out = [f"# {report.title}", "", f"_schema {REPORT_SCHEMA}_", ""]
    for section in report.sections:
        out.append(f"## {section.title}")
        out.append("")
        for block in section.blocks:
            out.append(_render_md_block(block))
            out.append("")
    return "\n".join(out).rstrip() + "\n"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _render_md_block(block: tuple) -> str:
    kind = block[0]
    if kind == "text":
        return str(block[1])
    if kind == "mapping":
        return "\n".join(f"- **{k}**: {v}" for k, v in block[1].items())
    if kind == "table":
        return _md_table(block[1], block[2])
    if kind == "bars":
        return _md_table(
            ["stage", "wall_s", "share_%"],
            [[f"`{label}`", seconds, share] for label, seconds, share in block[1]],
        )
    if kind == "heatmap":
        _, row_labels, col_labels, grid = block
        return _md_table(
            [""] + list(col_labels),
            [[label] + list(row) for label, row in zip(row_labels, grid)],
        )
    raise ValueError(f"unknown block kind {kind!r}")
