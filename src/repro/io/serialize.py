"""JSON serialization of designs, floorplans and flow results.

The paper's flow ends in configurations loaded onto the device every
cycle; this module is the reproduction's equivalent artefact format: a
versioned, self-describing JSON schema for

* :class:`~repro.hls.allocate.MappedDesign` — the technology-mapped,
  scheduled netlist;
* :class:`~repro.arch.context.Floorplan` — per-context op->PE bindings
  (the "configuration set");
* flow summaries — the measurement record of one Phase 1 + Phase 2 run.

Round-tripping is exact (structural equality) and validated on load, so
saved artefacts can be re-analysed (STA, stress, MTTF) without re-running
HLS or the MILP.
"""

from __future__ import annotations

import json
from typing import Any

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.arch.opcodes import OpKind, unit_of
from repro.errors import ReproError
from repro.hls.allocate import MappedDesign, OpInfo

#: Schema version written into every document.
SCHEMA_VERSION = 1


class SerializationError(ReproError):
    """A document could not be encoded or decoded."""


# -- MappedDesign -------------------------------------------------------------


def design_to_dict(design: MappedDesign) -> dict[str, Any]:
    """Encode a mapped design (without its source DFG) as a JSON dict."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "mapped_design",
        "name": design.name,
        "num_contexts": design.num_contexts,
        "clock_period_ns": design.clock_period_ns,
        "ops": [
            {
                "id": op.op_id,
                "kind": op.kind.value,
                "width": op.width,
                "context": op.context,
                "delay_ns": op.delay_ns,
                "stress_ns": op.stress_ns,
            }
            for op in sorted(design.ops.values(), key=lambda o: o.op_id)
        ],
        "compute_edges": [list(edge) for edge in design.compute_edges],
        "input_edges": [list(edge) for edge in design.input_edges],
        "output_edges": [list(edge) for edge in design.output_edges],
    }


def design_from_dict(data: dict[str, Any]) -> MappedDesign:
    """Decode and validate a mapped design."""
    _expect_kind(data, "mapped_design")
    design = MappedDesign(
        name=str(data["name"]),
        num_contexts=int(data["num_contexts"]),
        clock_period_ns=float(data.get("clock_period_ns", 5.0)),
    )
    try:
        for entry in data["ops"]:
            kind = OpKind(entry["kind"])
            design.ops[int(entry["id"])] = OpInfo(
                op_id=int(entry["id"]),
                kind=kind,
                width=int(entry["width"]),
                context=int(entry["context"]),
                unit=unit_of(kind),
                delay_ns=float(entry["delay_ns"]),
                stress_ns=float(entry["stress_ns"]),
            )
        design.compute_edges = [tuple(e) for e in data["compute_edges"]]
        design.input_edges = [tuple(e) for e in data["input_edges"]]
        design.output_edges = [tuple(e) for e in data["output_edges"]]
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed mapped_design document: {exc}") from exc
    design.validate()
    return design


# -- Floorplan ---------------------------------------------------------------


def floorplan_to_dict(floorplan: Floorplan) -> dict[str, Any]:
    """Encode a floorplan (the per-context configuration set)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "floorplan",
        "fabric": {
            "rows": floorplan.fabric.rows,
            "cols": floorplan.fabric.cols,
            "unit_wire_delay_ns": floorplan.fabric.unit_wire_delay_ns,
        },
        "num_contexts": floorplan.num_contexts,
        "bindings": [
            {
                "op": op,
                "context": floorplan.context_of[op],
                "pe": floorplan.pe_of[op],
            }
            for op in sorted(floorplan.ops)
        ],
    }


def floorplan_from_dict(data: dict[str, Any]) -> Floorplan:
    """Decode and validate a floorplan."""
    _expect_kind(data, "floorplan")
    try:
        fabric_spec = data["fabric"]
        fabric = Fabric(
            int(fabric_spec["rows"]),
            int(fabric_spec["cols"]),
            unit_wire_delay_ns=float(fabric_spec.get("unit_wire_delay_ns", 0.435)),
        )
        floorplan = Floorplan(fabric, int(data["num_contexts"]))
        for binding in data["bindings"]:
            floorplan.bind(
                int(binding["op"]), int(binding["context"]), int(binding["pe"])
            )
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed floorplan document: {exc}") from exc
    floorplan.validate()
    return floorplan


# -- flow summaries -------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/containers so ``json.dump`` never chokes."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def flow_summary_to_dict(result) -> dict[str, Any]:
    """Encode a :class:`~repro.core.flow.FlowResult` as a measurement record.

    Includes both floorplans so the run can be re-evaluated offline, and
    (since the solve-diagnostics addition) the Algorithm 1 convergence
    record with its explain events, so ``repro explain record.json`` can
    reconstruct *why* the run ended the way it did without the trace.
    """
    remap_stats = result.remap.stats or {}
    return {
        "schema": SCHEMA_VERSION,
        "kind": "flow_result",
        "summary": result.summary(),
        "design": design_to_dict(result.design),
        "original_floorplan": floorplan_to_dict(result.original.floorplan),
        "remapped_floorplan": floorplan_to_dict(result.remapped.floorplan),
        "algorithm1": _json_safe({
            "degradation": result.remap.degradation,
            "certified": result.remap.certified,
            "st_target_ns": result.remap.st_target_ns,
            "stats": remap_stats.get("algorithm1", {}),
            "iterations": remap_stats.get("iterations", []),
            "explanations": remap_stats.get("explanations", []),
            "degradation_reason": remap_stats.get("degradation_reason"),
        }),
    }


# -- file helpers -------------------------------------------------------------


def save_json(document: dict[str, Any], path) -> None:
    """Write a document to ``path`` (pretty-printed, stable key order).

    Goes through the shared atomic ``write-tmp → fsync → rename`` helper
    so a crash mid-save leaves the previous artifact (or nothing), never
    a truncated JSON file under the final name.
    """
    from repro.resilience.atomic import atomic_write_json

    atomic_write_json(path, document)


def load_json(path) -> dict[str, Any]:
    """Read a JSON document and check it carries a schema marker."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "schema" not in data:
        raise SerializationError(f"{path}: not a repro document")
    if data["schema"] > SCHEMA_VERSION:
        raise SerializationError(
            f"{path}: schema {data['schema']} is newer than supported "
            f"({SCHEMA_VERSION})"
        )
    return data


def save_design(design: MappedDesign, path) -> None:
    save_json(design_to_dict(design), path)


def load_design(path) -> MappedDesign:
    return design_from_dict(load_json(path))


def save_floorplan(floorplan: Floorplan, path) -> None:
    save_json(floorplan_to_dict(floorplan), path)


def load_floorplan(path) -> Floorplan:
    return floorplan_from_dict(load_json(path))


def _expect_kind(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise SerializationError(
            f"expected a {kind!r} document, found {data.get('kind')!r}"
        )
