"""Operation kinds supported by the CGRRA processing elements.

The paper's PE (Fig. 1) contains an ALU and a DMU (Data Manipulation Unit)
with characterised delays of 0.87 ns and 3.14 ns respectively (Section III).
Each dataflow-graph operation executes on one of the two units; the unit's
delay — scaled by the operation bitwidth — determines both the operation's
contribution to path delay and its *stress rate* (delay / clock period).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ArchitectureError
from repro.units import ALU_DELAY_NS, CLOCK_PERIOD_NS, DMU_DELAY_NS


class UnitKind(enum.Enum):
    """The functional unit inside a PE that executes an operation."""

    ALU = "alu"
    DMU = "dmu"
    #: Pseudo unit for primary I/O and constants — occupies no PE.
    NONE = "none"


class OpKind(enum.Enum):
    """Dataflow operation kinds (mini-C operator set + pseudo ops)."""

    # -- ALU operations ------------------------------------------------------
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    # -- DMU operations (multi-cycle-ish data manipulation) -------------------
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    SELECT = "select"  # if-conversion multiplexer
    LOAD = "load"
    STORE = "store"
    # -- pseudo operations (no PE) ---------------------------------------------
    INPUT = "input"
    OUTPUT = "output"
    CONST = "const"


#: Which functional unit executes each op kind.
_UNIT_OF: dict[OpKind, UnitKind] = {
    OpKind.ADD: UnitKind.ALU,
    OpKind.SUB: UnitKind.ALU,
    OpKind.AND: UnitKind.ALU,
    OpKind.OR: UnitKind.ALU,
    OpKind.XOR: UnitKind.ALU,
    OpKind.SHL: UnitKind.ALU,
    OpKind.SHR: UnitKind.ALU,
    OpKind.NEG: UnitKind.ALU,
    OpKind.NOT: UnitKind.ALU,
    OpKind.LT: UnitKind.ALU,
    OpKind.LE: UnitKind.ALU,
    OpKind.GT: UnitKind.ALU,
    OpKind.GE: UnitKind.ALU,
    OpKind.EQ: UnitKind.ALU,
    OpKind.NE: UnitKind.ALU,
    OpKind.MUL: UnitKind.DMU,
    OpKind.DIV: UnitKind.DMU,
    OpKind.MOD: UnitKind.DMU,
    OpKind.SELECT: UnitKind.DMU,
    OpKind.LOAD: UnitKind.DMU,
    OpKind.STORE: UnitKind.DMU,
    OpKind.INPUT: UnitKind.NONE,
    OpKind.OUTPUT: UnitKind.NONE,
    OpKind.CONST: UnitKind.NONE,
}

#: Base unit delay in ns at the reference 32-bit width.
_BASE_DELAY_NS: dict[UnitKind, float] = {
    UnitKind.ALU: ALU_DELAY_NS,
    UnitKind.DMU: DMU_DELAY_NS,
    UnitKind.NONE: 0.0,
}

#: Reference bitwidth at which the paper's delays were characterised.
REFERENCE_WIDTH = 32

#: Supported operand bitwidths (mini-C ``char``/``short``/``int``).
SUPPORTED_WIDTHS = (8, 16, 32)

#: Number of input operands for each op kind (None = variadic pseudo op).
_ARITY: dict[OpKind, int] = {
    OpKind.NEG: 1,
    OpKind.NOT: 1,
    OpKind.LOAD: 1,
    OpKind.STORE: 2,
    OpKind.SELECT: 3,
    OpKind.INPUT: 0,
    OpKind.CONST: 0,
    OpKind.OUTPUT: 1,
}


@dataclass(frozen=True)
class OpProfile:
    """Characterisation of one (op kind, bitwidth) pair."""

    kind: OpKind
    width: int
    unit: UnitKind
    delay_ns: float
    stress_rate: float  # duty cycle within one clock = delay / clock period


def unit_of(kind: OpKind) -> UnitKind:
    """The functional unit that executes ``kind``."""
    return _UNIT_OF[kind]


def arity_of(kind: OpKind) -> int:
    """Number of data inputs the op kind takes (binary ops default to 2)."""
    return _ARITY.get(kind, 2)


def is_compute(kind: OpKind) -> bool:
    """True when the operation occupies (and stresses) a PE."""
    return _UNIT_OF[kind] is not UnitKind.NONE


def width_scale(width: int) -> float:
    """Delay scaling factor for a bitwidth relative to the 32-bit reference.

    Carry/shift chains shorten sub-linearly with width; we model delay as an
    affine function anchored at 1.0 for 32 bits: narrower datapaths are
    faster and produce proportionally less stress, reproducing the paper's
    remark that "each PE can execute different types of operations of
    different bitwidths and, hence, can produce different amounts of stress
    time" (Section IV).
    """
    if width not in SUPPORTED_WIDTHS:
        raise ArchitectureError(
            f"unsupported bitwidth {width}; expected one of {SUPPORTED_WIDTHS}"
        )
    return 0.5 + 0.5 * (width / REFERENCE_WIDTH)


def profile(kind: OpKind, width: int = REFERENCE_WIDTH) -> OpProfile:
    """Full delay/stress characterisation of an operation."""
    unit = unit_of(kind)
    if unit is UnitKind.NONE:
        return OpProfile(kind, width, unit, 0.0, 0.0)
    delay = _BASE_DELAY_NS[unit] * width_scale(width)
    return OpProfile(kind, width, unit, delay, delay / CLOCK_PERIOD_NS)


def op_delay_ns(kind: OpKind, width: int = REFERENCE_WIDTH) -> float:
    """Delay of ``kind`` at ``width`` through its PE functional unit, in ns."""
    return profile(kind, width).delay_ns


def stress_rate(kind: OpKind, width: int = REFERENCE_WIDTH) -> float:
    """Per-clock duty cycle of ``kind``: unit delay / clock period (paper §III)."""
    return profile(kind, width).stress_rate


ALU_KINDS = tuple(k for k, u in _UNIT_OF.items() if u is UnitKind.ALU)
DMU_KINDS = tuple(k for k, u in _UNIT_OF.items() if u is UnitKind.DMU)
PSEUDO_KINDS = tuple(k for k, u in _UNIT_OF.items() if u is UnitKind.NONE)
