"""Stress-map tests, including the conservation invariant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aging import StressMap, compute_stress_map, stress_summary
from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.errors import AgingError
from repro.hls import MappedDesign, OpInfo


def tiny_design():
    design = MappedDesign(name="t", num_contexts=2)
    design.ops[0] = OpInfo(0, OpKind.MUL, 32, 0, UnitKind.DMU, 3.14, 3.14)
    design.ops[1] = OpInfo(1, OpKind.ADD, 32, 0, UnitKind.ALU, 0.87, 0.87)
    design.ops[2] = OpInfo(2, OpKind.ADD, 32, 1, UnitKind.ALU, 0.87, 0.87)
    return design


class TestComputeStressMap:
    def test_per_context_entries(self, fabric4):
        design = tiny_design()
        fp = Floorplan(fabric4, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 1)
        fp.bind(2, 1, 0)
        stress = compute_stress_map(design, fp)
        assert stress.per_context_ns[0, 0] == pytest.approx(3.14)
        assert stress.per_context_ns[0, 1] == pytest.approx(0.87)
        assert stress.per_context_ns[1, 0] == pytest.approx(0.87)

    def test_accumulation_over_contexts(self, fabric4):
        design = tiny_design()
        fp = Floorplan(fabric4, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 1)
        fp.bind(2, 1, 0)  # PE 0 reused
        stress = compute_stress_map(design, fp)
        assert stress.accumulated_ns[0] == pytest.approx(3.14 + 0.87)
        assert stress.max_accumulated_ns == pytest.approx(4.01)
        assert stress.argmax_pe() == 0

    def test_unplaced_op_rejected(self, fabric4):
        design = tiny_design()
        fp = Floorplan(fabric4, 2)
        fp.bind(0, 0, 0)
        with pytest.raises(AgingError):
            compute_stress_map(design, fp)

    def test_duty_cycles(self, fabric4):
        design = tiny_design()
        fp = Floorplan(fabric4, 2)
        fp.bind(0, 0, 0)
        fp.bind(1, 0, 1)
        fp.bind(2, 1, 2)
        stress = compute_stress_map(design, fp)
        assert stress.duty_per_context()[0, 0] == pytest.approx(3.14 / 5.0)
        assert stress.average_duty()[0] == pytest.approx(3.14 / 10.0)
        assert np.all(stress.average_duty() <= 1.0)

    def test_summary_fields(self, synth_design, synth_floorplan):
        stress = compute_stress_map(synth_design, synth_floorplan)
        summary = stress_summary(stress)
        assert summary["max_ns"] >= summary["mean_ns"]
        assert summary["used_pes"] <= synth_floorplan.fabric.num_pes
        assert summary["total_ns"] == pytest.approx(
            synth_design.total_stress_ns()
        )


class TestConservation:
    """Re-binding moves stress between PEs but never changes the total."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_total_invariant_under_rebinding(self, seed, synth_design, fabric4):
        import random

        from repro.place import greedy_place

        rng = random.Random(seed)
        original = greedy_place(synth_design, fabric4)
        shuffled = original.copy()
        # Random legal rebinding per context.
        for context in range(shuffled.num_contexts):
            ops = shuffled.ops_in_context(context)
            pes = rng.sample(range(fabric4.num_pes), len(ops))
            # Move everyone to a parking slot impossible to collide with by
            # rebuilding from scratch.
            for op, pe in zip(ops, pes):
                shuffled._slots.pop((context, shuffled.pe_of[op]), None)
                shuffled.pe_of[op] = pe
                shuffled._slots[(context, pe)] = op
        shuffled.validate()
        before = compute_stress_map(synth_design, original)
        after = compute_stress_map(synth_design, shuffled)
        assert after.total_ns == pytest.approx(before.total_ns)
        assert after.mean_accumulated_ns == pytest.approx(
            before.mean_accumulated_ns
        )

    def test_levelling_cannot_beat_average(self, synth_design, synth_floorplan):
        stress = compute_stress_map(synth_design, synth_floorplan)
        # ST_low of the paper: no floorplan can push the max below the mean.
        assert stress.max_accumulated_ns >= stress.mean_accumulated_ns
