"""Service jobs and their crash-safe journal.

Every accepted request becomes a :class:`Job` journaled to
``<state>/jobs.jsonl`` *before* the client sees an acknowledgement, via
the same fsynced, flock-serialised :class:`~repro.resilience.SweepCheckpoint`
machinery the experiment sweeps trust.  The journal is the service's
exactly-once backbone:

* ``accepted`` — the request (full document) is durable; a service killed
  at any later point will find it on restart and finish the work;
* ``ok`` — the job completed; the record carries the artifact's cache key
  and the result summary, never the full payload (that lives in the
  artifact cache, checksummed separately);
* ``failed`` / ``quarantined`` — terminal, typed; a restart does *not*
  retry them (clients were already told).

The latest record per job wins, so "pending at last crash" is simply
"latest record is ``accepted``" — :meth:`JobStore.pending` is the whole
restart-recovery story.
"""

from __future__ import annotations

import itertools
import os
import secrets
from dataclasses import dataclass, field

from repro.resilience.checkpoint import SweepCheckpoint
from repro.service.request import FloorplanRequest

#: Job lifecycle states (in-memory; the journal uses accepted/ok/...).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, QUARANTINED)

_counter = itertools.count(1)


def new_job_id() -> str:
    """Unique, sortable-enough job id (``job-<n>-<entropy>``)."""
    return f"job-{next(_counter)}-{secrets.token_hex(4)}"


@dataclass
class Job:
    """One admitted floorplan request and everything that happened to it."""

    job_id: str
    request: FloorplanRequest
    status: str = QUEUED
    attempts: int = 0
    error: str | None = None
    #: Cache key of the produced artifact (set on completion).
    result_key: str | None = None
    #: Result summary (MTTF/CPD/degradation) — small, always kept.
    summary: dict | None = None
    #: Full flow_result document; held in memory for the job's lifetime
    #: so the submitting client can read it without a cache round-trip.
    document: dict | None = None
    cache_hit: bool = False
    #: True when this job piggybacked on an identical in-flight job.
    coalesced: bool = False
    wall_s: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self, include_document: bool = False) -> dict:
        """JSON-ready public view (HTTP responses, CLI tables)."""
        data = {
            "job_id": self.job_id,
            "status": self.status,
            "tenant": self.request.tenant,
            "key": self.request.cache_key(),
            "attempts": self.attempts,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "wall_s": self.wall_s,
            "summary": self.summary,
        }
        if include_document:
            data["document"] = self.document
        return data


class JobStore:
    """The journal-backed durable view of the job table."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.journal = SweepCheckpoint(path)

    # -- writes (each fsynced before returning) -------------------------------
    def record_accepted(self, job: Job) -> None:
        self.journal.append({
            "entry": job.job_id,
            "status": "accepted",
            "tenant": job.request.tenant,
            "key": job.request.cache_key(),
            "request": job.request.to_dict(),
        })

    def record_done(self, job: Job) -> None:
        self.journal.append({
            "entry": job.job_id,
            "status": "ok",
            "key": job.result_key,
            "cache_hit": job.cache_hit,
            "coalesced": job.coalesced,
            "attempts": job.attempts,
            "summary": job.summary,
        })

    def record_failed(self, job: Job, quarantined: bool = False) -> None:
        self.journal.append({
            "entry": job.job_id,
            "status": "quarantined" if quarantined else "failed",
            "attempts": job.attempts,
            "error": job.error,
        })

    # -- restart recovery -----------------------------------------------------
    def pending(self) -> list[Job]:
        """Jobs whose latest record is ``accepted`` — the restart worklist.

        Reconstructed in journal order so a resumed service processes
        survivors in their original acceptance order.
        """
        latest = self.journal.latest()
        order: list[str] = []
        for record in self.journal.records():
            job_id = record["entry"]
            if job_id not in order:
                order.append(job_id)
        jobs = []
        for job_id in order:
            record = latest[job_id]
            if record.get("status") != "accepted":
                continue
            jobs.append(Job(
                job_id=job_id,
                request=FloorplanRequest.from_dict(record["request"]),
            ))
        return jobs

    def statuses(self) -> dict[str, str]:
        """Latest journal status per job id (post-mortems, tests)."""
        return {
            job_id: record.get("status", "?")
            for job_id, record in self.journal.latest().items()
        }
