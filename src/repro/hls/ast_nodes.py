"""AST node types produced by the mini-C parser.

The AST is deliberately small: a program is a statement list; expressions
are the C integer operator set.  Control flow is restricted to what
synthesizes to a static dataflow graph — ``if``/``else`` (if-converted to
SELECT operations) and constant-trip-count ``for`` loops (fully unrolled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# -- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    """Integer literal."""

    value: int
    line: int = 0


@dataclass(frozen=True)
class VarRef:
    """Reference to a scalar variable."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class ArrayRef:
    """Reference to an array element, e.g. ``a[i + 1]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class UnaryOp:
    """Unary expression: ``-x``, ``~x``, ``!x``."""

    op: str
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class BinaryOp:
    """Binary expression over the C integer operator set."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Conditional:
    """Ternary expression ``cond ? a : b``."""

    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"
    line: int = 0


Expr = Union[NumberLit, VarRef, ArrayRef, UnaryOp, BinaryOp, Conditional]

# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    """Variable or array declaration.

    ``qualifier`` is "", "in" or "out"; ``array_size`` is None for scalars.
    """

    qualifier: str
    ctype: str  # "char" | "short" | "int"
    name: str
    array_size: int | None = None
    init: Expr | None = None
    line: int = 0


@dataclass(frozen=True)
class Assign:
    """Assignment to a scalar or array element.

    ``op`` is "=" or a compound operator like "+=".
    """

    target: Union[VarRef, ArrayRef]
    op: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class If:
    """Conditional statement (if-converted during lowering)."""

    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()
    line: int = 0


@dataclass(frozen=True)
class For:
    """Constant-trip-count loop, fully unrolled during lowering.

    The loop variable must be initialised to a constant, compared against a
    constant with ``<``/``<=``/``>``/``>=``, and stepped by a constant
    ``+=``/``-=``/``++``/``--``.
    """

    var: str
    init: Expr
    cond: Expr
    step: Assign
    body: tuple["Stmt", ...]
    line: int = 0


Stmt = Union[Decl, Assign, If, For]


@dataclass
class Program:
    """A parsed mini-C translation unit."""

    statements: list[Stmt] = field(default_factory=list)
    name: str = "program"


#: Bitwidths of the mini-C integer types.
TYPE_WIDTHS = {"char": 8, "short": 16, "int": 32}
