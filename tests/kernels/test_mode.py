"""The REPRO_KERNELS mode knob: env default, scope override, validation."""

from __future__ import annotations

import pytest

from repro.errors import KernelConfigError
from repro.kernels import (
    KERNELS_ENV,
    KERNEL_MODES,
    kernels_mode,
    kernels_scope,
    vectorized,
)


class TestModeKnob:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert kernels_mode() == "vector"
        assert vectorized()

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "scalar")
        assert kernels_mode() == "scalar"
        assert not vectorized()

    def test_env_is_normalized(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "  VECTOR ")
        assert kernels_mode() == "vector"

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "")
        assert kernels_mode() == "vector"

    def test_unknown_env_mode_raises_typed(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "simd")
        with pytest.raises(KernelConfigError, match="simd"):
            kernels_mode()

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "scalar")
        with kernels_scope("vector"):
            assert vectorized()
        assert not vectorized()

    def test_scope_nests_and_restores(self):
        with kernels_scope("scalar"):
            with kernels_scope("vector"):
                assert kernels_mode() == "vector"
            assert kernels_mode() == "scalar"

    def test_scope_rejects_unknown_mode(self):
        with pytest.raises(KernelConfigError):
            with kernels_scope("gpu"):
                pass  # pragma: no cover

    def test_modes_are_the_documented_pair(self):
        assert KERNEL_MODES == ("vector", "scalar")
