"""Resource-constrained list scheduling of a DFG into contexts.

A multi-context CGRRA loads one context per clock cycle (paper Fig. 1), so
scheduling assigns every compute operation a *cycle* = context index.  The
number of contexts equals the design latency (Section VI).  Constraints:

* **capacity** — at most ``fabric capacity`` compute ops per context (each
  op occupies one PE for that cycle);
* **dependencies** — an op may execute in the same cycle as a producer only
  by *chaining* combinationally; the accumulated PE delay of any chain must
  fit in ``chain_limit_ns`` (a fraction of the clock period, reserving
  headroom for wire delay that is unknown before placement);
* otherwise the consumer waits for a later cycle and reads the producer's
  output register.

Priority is classic list scheduling: smaller ALAP slack first (critical
operations schedule earliest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.opcodes import OpKind, op_delay_ns
from repro.errors import SchedulingError
from repro.hls.dfg import DataflowGraph
from repro.units import CLOCK_PERIOD_NS

#: Fraction of the clock period available to PE-delay chains at schedule
#: time; the remainder is headroom for post-placement wire delay.
DEFAULT_CHAIN_FRACTION = 0.8


@dataclass
class Schedule:
    """Result of scheduling: context assignment for every compute op.

    Attributes
    ----------
    dfg:
        The scheduled dataflow graph.
    cycle_of:
        ``{node_id: context index}`` for compute nodes.
    num_contexts:
        Total number of contexts (= latency in cycles).
    chain_limit_ns:
        The chaining budget used.
    """

    dfg: DataflowGraph
    cycle_of: dict[int, int]
    num_contexts: int
    chain_limit_ns: float

    def ops_in_cycle(self, cycle: int) -> list[int]:
        """Compute node ids scheduled in ``cycle`` (sorted)."""
        return sorted(n for n, c in self.cycle_of.items() if c == cycle)

    def max_ops_per_cycle(self) -> int:
        counts: dict[int, int] = {}
        for cycle in self.cycle_of.values():
            counts[cycle] = counts.get(cycle, 0) + 1
        return max(counts.values(), default=0)

    def validate(self, capacity: int | None = None) -> None:
        """Check precedence and capacity; raises :class:`SchedulingError`."""
        for node in self.dfg.compute_nodes():
            cycle = self.cycle_of.get(node.node_id)
            if cycle is None:
                raise SchedulingError(f"compute node {node.node_id} unscheduled")
            for pred in node.inputs:
                pred_node = self.dfg.node(pred)
                if pred_node.is_compute and self.cycle_of[pred] > cycle:
                    raise SchedulingError(
                        f"node {node.node_id} (cycle {cycle}) depends on node "
                        f"{pred} scheduled later (cycle {self.cycle_of[pred]})"
                    )
        if capacity is not None and self.max_ops_per_cycle() > capacity:
            raise SchedulingError(
                f"schedule exceeds capacity {capacity}: "
                f"{self.max_ops_per_cycle()} ops in one cycle"
            )


def asap_cycles(dfg: DataflowGraph, chain_limit_ns: float) -> dict[int, int]:
    """Unconstrained-resources ASAP cycle for each compute node.

    Chaining-aware: consecutive dependent ops share a cycle while their
    accumulated PE delay fits in ``chain_limit_ns``.
    """
    cycle: dict[int, int] = {}
    finish: dict[int, float] = {}  # accumulated chain delay within the cycle
    for nid in dfg.topological_order():
        node = dfg.node(nid)
        if not node.is_compute:
            # Pseudo nodes are available "at time zero" of cycle 0.
            cycle[nid] = 0
            finish[nid] = 0.0
            continue
        delay = op_delay_ns(node.kind, node.width)
        if delay > chain_limit_ns:
            raise SchedulingError(
                f"op {nid} ({node.kind.value}) delay {delay:.2f}ns exceeds the "
                f"chain limit {chain_limit_ns:.2f}ns"
            )
        my_cycle = 0
        start = 0.0
        for pred in node.inputs:
            pred_node = dfg.node(pred)
            if not pred_node.is_compute:
                continue
            p_cycle, p_finish = cycle[pred], finish[pred]
            # Earliest this op can start relative to that producer.
            if p_finish + delay <= chain_limit_ns:
                cand_cycle, cand_start = p_cycle, p_finish
            else:
                cand_cycle, cand_start = p_cycle + 1, 0.0
            if cand_cycle > my_cycle:
                my_cycle, start = cand_cycle, cand_start
            elif cand_cycle == my_cycle:
                start = max(start, cand_start)
        if start + delay > chain_limit_ns:
            my_cycle += 1
            start = 0.0
        cycle[nid] = my_cycle
        finish[nid] = start + delay
    return {
        nid: c for nid, c in cycle.items() if dfg.node(nid).is_compute
    }


def alap_cycles(
    dfg: DataflowGraph, latest: int, chain_limit_ns: float
) -> dict[int, int]:
    """As-late-as-possible cycle per compute node, for a given latency bound.

    Used only for priorities, so a simpler no-chaining model (every
    dependent pair separated by one cycle when chaining would overflow) is
    applied conservatively: chaining is ignored, giving each op the latest
    cycle such that all successors still fit.  This under-estimates slack
    uniformly, which is harmless for ordering.
    """
    alap: dict[int, int] = {}
    for nid in reversed(dfg.topological_order()):
        node = dfg.node(nid)
        if not node.is_compute:
            continue
        succ_limit = latest
        for succ in dfg.successors(nid):
            succ_node = dfg.node(succ)
            if succ_node.is_compute and succ in alap:
                succ_limit = min(succ_limit, alap[succ])
        alap[nid] = succ_limit
    return alap


def schedule_dfg(
    dfg: DataflowGraph,
    capacity: int,
    clock_period_ns: float = CLOCK_PERIOD_NS,
    chain_fraction: float = DEFAULT_CHAIN_FRACTION,
    min_contexts: int = 1,
) -> Schedule:
    """List-schedule ``dfg`` onto a fabric with ``capacity`` PEs per cycle.

    Parameters
    ----------
    capacity:
        Maximum compute ops per context (the fabric's PE count).
    clock_period_ns, chain_fraction:
        The chaining budget is their product.
    min_contexts:
        Pad the schedule to at least this many contexts (an empty trailing
        context is legal — the fabric simply idles).
    """
    if capacity < 1:
        raise SchedulingError(f"capacity must be positive, got {capacity}")
    chain_limit = clock_period_ns * chain_fraction
    asap = asap_cycles(dfg, chain_limit)
    if not asap:
        return Schedule(dfg, {}, max(min_contexts, 1), chain_limit)
    horizon = max(asap.values())
    alap = alap_cycles(dfg, horizon, chain_limit)

    compute_ids = [n.node_id for n in dfg.compute_nodes()]
    unscheduled = set(compute_ids)
    cycle_of: dict[int, int] = {}
    finish: dict[int, float] = {}
    current_cycle = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 4 * len(compute_ids) + horizon + 16:
            raise SchedulingError("scheduler failed to converge")
        # Ops whose compute predecessors are all scheduled in cycles < current,
        # or in the current cycle with chaining feasibility.  Re-scan after
        # every placement round so newly-enabled chained consumers can join
        # the same cycle.
        placed_this_cycle = 0
        progressed = True
        while progressed and placed_this_cycle < capacity:
            progressed = False
            ready: list[tuple[int, int, int]] = []
            for nid in unscheduled:
                node = dfg.node(nid)
                ok = True
                for pred in node.inputs:
                    pred_node = dfg.node(pred)
                    if pred_node.is_compute and (
                        pred in unscheduled or cycle_of[pred] > current_cycle
                    ):
                        ok = False
                        break
                if ok:
                    ready.append((alap.get(nid, horizon), asap[nid], nid))
            ready.sort()
            for _, _, nid in ready:
                if placed_this_cycle >= capacity:
                    break
                node = dfg.node(nid)
                delay = op_delay_ns(node.kind, node.width)
                start = 0.0
                for pred in node.inputs:
                    pred_node = dfg.node(pred)
                    if pred_node.is_compute and cycle_of[pred] == current_cycle:
                        start = max(start, finish[pred])
                if start + delay > chain_limit:
                    continue  # must wait for the next cycle
                cycle_of[nid] = current_cycle
                finish[nid] = start + delay
                unscheduled.discard(nid)
                placed_this_cycle += 1
                progressed = True
        current_cycle += 1

    num_contexts = max(max(cycle_of.values()) + 1, min_contexts)
    schedule = Schedule(dfg, cycle_of, num_contexts, chain_limit)
    schedule.validate(capacity)
    return schedule

