"""Crash-safe file writes: one shared ``write-tmp → fsync → rename`` helper.

Every durable JSON artifact in the repo — sweep checkpoints, the service's
persistent artifact cache, saved designs/floorplans/flow records — must
survive a crash mid-write without leaving a half-written file under the
final name.  The POSIX recipe is always the same:

1. write the full payload to a temporary file *in the same directory*
   (``os.replace`` is only atomic within one filesystem);
2. flush and ``fsync`` the temporary file so the bytes are on disk;
3. ``os.replace`` it over the destination (atomic on POSIX);
4. ``fsync`` the directory so the rename itself is durable.

Ad-hoc ``open(path, "w")`` writers re-implement this wrong (or not at
all); this module is the single implementation they all share.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (never a torn file).

    The temporary file carries the writer's PID so two concurrent writers
    never collide on the scratch name; the loser of the final ``replace``
    race simply has its complete file overwritten by another complete
    file — readers observe one version or the other, never a mix.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.parent / f".{target.name}.tmp.{os.getpid()}"
    try:
        with open(scratch, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    except BaseException:
        # Leave no scratch litter behind on any failure (including ^C).
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    _fsync_dir(target.parent)


def atomic_write_text(
    path: str | os.PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Durably replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: str | os.PathLike,
    document: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> None:
    """Durably replace ``path`` with a JSON rendering of ``document``.

    Matches :func:`repro.io.serialize.save_json`'s formatting (pretty,
    stable key order, trailing newline) so artifacts written through
    either path are byte-identical.
    """
    text = json.dumps(document, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"))


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush a rename to disk; best-effort where directories can't be
    opened (non-POSIX filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
