"""Hierarchical timing spans for the CAD flow.

A :class:`Span` is a context manager that measures one stage of the flow
(``flow > phase2 > algorithm1 > binary_search > milp_solve > lp_relax``).
Nesting is tracked through a :mod:`contextvars` variable, so deeply nested
library code can open spans without a tracer object being threaded through
every signature — and the instrumentation composes correctly across
threads and async contexts.

Spans always measure time (``perf_counter`` pairs are cheap enough for the
paths we instrument — stages, solves, iterations; never per-node inner
loops).  They are *emitted* only when sinks are attached via
:func:`add_sink` / :func:`attached`; with no sinks the overhead is two
clock reads and a contextvar set/reset per span.

Point-in-time :func:`event` records (e.g. a flow falling back to the
original floorplan) share the sink pipeline and carry the current span
path as their parent.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Any, Iterator, Protocol

#: Separator between span names in a path.
PATH_SEP = " > "

_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Process-local list of attached sinks (empty = tracing disabled).
_sinks: list["SpanSink"] = []


class SpanSink(Protocol):
    """Anything that can receive finished spans and point events."""

    def on_span(self, span: "Span") -> None:  # pragma: no cover - protocol
        ...

    def on_event(self, record: dict) -> None:  # pragma: no cover - protocol
        ...


class Span:
    """One timed stage of the flow; use as a context manager.

    Attributes
    ----------
    name:
        Local stage name (``"lp_relax"``).
    path:
        Full ``PATH_SEP``-joined path from the root span.
    parent_path:
        Path of the enclosing span, or ``None`` for a root span.
    attrs:
        Free-form attributes; set at construction or via :meth:`set`.
    """

    __slots__ = (
        "name", "path", "parent_path", "attrs",
        "_start", "_end", "_token",
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs
        self.path = name
        self.parent_path: str | None = None
        self._start: float | None = None
        self._end: float | None = None
        self._token: contextvars.Token | None = None

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is not None:
            self.parent_path = parent.path
            self.path = parent.path + PATH_SEP + self.name
        self._token = _current.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end = time.perf_counter()
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if _sinks:
            for sink in list(_sinks):
                sink.on_span(self)

    # -- accessors -----------------------------------------------------------
    @property
    def start_s(self) -> float:
        """``perf_counter`` timestamp at entry (monotonic process clock)."""
        return self._start if self._start is not None else 0.0

    @property
    def duration_s(self) -> float:
        """Seconds elapsed; live while the span is open, final after exit."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def to_record(self) -> dict:
        """Flat dict form used by the JSONL sink and the tests."""
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "parent": self.parent_path,
            "t_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.path!r}, duration_s={self.duration_s:.6f})"


def span(name: str, **attrs: Any) -> Span:
    """Open a new span: ``with span("milp_solve", strategy="two-step"):``."""
    return Span(name, **attrs)


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    return _current.get()


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time event parented to the current span.

    Events are dropped when no sink is attached (they exist for offline
    analysis, not control flow); counters are the always-on alternative.
    """
    if not _sinks:
        return
    parent = _current.get()
    record = {
        "type": "event",
        "name": name,
        "path": (parent.path + PATH_SEP + name) if parent else name,
        "parent": parent.path if parent else None,
        "t_s": time.perf_counter(),
        "duration_s": 0.0,
        "attrs": dict(attrs),
    }
    for sink in list(_sinks):
        sink.on_event(record)


# -- sink management -----------------------------------------------------------


def add_sink(sink: SpanSink) -> None:
    """Attach ``sink``; it receives every finished span and event."""
    if sink not in _sinks:
        _sinks.append(sink)


def remove_sink(sink: SpanSink) -> None:
    """Detach ``sink`` (no-op when not attached)."""
    with contextlib.suppress(ValueError):
        _sinks.remove(sink)


def active_sinks() -> tuple[SpanSink, ...]:
    """Snapshot of the attached sinks (mostly for tests)."""
    return tuple(_sinks)


def clear_sinks() -> None:
    """Detach every sink.

    Called first thing in forked sweep workers: a fork inherits the
    parent's sink list (including open trace-file handles), and a child
    writing to those would interleave with — and duplicate — the parent's
    records.  Workers collect into their own sink instead; the parent
    replays the returned records.
    """
    _sinks.clear()


@contextlib.contextmanager
def attached(*sinks: SpanSink) -> Iterator[None]:
    """Scope-attach sinks: ``with attached(tree_sink): run_flow(...)``."""
    for sink in sinks:
        add_sink(sink)
    try:
        yield
    finally:
        for sink in sinks:
            remove_sink(sink)
