"""Experiment-driver tests (configuration logic only — the heavy runs
live in benchmarks/ and the CLI)."""

from __future__ import annotations

import pytest

from repro.report.experiments import (
    ExperimentConfig,
    QUICK_MAX_FABRIC,
    flow_config,
)


class TestExperimentConfig:
    def test_quick_suite_caps_fabrics(self):
        config = ExperimentConfig(scale="quick")
        suite = config.suite()
        assert len(suite) == 27
        assert all(e.fabric_dim <= QUICK_MAX_FABRIC for e in suite)

    def test_paper_suite_is_verbatim(self):
        config = ExperimentConfig(scale="paper")
        suite = config.suite()
        assert {e.fabric_dim for e in suite} == {4, 8, 16}
        assert suite[-1].pe_count == 3089

    def test_only_filter(self):
        config = ExperimentConfig(scale="paper", only=["B5", "B9"])
        assert [e.name for e in config.suite()] == ["B5", "B9"]

    def test_only_filter_applies_before_scaling(self):
        config = ExperimentConfig(scale="quick", only=["B27"])
        (entry,) = config.suite()
        assert entry.name == "B27s"
        assert entry.fabric_dim == QUICK_MAX_FABRIC

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="galactic").suite()


class TestFlowConfig:
    def test_mode_threading(self):
        config = flow_config("freeze", 42.0)
        assert config.algorithm1.mode == "freeze"
        assert config.algorithm1.remap.time_limit_s == 42.0

    def test_default_mode_rotate(self):
        assert flow_config("rotate", 10.0).algorithm1.mode == "rotate"


class TestParallelSweep:
    def test_jobs2_matches_serial_and_resumes(self, tmp_path):
        """``--jobs 2`` is a pure wall-clock optimisation: measurements,
        checkpoint records and resume semantics are identical to serial."""
        pytest.importorskip("scipy")
        import json

        from repro.report.experiments import run_table1

        def sweep(checkpoint, jobs, resume=False):
            config = ExperimentConfig(
                scale="quick",
                only=["B1", "B4"],
                time_limit_s=8.0,
                checkpoint=str(checkpoint),
                resume=resume,
                jobs=jobs,
            )
            rows = run_table1(config, log=lambda line: None)
            return [
                (m.entry.name, m.freeze_increase, m.rotate_increase)
                for m in rows
            ]

        def records(path):
            with open(path) as fh:
                return [json.loads(line) for line in fh]

        serial_ckpt = tmp_path / "serial.jsonl"
        parallel_ckpt = tmp_path / "parallel.jsonl"
        serial = sweep(serial_ckpt, jobs=1)
        parallel = sweep(parallel_ckpt, jobs=2)
        assert parallel == serial

        by_entry = lambda record: record["entry"]  # noqa: E731
        serial_records = sorted(records(serial_ckpt), key=by_entry)
        parallel_records = sorted(records(parallel_ckpt), key=by_entry)
        assert parallel_records == serial_records

        # A truncated checkpoint resumes under --jobs without re-running
        # the completed entry, and the file ends up complete.
        done = [r for r in serial_records if r["entry"] == "B1"]
        resume_ckpt = tmp_path / "resume.jsonl"
        resume_ckpt.write_text(
            "".join(json.dumps(r) + "\n" for r in done)
        )
        resumed = sweep(resume_ckpt, jobs=2, resume=True)
        assert resumed == serial
        assert sorted(records(resume_ckpt), key=by_entry) == serial_records


class TestCliParsing:
    def test_main_rejects_unknown_experiment(self, capsys):
        from repro.report.experiments import main

        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_main_fig2a_runs(self, capsys):
        """fig2a is the cheapest experiment; run it through the CLI."""
        pytest.importorskip("scipy")
        from repro.report.experiments import main

        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Original accumulated stress" in out
        assert "Re-mapped accumulated stress" in out
