"""Levelized vectorized STA over :class:`~repro.timing.graph.ContextTimingGraph`.

The scalar path (:func:`repro.timing.sta.analyze_context`) walks every
intra-context edge in Python: one ``max`` and one dict lookup per edge
per call, re-run for every candidate floorplan of every Algorithm 1
iteration.  This kernel lowers each graph **once** into index arrays —
local op indices, per-node delays, edge endpoint arrays *pre-permuted*
by topological level so each level is a zero-copy slice — and then
computes all arrival times for one floorplan with a handful of numpy
calls per level.

Because contexts share no edges, the per-graph levelizations compose: a
whole design lowers into one combined structure
(:class:`DesignStaLowering`, cached on the first graph) whose level
``l`` slice holds the level-``l`` edges of *every* context, so
:func:`analyze_design` propagates arrivals for all contexts in one pass
— the per-level numpy call overhead is paid once per design, not once
per context.

Bit-identity with the scalar path holds because

* wire delays are computed with the exact same float expression
  (``(|dr| + |dc|) * unit_wire_delay_ns``, same association order);
* arrival starts are pure ``max`` reductions, and float ``max`` is exact
  regardless of reduction order (no NaNs enter);
* the order-dependent ``DELAY_EPS`` CPD scan stays a (tiny) sequential
  Python loop over the vector-computed completions in ``graph.ops``
  order — exactly the scalar scan (see the float-guard regression tests
  in ``tests/kernels/test_eps.py``).

The lowerings are cached on the graph objects (graphs are built once
per design by :func:`repro.timing.graph.build_timing_graphs` and never
mutated afterwards); floorplan-dependent arrays are rebuilt per call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.context import Floorplan
from repro.kernels import kernel_timer, note_lowering
from repro.timing.graph import ContextTimingGraph
from repro.timing.sta import DELAY_EPS

_LOWERING_ATTR = "_kernels_sta_lowering"
_DESIGN_ATTR = "_kernels_sta_design"


@dataclass
class StaLowering:
    """Structure-of-arrays form of one context timing graph.

    ``ops`` fixes the local index space (position ``i`` <-> op id
    ``ops[i]``, in ``graph.ops`` order so the CPD scan order is
    preserved).  ``esrc``/``edst`` keep ``graph.intra_edges`` order (for
    :func:`edge_wire_ns`); the ``fwd_*`` arrays repeat the edge endpoints
    permuted so destination-level ``l`` edges occupy
    ``[fwd_bounds[l-1], fwd_bounds[l])`` (with ``fwd_nodes`` the unique
    destinations per level), and the ``rev_*`` arrays do the same grouped
    by source *reverse* level for the continuation DP.
    """

    ops: list[int]
    delay: np.ndarray  # (n,) PE delays, graph.ops order
    esrc: np.ndarray  # (e,) local source index per intra edge
    edst: np.ndarray  # (e,) local destination index per intra edge
    fwd_src: np.ndarray  # (e,) sources, forward-level order
    fwd_dst: np.ndarray  # (e,) destinations, forward-level order
    fwd_bounds: list[int]  # level slice offsets into fwd_* (len depth+1)
    fwd_nodes: np.ndarray  # unique destinations, forward-level order
    fwd_node_bounds: list[int]  # level slice offsets into fwd_nodes
    rev_src: np.ndarray  # (e,) sources, reverse-level order
    rev_dst: np.ndarray  # (e,) destinations, reverse-level order
    rev_bounds: list[int]  # level slice offsets into rev_*
    structure_key: tuple[int, int]


@dataclass
class DesignStaLowering:
    """All of a design's context graphs fused into one index space.

    Local node ``i`` of graph ``g`` lives at combined index
    ``node_bounds[g] + i``; ``fwd_*`` merge every graph's level-``l``
    slice into the combined level ``l``.  Holding ``graphs`` (identity
    validation) from an attribute of ``graphs[0]`` makes a reference
    cycle, which the gc collects once the graphs die.
    """

    graphs: list[ContextTimingGraph]
    per_graph: list[StaLowering]
    ops: list[int]  # concatenated graph.ops
    delay: np.ndarray
    fwd_src: np.ndarray
    fwd_dst: np.ndarray
    fwd_bounds: list[int]
    fwd_nodes: np.ndarray
    fwd_node_bounds: list[int]
    node_bounds: list[int]  # per-graph node ranges (len graphs+1)


def _structure_key(graph: ContextTimingGraph) -> tuple[int, int]:
    return (len(graph.ops), len(graph.intra_edges))


def _level_order(
    edge_levels: list[int], esrc: np.ndarray, edst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[int], np.ndarray, list[int]]:
    """Permute edges so each level is contiguous.

    Returns ``(src, dst, bounds, nodes, node_bounds)`` where level ``l``
    (1-based) edges are ``src[bounds[l-1]:bounds[l]]`` etc. and ``nodes``
    holds the unique destinations per level (for the arrival writeback).
    Within-level order is irrelevant to the kernels (``max`` reductions),
    but kept stable for determinism.
    """
    levels = np.asarray(edge_levels, dtype=np.intp)
    perm = np.argsort(levels, kind="stable")
    src = np.ascontiguousarray(esrc[perm])
    dst = np.ascontiguousarray(edst[perm])
    depth = int(levels.max()) if len(edge_levels) else 0
    counts = np.bincount(levels, minlength=depth + 1)
    bounds = [0]
    for lvl in range(1, depth + 1):
        bounds.append(bounds[-1] + int(counts[lvl]))
    node_chunks: list[np.ndarray] = []
    node_bounds = [0]
    for lvl in range(depth):
        uniq = np.unique(dst[bounds[lvl] : bounds[lvl + 1]])
        node_chunks.append(uniq)
        node_bounds.append(node_bounds[-1] + len(uniq))
    nodes = (
        np.concatenate(node_chunks)
        if node_chunks
        else np.empty(0, dtype=np.intp)
    )
    return src, dst, bounds, nodes, node_bounds


def lower_graph(graph: ContextTimingGraph) -> StaLowering:
    """The (cached) lowering of one graph; raises on cyclic graphs.

    Calls :meth:`~repro.timing.graph.ContextTimingGraph.topological_ops`
    for levelization, so a cyclic graph raises the same
    :class:`~repro.errors.TimingError` the scalar path raises.
    """
    cached: StaLowering | None = getattr(graph, _LOWERING_ATTR, None)
    if cached is not None and cached.structure_key == _structure_key(graph):
        note_lowering("sta", hit=True)
        return cached
    note_lowering("sta", hit=False)

    ops = list(graph.ops)
    index_of = {op: i for i, op in enumerate(ops)}
    delay = np.array([graph.delay_of[op] for op in ops], dtype=float)
    esrc = np.array(
        [index_of[src] for src, _ in graph.intra_edges], dtype=np.intp
    )
    edst = np.array(
        [index_of[dst] for _, dst in graph.intra_edges], dtype=np.intp
    )

    preds = graph.intra_preds()
    succs = graph.intra_succs()
    topo = graph.topological_ops()  # raises TimingError on cycles

    level: dict[int, int] = {}
    for op in topo:
        level[op] = max((level[p] + 1 for p in preds[op]), default=0)
    rlevel: dict[int, int] = {}
    for op in reversed(topo):
        rlevel[op] = max((rlevel[s] + 1 for s in succs[op]), default=0)

    fwd_src, fwd_dst, fwd_bounds, fwd_nodes, fwd_node_bounds = _level_order(
        [level[dst] for _, dst in graph.intra_edges], esrc, edst
    )
    rev_src, rev_dst, rev_bounds, _, _ = _level_order(
        [rlevel[src] for src, _ in graph.intra_edges], esrc, edst
    )

    lowering = StaLowering(
        ops=ops,
        delay=delay,
        esrc=esrc,
        edst=edst,
        fwd_src=fwd_src,
        fwd_dst=fwd_dst,
        fwd_bounds=fwd_bounds,
        fwd_nodes=fwd_nodes,
        fwd_node_bounds=fwd_node_bounds,
        rev_src=rev_src,
        rev_dst=rev_dst,
        rev_bounds=rev_bounds,
        structure_key=_structure_key(graph),
    )
    setattr(graph, _LOWERING_ATTR, lowering)
    return lowering


def lower_design(graphs: list[ContextTimingGraph]) -> DesignStaLowering:
    """The (cached) fused lowering of a design's context graphs.

    Cached on ``graphs[0]`` and revalidated by graph identity plus each
    graph's structure key, so passing a rebuilt (or different) graph list
    re-lowers.  A cache hit counts one ``kernels.sta.cache_hits``; a miss
    counts one ``kernels.sta.lowerings`` per constituent graph.
    """
    anchor = graphs[0]
    cached: DesignStaLowering | None = getattr(anchor, _DESIGN_ATTR, None)
    if (
        cached is not None
        and len(cached.graphs) == len(graphs)
        and all(a is b for a, b in zip(cached.graphs, graphs))
        and all(
            lo.structure_key == _structure_key(g)
            for lo, g in zip(cached.per_graph, graphs)
        )
    ):
        note_lowering("sta", hit=True)
        return cached

    per_graph = [lower_graph(g) for g in graphs]
    node_bounds = [0]
    for lowering in per_graph:
        node_bounds.append(node_bounds[-1] + len(lowering.ops))
    depth = max((len(lo.fwd_bounds) - 1 for lo in per_graph), default=0)
    src_chunks: list[np.ndarray] = []
    dst_chunks: list[np.ndarray] = []
    node_chunks: list[np.ndarray] = []
    fwd_bounds = [0]
    fwd_node_bounds = [0]
    for lvl in range(depth):
        for offset, lowering in zip(node_bounds, per_graph):
            if lvl >= len(lowering.fwd_bounds) - 1:
                continue
            a, b = lowering.fwd_bounds[lvl], lowering.fwd_bounds[lvl + 1]
            src_chunks.append(lowering.fwd_src[a:b] + offset)
            dst_chunks.append(lowering.fwd_dst[a:b] + offset)
            na = lowering.fwd_node_bounds[lvl]
            nb = lowering.fwd_node_bounds[lvl + 1]
            node_chunks.append(lowering.fwd_nodes[na:nb] + offset)
        fwd_bounds.append(sum(len(c) for c in src_chunks))
        fwd_node_bounds.append(sum(len(c) for c in node_chunks))
    empty = np.empty(0, dtype=np.intp)
    lowering = DesignStaLowering(
        graphs=list(graphs),
        per_graph=per_graph,
        ops=[op for lo in per_graph for op in lo.ops],
        delay=(
            np.concatenate([lo.delay for lo in per_graph])
            if per_graph
            else np.empty(0, dtype=float)
        ),
        fwd_src=np.concatenate(src_chunks) if src_chunks else empty,
        fwd_dst=np.concatenate(dst_chunks) if dst_chunks else empty,
        fwd_bounds=fwd_bounds,
        fwd_nodes=np.concatenate(node_chunks) if node_chunks else empty,
        fwd_node_bounds=fwd_node_bounds,
        node_bounds=node_bounds,
    )
    try:
        setattr(anchor, _DESIGN_ATTR, lowering)
    except AttributeError:  # pragma: no cover
        pass
    return lowering


def _pe_geometry(
    ops: list[int], floorplan: Floorplan
) -> tuple[np.ndarray, np.ndarray] | None:
    """Per-op grid rows/cols under ``floorplan``; None if an op is unbound."""
    pe_of = floorplan.pe_of
    try:
        pe = np.fromiter(
            (pe_of[op] for op in ops), dtype=np.intp, count=len(ops)
        )
    except KeyError:
        return None
    fabric = floorplan.fabric
    return fabric.row_of[pe], fabric.col_of[pe]


def _wire(
    rows: np.ndarray,
    cols: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    unit_wire_delay_ns: float,
) -> np.ndarray:
    """Wire delays (ns) for the given edge endpoint arrays.

    Elementwise identical to the scalar
    :func:`repro.timing.sta._wire_ns`: Manhattan distance computed as
    ``|dr| + |dc|`` (same association) times the unit wire delay.
    """
    lengths = np.abs(rows[src] - rows[dst]) + np.abs(cols[src] - cols[dst])
    return lengths * unit_wire_delay_ns


def _propagate(
    delay: np.ndarray,
    fwd_src: np.ndarray,
    fwd_dst: np.ndarray,
    fwd_bounds: list[int],
    fwd_nodes: np.ndarray,
    fwd_node_bounds: list[int],
    wire: np.ndarray,
) -> np.ndarray:
    """Levelized arrival propagation (shared by per-graph/per-design paths)."""
    start = np.zeros(len(delay), dtype=float)
    arrival = delay.copy()  # level-0 nodes: start == 0
    for lvl in range(len(fwd_bounds) - 1):
        a, b = fwd_bounds[lvl], fwd_bounds[lvl + 1]
        dst = fwd_dst[a:b]
        np.maximum.at(start, dst, arrival[fwd_src[a:b]] + wire[a:b])
        nodes = fwd_nodes[fwd_node_bounds[lvl] : fwd_node_bounds[lvl + 1]]
        arrival[nodes] = start[nodes] + delay[nodes]
    return arrival


def _cpd_scan(
    ops: list[int], completions: list[float]
) -> tuple[float, list[int]]:
    """The sequential DELAY_EPS critical-endpoint scan.

    Order-dependent (the running ``cpd`` only advances past a DELAY_EPS
    guard), so it stays a Python loop over the vector-computed
    completions in ``graph.ops`` order — bit-identical to the scalar
    scan by construction.
    """
    cpd = 0.0
    critical: list[int] = []
    for op, completion in zip(ops, completions):
        if completion > cpd + DELAY_EPS:
            cpd = completion
            critical = [op]
        elif completion > cpd - DELAY_EPS:
            critical.append(op)
    return cpd, critical


def arrivals(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> tuple[dict[int, float], float, list[int]] | None:
    """``(arrival_ns, cpd_ns, critical_ops)`` of one context, vectorized.

    Returns ``None`` when the floorplan does not bind every op of the
    graph (the caller falls back to the scalar path for its error).
    """
    lowering = lower_graph(graph)
    with kernel_timer("sta"):
        geometry = _pe_geometry(lowering.ops, floorplan)
        if geometry is None:
            return None
        rows, cols = geometry
        wire = _wire(
            rows,
            cols,
            lowering.fwd_src,
            lowering.fwd_dst,
            floorplan.fabric.unit_wire_delay_ns,
        )
        arrival = _propagate(
            lowering.delay,
            lowering.fwd_src,
            lowering.fwd_dst,
            lowering.fwd_bounds,
            lowering.fwd_nodes,
            lowering.fwd_node_bounds,
            wire,
        )
        completions = arrival.tolist()
        cpd, critical = _cpd_scan(lowering.ops, completions)
        return dict(zip(lowering.ops, completions)), cpd, critical


def analyze_design(
    graphs: list[ContextTimingGraph], floorplan: Floorplan
) -> list[tuple[dict[int, float], float, list[int]]] | None:
    """Per-context ``(arrival_ns, cpd_ns, critical_ops)`` in one fused pass.

    All contexts' arrivals propagate level-by-level through the combined
    :class:`DesignStaLowering` (contexts share no edges, so the merged
    levels are exact), then each context gets its own sequential CPD
    scan.  Returns ``None`` when the floorplan does not bind every op of
    some graph (the caller falls back to the scalar path for its error).
    """
    if not graphs:
        return []
    lowering = lower_design(graphs)
    with kernel_timer("sta"):
        geometry = _pe_geometry(lowering.ops, floorplan)
        if geometry is None:
            return None
        rows, cols = geometry
        wire = _wire(
            rows,
            cols,
            lowering.fwd_src,
            lowering.fwd_dst,
            floorplan.fabric.unit_wire_delay_ns,
        )
        arrival = _propagate(
            lowering.delay,
            lowering.fwd_src,
            lowering.fwd_dst,
            lowering.fwd_bounds,
            lowering.fwd_nodes,
            lowering.fwd_node_bounds,
            wire,
        )
        completions = arrival.tolist()
        results: list[tuple[dict[int, float], float, list[int]]] = []
        for index, per in enumerate(lowering.per_graph):
            a, b = lowering.node_bounds[index], lowering.node_bounds[index + 1]
            slice_completions = completions[a:b]
            cpd, critical = _cpd_scan(per.ops, slice_completions)
            results.append(
                (dict(zip(per.ops, slice_completions)), cpd, critical)
            )
        return results


def continuations(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> dict[int, float] | None:
    """Vectorized longest-continuation DP (see ``timing.kpaths``).

    ``cont[op]`` = best additional delay downstream of ``op``; exact
    ``max`` reductions over ``(wire + delay) + cont`` terms with the
    scalar association order.  ``None`` when an op is unbound.
    """
    lowering = lower_graph(graph)
    with kernel_timer("kpaths"):
        geometry = _pe_geometry(lowering.ops, floorplan)
        if geometry is None:
            return None
        rows, cols = geometry
        wire = _wire(
            rows,
            cols,
            lowering.rev_src,
            lowering.rev_dst,
            floorplan.fabric.unit_wire_delay_ns,
        )
        cont = np.zeros(len(lowering.ops), dtype=float)
        step_base = wire + lowering.delay[lowering.rev_dst]
        for lvl in range(len(lowering.rev_bounds) - 1):
            a, b = lowering.rev_bounds[lvl], lowering.rev_bounds[lvl + 1]
            cand = step_base[a:b] + cont[lowering.rev_dst[a:b]]
            np.maximum.at(cont, lowering.rev_src[a:b], cand)
        return dict(zip(lowering.ops, cont.tolist()))


def edge_wire_ns(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> dict[tuple[int, int], float] | None:
    """``{(src, dst): wire delay}`` for every intra edge, vectorized.

    Memoizes the per-edge wire delays the path-enumeration DFS would
    otherwise recompute on every expansion.  Values are bit-identical to
    per-edge ``_wire_ns`` calls.  ``None`` when an op is unbound.
    """
    lowering = lower_graph(graph)
    geometry = _pe_geometry(lowering.ops, floorplan)
    if geometry is None:
        return None
    rows, cols = geometry
    wire = _wire(
        rows,
        cols,
        lowering.esrc,
        lowering.edst,
        floorplan.fabric.unit_wire_delay_ns,
    )
    return dict(zip(graph.intra_edges, wire.tolist()))
