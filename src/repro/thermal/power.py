"""Per-PE power models feeding the thermal solver.

Power of a PE in a given context is a leakage floor plus a dynamic term
proportional to its duty cycle in that context (the fraction of the clock
period its functional unit is switching — identical to the stress rate of
Section III).  Constants are calibrated so a fully-packed corner of active
PEs develops a hotspot a few kelvin above the fabric average, matching the
magnitude of thermal relief the paper attributes to spreading PE usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.fabric import Fabric
from repro.errors import ThermalError


@dataclass(frozen=True)
class PowerModel:
    """Linear duty-to-power map: ``P = leakage + active * duty``.

    Attributes
    ----------
    active_w:
        Dynamic power of a PE at 100% duty, in watts.
    leakage_w:
        Static power of every PE, in watts.
    """

    active_w: float = 0.080
    leakage_w: float = 0.010

    def pe_power(self, duty: float) -> float:
        """Power of one PE at the given duty cycle, in watts."""
        if duty < -1e-9 or duty > 1.0 + 1e-9:
            raise ThermalError(f"duty cycle {duty} outside [0, 1]")
        return self.leakage_w + self.active_w * min(max(duty, 0.0), 1.0)

    def power_map(self, fabric: Fabric, duties: np.ndarray) -> np.ndarray:
        """Vector of per-PE power (W) from a vector of duty cycles."""
        duties = np.asarray(duties, dtype=float)
        if duties.shape != (fabric.num_pes,):
            raise ThermalError(
                f"duty vector shape {duties.shape} != ({fabric.num_pes},)"
            )
        if np.any(duties < -1e-9) or np.any(duties > 1.0 + 1e-9):
            raise ThermalError("duty cycles must lie in [0, 1]")
        return self.leakage_w + self.active_w * np.clip(duties, 0.0, 1.0)

    def power_map_many(self, fabric: Fabric, duties: np.ndarray) -> np.ndarray:
        """Per-PE power for every context at once (rows = contexts).

        Row ``c`` is bit-identical to ``power_map(fabric, duties[c])``
        (the formula is elementwise).
        """
        from repro.kernels.thermal import power_map_many

        return power_map_many(self, fabric, duties)
