"""Benchmark synthesis: the Table I suite and mini-C example kernels."""

from repro.benchgen.sources import KERNELS, kernel_source
from repro.benchgen.suite import (
    PAPER_HEADLINE_INCREASE,
    TABLE1,
    TABLE1_AVERAGES,
    USAGE_CLASSES,
    Table1Entry,
    entries,
    entry,
    load_benchmark,
)
from repro.benchgen.synth import SyntheticSpec, build_benchmark, generate_design

__all__ = [
    "KERNELS",
    "PAPER_HEADLINE_INCREASE",
    "TABLE1",
    "TABLE1_AVERAGES",
    "USAGE_CLASSES",
    "SyntheticSpec",
    "Table1Entry",
    "build_benchmark",
    "entries",
    "entry",
    "generate_design",
    "kernel_source",
    "load_benchmark",
]
