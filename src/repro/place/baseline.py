"""Aging-unaware baseline placement flow (Musketeer substitute, back half).

Combines the constructive corner-packing placer with an optional
simulated-annealing refinement — the full equivalent of the commercial
flow's Phase-1 output: a timing-driven, bounding-box-minimising,
reliability-oblivious floorplan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.hls.allocate import MappedDesign
from repro.obs import get_logger, span
from repro.place.annealing import AnnealingConfig, anneal_placement
from repro.place.greedy import greedy_place

_log = get_logger("place.baseline")


@dataclass
class BaselinePlacerConfig:
    """Configuration of the aging-unaware baseline flow."""

    corner_bias: float = 0.35
    #: Run the SA refinement after construction.  The constructive result is
    #: already representative; SA tightens wirelength on small fabrics.
    anneal: bool = True
    annealing: AnnealingConfig = field(default_factory=AnnealingConfig)


class BaselinePlacer:
    """Produces the paper's 'original aging-unaware floorplan'."""

    def __init__(self, config: BaselinePlacerConfig | None = None) -> None:
        self.config = config or BaselinePlacerConfig()

    def place(self, design: MappedDesign, fabric: Fabric) -> Floorplan:
        """Place ``design`` on ``fabric`` and return the floorplan."""
        with span("place_baseline", anneal=self.config.anneal) as place_span:
            with span("greedy_place"):
                floorplan = greedy_place(
                    design, fabric, corner_bias=self.config.corner_bias
                )
            if self.config.anneal:
                anneal_placement(design, floorplan, self.config.annealing)
            place_span.set(utilization=floorplan.utilization())
        _log.debug(
            "placed %s on %dx%d (utilization %.0f%%)",
            design.name, fabric.rows, fabric.cols,
            100.0 * floorplan.utilization(),
        )
        return floorplan


def place_baseline(
    design: MappedDesign,
    fabric: Fabric,
    config: BaselinePlacerConfig | None = None,
) -> Floorplan:
    """Convenience wrapper around :class:`BaselinePlacer`."""
    return BaselinePlacer(config).place(design, fabric)
