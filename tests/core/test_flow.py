"""End-to-end flow tests (Phase 1 + Phase 2)."""

from __future__ import annotations

import pytest

from repro.core import AgingAwareFlow, Algorithm1Config, FlowConfig, RemapConfig


@pytest.fixture(scope="module")
def flow():
    return AgingAwareFlow(
        FlowConfig(
            algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=30))
        )
    )


@pytest.fixture(scope="module")
def result(flow, synth_design, fabric4):
    return flow.run(synth_design, fabric4)


class TestFlowResult:
    def test_mttf_increases(self, result):
        assert result.mttf_increase > 1.0

    def test_cpd_preserved(self, result):
        assert result.cpd_preserved

    def test_stress_levelled(self, result):
        assert (
            result.remapped.stress.max_accumulated_ns
            < result.original.stress.max_accumulated_ns
        )

    def test_temperature_not_worse(self, result):
        assert result.remapped.thermal.peak_k <= result.original.thermal.peak_k + 0.5

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in (
            "benchmark", "contexts", "fabric", "pe_count", "utilization",
            "mttf_increase", "original_cpd_ns", "final_cpd_ns", "fell_back",
        ):
            assert key in summary
        assert summary["fabric"] == "4x4"
        assert summary["fell_back"] is False

    def test_mttf_consistent_with_reports(self, result):
        expected = result.remapped.mttf.mttf_s / result.original.mttf.mttf_s
        assert result.mttf_increase == pytest.approx(expected)


class TestPhases:
    def test_phase1_is_deterministic(self, flow, synth_design, fabric4):
        a = flow.phase1(synth_design, fabric4)
        b = flow.phase1(synth_design, fabric4)
        assert a.floorplan == b.floorplan
        assert a.mttf.mttf_s == pytest.approx(b.mttf.mttf_s)

    def test_evaluate_any_floorplan(self, flow, synth_design, fabric4):
        from repro.place import greedy_place

        floorplan = greedy_place(synth_design, fabric4)
        evaluation = flow.evaluate(synth_design, fabric4, floorplan)
        assert evaluation.stress.num_pes == 16
        assert evaluation.mttf.mttf_s > 0
        assert evaluation.thermal.accumulated_k.shape == (16,)

    def test_run_flow_wrapper(self, synth_design, fabric4):
        from repro.core import run_flow

        result = run_flow(
            synth_design,
            fabric4,
            FlowConfig(
                algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=30))
            ),
        )
        assert result.mttf_increase >= 1.0


class TestMiniCKernelThroughFlow:
    def test_small_kernel(self, flow, small_design, fabric4):
        result = flow.run(small_design, fabric4)
        assert result.cpd_preserved
        assert result.mttf_increase >= 1.0
        # The re-mapped floorplan still computes the same design: same ops,
        # same contexts.
        assert set(result.remapped.floorplan.ops) == set(small_design.ops)
