"""Metric accumulation and registry behaviour."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import registry as default_registry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_accumulates(self, reg):
        c = reg.counter("milp.bb.nodes_explored")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_same_name_same_instrument(self, reg):
        assert reg.counter("a") is reg.counter("a")

    def test_cannot_decrease(self, reg):
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_snapshot(self, reg):
        reg.counter("a").inc(3)
        assert reg.snapshot()["a"] == {"kind": "counter", "value": 3}


class TestGauge:
    def test_last_write_wins(self, reg):
        g = reg.gauge("milp.model.binaries")
        g.set(100)
        g.set(60)
        assert g.value == 60.0


class TestHistogram:
    def test_summary_statistics(self, reg):
        h = reg.histogram("milp.highs.solve_seconds")
        for v in (0.5, 1.5, 1.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.0)
        assert snap["min"] == 0.5
        assert snap["max"] == 1.5
        assert snap["mean"] == pytest.approx(1.0)

    def test_empty_histogram_snapshot_is_finite(self, reg):
        snap = reg.histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["mean"] == 0.0


class TestRegistry:
    def test_kind_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_sorted_by_name(self, reg):
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == ["a", "b"]

    def test_reset(self, reg):
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_helpers(self):
        from repro.obs import counter

        name = "test.obs.default_registry_probe"
        counter(name).inc(5)
        try:
            assert default_registry().snapshot()[name]["value"] == 5
        finally:
            # Leave no probe metric behind for other tests' snapshots.
            default_registry()._instruments.pop(name, None)
