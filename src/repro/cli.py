"""Command-line interface for the aging-aware CAD flow.

Subcommands mirror the flow's stages so artefacts can be produced,
inspected and re-analysed from the shell::

    python -m repro.cli compile  kernel.c -o design.json [--capacity 16]
    python -m repro.cli place    design.json --fabric 4x4 -o floorplan.json
    python -m repro.cli remap    design.json floorplan.json -o remapped.json \
                                 [--mode rotate] [--time-limit 30]
    python -m repro.cli analyze  design.json floorplan.json
    python -m repro.cli flow     kernel.c --fabric 4x4 [-o result.json]
    python -m repro.cli bench    B13 [--scaled 8] [--mode rotate]
    python -m repro.cli trace    summarize trace.jsonl

``compile`` accepts a mini-C file or a named library kernel (fir8,
matvec4, checksum, sobel3).  ``analyze`` prints CPD, stress and MTTF for
any (design, floorplan) pair — so saved artefacts from different runs can
be compared without re-solving anything.

Observability (``flow``, ``remap`` and ``bench``; docs/observability.md):

``--trace FILE.jsonl``
    Record the run's span tree, events and final metrics as JSONL;
    inspect offline with ``repro trace summarize FILE.jsonl``.
``--metrics``
    Print the metrics-registry snapshot (counters/gauges/histograms)
    after the command finishes.
``--log-level LEVEL``
    Level of the ``repro.*`` stderr logger (default ``warning``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.arch.fabric import Fabric
from repro.benchgen.sources import KERNELS, kernel_source
from repro.benchgen.suite import entry as suite_entry
from repro.benchgen.synth import build_benchmark
from repro.core.algorithm1 import Algorithm1Config, run_algorithm1
from repro.core.flow import AgingAwareFlow, FlowConfig
from repro.core.remap import RemapConfig
from repro.errors import ReproError
from repro.hls.lower import compile_source
from repro.hls.schedule import schedule_dfg
from repro.hls.allocate import tech_map
from repro.io.serialize import (
    flow_summary_to_dict,
    load_design,
    load_floorplan,
    save_design,
    save_floorplan,
    save_json,
)
from repro.obs import (
    JsonlSink,
    add_sink,
    configure_logging,
    registry,
    remove_sink,
    span,
    summarize_trace,
)
from repro.place.baseline import place_baseline
from repro.report.tables import format_mapping, format_table
from repro.resilience.deadline import Deadline


def _deadline_of(args) -> Deadline | None:
    seconds = getattr(args, "deadline", None)
    return Deadline.after(seconds) if seconds is not None else None


def _parse_fabric(text: str) -> Fabric:
    try:
        rows, cols = (int(part) for part in text.lower().split("x"))
    except ValueError as exc:
        raise SystemExit(f"invalid fabric {text!r}; expected e.g. 4x4") from exc
    return Fabric(rows, cols)


def _load_kernel(argument: str) -> tuple[str, str]:
    path = pathlib.Path(argument)
    if path.exists():
        return path.stem, path.read_text()
    if argument in KERNELS:
        return argument, kernel_source(argument)
    raise SystemExit(
        f"{argument!r} is neither a file nor a library kernel "
        f"({sorted(KERNELS)})"
    )


def _metrics_rows() -> list[list[object]]:
    """Registry snapshot as (metric, kind, value) table rows."""
    rows: list[list[object]] = []
    for name, data in registry().snapshot().items():
        kind = data["kind"]
        if kind == "histogram":
            value = (
                f"count={data['count']} mean={data['mean']:.4f} "
                f"min={data['min']:.4f} max={data['max']:.4f}"
            )
        else:
            value = data["value"]
        rows.append([name, kind, value])
    return rows


def _flow_config(args) -> FlowConfig:
    return FlowConfig(
        algorithm1=Algorithm1Config(
            mode=args.mode,
            remap=RemapConfig(time_limit_s=args.time_limit),
        )
    )


# -- subcommands ---------------------------------------------------------------


def cmd_compile(args) -> int:
    name, source = _load_kernel(args.source)
    dfg = compile_source(source, name)
    schedule = schedule_dfg(dfg, capacity=args.capacity)
    design = tech_map(schedule)
    save_design(design, args.output)
    print(
        f"{name}: {design.num_ops} ops in {design.num_contexts} contexts "
        f"-> {args.output}"
    )
    return 0


def cmd_place(args) -> int:
    design = load_design(args.design)
    fabric = _parse_fabric(args.fabric)
    floorplan = place_baseline(design, fabric)
    save_floorplan(floorplan, args.output)
    print(
        f"placed {design.name} on {fabric.rows}x{fabric.cols} "
        f"(utilization {floorplan.utilization():.0%}) -> {args.output}"
    )
    return 0


def cmd_remap(args) -> int:
    design = load_design(args.design)
    original = load_floorplan(args.floorplan)
    config = Algorithm1Config(
        mode=args.mode, remap=RemapConfig(time_limit_s=args.time_limit)
    )
    result = run_algorithm1(
        design, original.fabric, original, config, deadline=_deadline_of(args)
    )
    save_floorplan(result.floorplan, args.output)
    print(format_mapping("Re-mapping", {
        "fell back": result.fell_back,
        "degradation": result.degradation,
        "iterations": result.iterations,
        "original CPD (ns)": result.original_cpd_ns,
        "final CPD (ns)": result.final_cpd_ns,
        "ST_target (ns)": result.st_target_ns,
        "output": str(args.output),
    }))
    return 0 if not result.fell_back else 2


def cmd_analyze(args) -> int:
    from repro.aging.mttf import compute_mttf
    from repro.aging.stress import compute_stress_map
    from repro.thermal.hotspot import ThermalSimulator
    from repro.timing.sta import analyze

    design = load_design(args.design)
    floorplan = load_floorplan(args.floorplan)
    report = analyze(design, floorplan)
    stress = compute_stress_map(design, floorplan)
    thermal = ThermalSimulator(floorplan.fabric).simulate(
        stress.duty_per_context()
    )
    mttf = compute_mttf(stress, thermal.accumulated_k)
    print(format_mapping(f"{design.name} on this floorplan", {
        "CPD (ns)": report.cpd_ns,
        "max accumulated stress (ns)": stress.max_accumulated_ns,
        "mean accumulated stress (ns)": stress.mean_accumulated_ns,
        "peak temperature (K)": thermal.peak_k,
        "MTTF (years)": mttf.mttf_years,
        "limiting PE": mttf.limiting_pe,
    }))
    return 0


def cmd_flow(args) -> int:
    name, source = _load_kernel(args.source)
    fabric = _parse_fabric(args.fabric)
    with span("hls_compile", kernel=name):
        dfg = compile_source(source, name)
        design = tech_map(schedule_dfg(dfg, capacity=fabric.num_pes))
    result = AgingAwareFlow(_flow_config(args)).run(
        design, fabric, deadline=_deadline_of(args)
    )
    print(format_mapping(f"flow: {name}", {
        "MTTF increase": f"{result.mttf_increase:.2f}x",
        "CPD preserved": result.cpd_preserved,
        "degradation": result.remap.degradation,
        "contexts": design.num_contexts,
        "utilization": f"{result.original.floorplan.utilization():.0%}",
    }))
    if args.output:
        save_json(flow_summary_to_dict(result), args.output)
        print(f"full record -> {args.output}")
    return 0


def cmd_bench(args) -> int:
    bench = suite_entry(args.name)
    if args.scaled:
        bench = bench.scaled(args.scaled)
    design, fabric = build_benchmark(bench.spec())
    result = AgingAwareFlow(_flow_config(args)).run(
        design, fabric, deadline=_deadline_of(args)
    )
    reference = bench.freeze_ref if args.mode == "freeze" else bench.rotate_ref
    print(format_mapping(f"benchmark {bench.name} ({args.mode})", {
        "MTTF increase": f"{result.mttf_increase:.2f}x",
        "paper reference": f"{reference:.2f}x",
        "CPD preserved": result.cpd_preserved,
        "fell back": result.remap.fell_back,
        "degradation": result.remap.degradation,
    }))
    return 0


def cmd_trace_summarize(args) -> int:
    summary = summarize_trace(args.file)
    print(format_table(
        ["stage", "count", "wall_s", "share_%"], summary.stage_table()
    ))
    print(
        f"\ntotal wall time {summary.total_s:.3f}s "
        f"({summary.records} records, {len(summary.events)} events, "
        f"{len(summary.degradations)} degradation event(s))"
    )
    if summary.degradations:
        rows = []
        for record in summary.degradations:
            attrs = record.get("attrs") or {}
            rows.append([
                record["name"],
                " ".join(f"{k}={v}" for k, v in attrs.items()),
            ])
        print("\ndegradations")
        print("------------")
        print(format_table(["event", "detail"], rows))
    if summary.events:
        print("\nevents")
        print("------")
        for record in summary.events:
            attrs = record.get("attrs") or {}
            rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
            print(f"{record['name']}  parent={record['parent']}  {rendered}")
    if summary.metrics:
        rows = []
        for name, data in summary.metrics.items():
            kind = data.get("kind", "?")
            if kind == "histogram":
                value = (
                    f"count={data.get('count')} mean={data.get('mean', 0.0):.4f} "
                    f"max={data.get('max', 0.0):.4f}"
                )
            else:
                value = data.get("value")
            rows.append([name, kind, value])
        print()
        print(format_table(["metric", "kind", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Aging-aware CGRRA floorplanning flow."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by the solver-running subcommands.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="record spans/events/metrics as JSONL to this file",
    )
    obs_flags.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry snapshot after the run",
    )
    obs_flags.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
        help="repro.* stderr logger level (default: warning)",
    )
    obs_flags.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole command; on expiry the flow "
        "degrades gracefully instead of running on (default: unlimited)",
    )

    p = sub.add_parser("compile", help="mini-C -> mapped design JSON")
    p.add_argument("source")
    p.add_argument("-o", "--output", default="design.json")
    p.add_argument("--capacity", type=int, default=16)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("place", help="aging-unaware baseline placement")
    p.add_argument("design")
    p.add_argument("--fabric", default="4x4")
    p.add_argument("-o", "--output", default="floorplan.json")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser(
        "remap", help="aging-aware re-mapping (Algorithm 1)",
        parents=[obs_flags],
    )
    p.add_argument("design")
    p.add_argument("floorplan")
    p.add_argument("-o", "--output", default="remapped.json")
    p.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.set_defaults(func=cmd_remap)

    p = sub.add_parser("analyze", help="CPD/stress/MTTF of a floorplan")
    p.add_argument("design")
    p.add_argument("floorplan")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "flow", help="full Phase 1 + Phase 2 on a kernel", parents=[obs_flags]
    )
    p.add_argument("source")
    p.add_argument("--fabric", default="4x4")
    p.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser(
        "bench", help="run one Table I benchmark", parents=[obs_flags]
    )
    p.add_argument("name")
    p.add_argument("--scaled", type=int, default=None)
    p.add_argument("--mode", choices=["freeze", "rotate"], default="rotate")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("trace", help="inspect JSONL observability traces")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser(
        "summarize", help="aggregate a trace into a per-stage table"
    )
    ts.add_argument("file")
    ts.set_defaults(func=cmd_trace_summarize)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    sink = None
    trace_path = getattr(args, "trace", None)
    if trace_path:
        try:
            sink = JsonlSink(trace_path)
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 1
        add_sink(sink)
    try:
        code = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    except BrokenPipeError:
        # Downstream pager/head closed stdout; exit quietly like cat does.
        # Point stdout at devnull so the interpreter's final flush is silent.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    finally:
        if sink is not None:
            remove_sink(sink)
            sink.write_metrics(registry().snapshot())
            sink.close()
            print(f"trace -> {trace_path}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print()
        print(format_table(["metric", "kind", "value"], _metrics_rows()))
    return code


if __name__ == "__main__":
    sys.exit(main())
