"""Semantic-analysis tests."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError
from repro.hls import check_program, parse_source


def check(source):
    return check_program(parse_source(source))


class TestDeclarations:
    def test_valid_program(self):
        table = check("in int a; out int y = a + 1;")
        assert {s.name for s in table.symbols()} == {"a", "y"}

    def test_redeclaration_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int x; int x; out int y = 1;")

    def test_undeclared_use_rejected(self):
        with pytest.raises(TypeCheckError):
            check("out int y = q;")

    def test_input_with_initializer_rejected(self):
        with pytest.raises(TypeCheckError):
            check("in int a = 3; out int y = a;")

    def test_nonpositive_array_size_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int a[0]; out int y = 1;")

    def test_widths(self):
        table = check("in char a; in short b; out int y = a + b;")
        widths = {s.name: s.width for s in table.symbols()}
        assert widths == {"a": 8, "b": 16, "y": 32}


class TestOutputs:
    def test_program_without_outputs_rejected(self):
        with pytest.raises(TypeCheckError):
            check("in int a; int x = a;")

    def test_unassigned_output_rejected(self):
        with pytest.raises(TypeCheckError):
            check("in int a; out int y;")

    def test_output_assigned_later_ok(self):
        check("in int a; out int y; y = a * 2;")


class TestAssignments:
    def test_assign_to_input_rejected(self):
        with pytest.raises(TypeCheckError):
            check("in int a; a = 3; out int y = a;")

    def test_compound_assign_before_init_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int x; x += 1; out int y = x;")

    def test_scalar_used_as_array_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int x = 1; x[0] = 2; out int y = x;")

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int a[4]; a = 2; out int y = 1;")

    def test_array_read_without_index_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int a[4]; a[0] = 1; out int y = a;")

    def test_constant_index_bounds(self):
        with pytest.raises(TypeCheckError):
            check("int a[4]; a[4] = 1; out int y = a[0];")
        with pytest.raises(TypeCheckError):
            check("int a[4]; a[0] = 1; out int y = a[7];")


class TestControlFlow:
    def test_loop_variable_must_be_declared(self):
        with pytest.raises(TypeCheckError):
            check("int s = 0; for (i = 0; i < 4; i++) s += 1; out int y = s;")

    def test_loop_variable_must_be_scalar(self):
        with pytest.raises(TypeCheckError):
            check(
                "int i[2]; int s = 0;"
                "for (i = 0; i < 4; i++) s += 1; out int y = s;"
            )

    def test_branch_checks_recurse(self):
        with pytest.raises(TypeCheckError):
            check("in int a; out int y; if (a) y = missing; else y = 1;")

    def test_valid_loop(self):
        check("int i; int s = 0; for (i = 0; i < 3; i++) s += i; out int y = s;")
