"""Independent certifier: row-level and domain-level rejection classes."""

from __future__ import annotations

import pytest

from repro.errors import CertificationError
from repro.milp.model import Model
from repro.milp.status import Solution, SolveStatus
from repro.verify import (
    KIND_BOUNDS,
    KIND_INTEGRALITY,
    KIND_MISSING_VALUE,
    KIND_ROW,
    certify_solution,
)


def _toy_model():
    """x + y <= 1 over binaries, named row, maximize x + y."""
    model = Model("toy")
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constraint(x + y <= 1, name="pick_one")
    model.set_objective(x + y, minimize=False)
    return model, x, y


def _solution(values):
    return Solution(
        status=SolveStatus.OPTIMAL, objective=sum(values.values()),
        values=values,
    )


class TestRowCertification:
    def test_feasible_point_certifies(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 1.0, y: 0.0}))
        assert cert.ok
        assert cert.checks

    def test_row_violation_named(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 1.0, y: 1.0}))
        assert not cert.ok
        assert KIND_ROW in cert.kinds()
        assert any(
            v.kind == KIND_ROW and "pick_one" in v.subject
            for v in cert.violations
        )

    def test_bounds_violation(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 2.0, y: 0.0}))
        assert KIND_BOUNDS in cert.kinds()

    def test_integrality_violation(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 0.5, y: 0.5}))
        assert KIND_INTEGRALITY in cert.kinds()

    def test_missing_value(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 1.0}))
        assert KIND_MISSING_VALUE in cert.kinds()

    def test_raise_if_failed_carries_violations(self):
        model, x, y = _toy_model()
        cert = certify_solution(model, _solution({x: 1.0, y: 1.0}))
        with pytest.raises(CertificationError) as excinfo:
            cert.raise_if_failed("toy acceptance")
        assert excinfo.value.violations
        assert "toy acceptance" in str(excinfo.value)

    def test_row_metadata_matches_constraints(self):
        model, _x, _y = _toy_model()
        (meta,) = model.row_metadata()
        assert meta.name == "pick_one"
        assert meta.sense == "<="


class TestSolverOutputCertifies:
    def test_both_backends_certify_on_toy_model(self):
        from repro.verify import differential_solve, make_backend

        pytest.importorskip("scipy")
        model, _x, _y = _toy_model()
        result = differential_solve(
            model,
            {
                "highs": make_backend("highs", 10.0),
                "branch-bound": make_backend("branch-bound", 10.0),
            },
        )
        assert result["ok"]
        assert result["agree"]
        assert all(c["ok"] for c in result["certificates"].values())

    def test_unknown_backend_rejected(self):
        from repro.verify import make_backend

        with pytest.raises(CertificationError):
            make_backend("gurobi")
