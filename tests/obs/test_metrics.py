"""Metric accumulation and registry behaviour."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import RESERVOIR_SIZE, registry as default_registry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_accumulates(self, reg):
        c = reg.counter("milp.bb.nodes_explored")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_same_name_same_instrument(self, reg):
        assert reg.counter("a") is reg.counter("a")

    def test_cannot_decrease(self, reg):
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_snapshot(self, reg):
        reg.counter("a").inc(3)
        assert reg.snapshot()["a"] == {"kind": "counter", "value": 3}


class TestGauge:
    def test_last_write_wins(self, reg):
        g = reg.gauge("milp.model.binaries")
        g.set(100)
        g.set(60)
        assert g.value == 60.0


class TestHistogram:
    def test_summary_statistics(self, reg):
        h = reg.histogram("milp.highs.solve_seconds")
        for v in (0.5, 1.5, 1.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.0)
        assert snap["min"] == 0.5
        assert snap["max"] == 1.5
        assert snap["mean"] == pytest.approx(1.0)

    def test_empty_histogram_snapshot_is_finite(self, reg):
        snap = reg.histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["mean"] == 0.0
        assert snap["p50"] == 0.0

    def test_quantiles_exact_within_reservoir(self, reg):
        h = reg.histogram("milp.highs.solve_seconds")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p95"] == pytest.approx(95.05)
        assert snap["p99"] == pytest.approx(99.01)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantiles_sampled_beyond_reservoir(self, reg):
        h = reg.histogram("big")
        for v in range(4 * RESERVOIR_SIZE):
            h.observe(float(v))
        snap = h.snapshot()
        # Uniform input: the sampled median lands near the true median.
        true_median = (4 * RESERVOIR_SIZE - 1) / 2.0
        assert abs(snap["p50"] - true_median) < 0.15 * 4 * RESERVOIR_SIZE
        assert snap["count"] == 4 * RESERVOIR_SIZE  # aggregates stay exact
        assert snap["max"] == 4.0 * RESERVOIR_SIZE - 1

    def test_quantiles_deterministic_across_instances(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg_ in (a, b):
            h = reg_.histogram("same.name")
            for v in range(3 * RESERVOIR_SIZE):
                h.observe(float(v % 777))
        assert a.snapshot()["same.name"] == b.snapshot()["same.name"]


class TestThreadSafety:
    def test_concurrent_counter_increments_do_not_drop(self, reg):
        c = reg.counter("sweep.entries")
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000

    def test_concurrent_histogram_observations_do_not_drop(self, reg):
        h = reg.histogram("milp.solve_seconds")
        threads = [
            threading.Thread(
                target=lambda: [h.observe(1.0) for _ in range(5_000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap["count"] == 40_000
        assert snap["sum"] == pytest.approx(40_000.0)
        assert snap["p50"] == 1.0


class TestRegistry:
    def test_kind_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_sorted_by_name(self, reg):
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == ["a", "b"]

    def test_reset(self, reg):
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_helpers(self):
        from repro.obs import counter

        name = "test.obs.default_registry_probe"
        counter(name).inc(5)
        try:
            assert default_registry().snapshot()[name]["value"] == 5
        finally:
            # Leave no probe metric behind for other tests' snapshots.
            default_registry()._instruments.pop(name, None)
