"""Circuit-breaker state machine: deterministic, count-based."""

from __future__ import annotations

from repro.portfolio import (
    ADMIT_HEDGED,
    ADMIT_RUN,
    ADMIT_SKIP,
    HEDGE_AFTER,
    MAX_PROBE_SKIP,
    OPEN_AFTER,
    BreakerBoard,
    CircuitBreaker,
)


def failed(breaker: CircuitBreaker, times: int, kind: str = "crash") -> None:
    for _ in range(times):
        breaker.admit()
        breaker.record_failure(kind)


class TestTransitions:
    def test_healthy_lane_runs(self):
        breaker = CircuitBreaker("highs")
        assert breaker.admit() == ADMIT_RUN
        assert breaker.state == "closed"

    def test_hedged_after_consecutive_failures(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, HEDGE_AFTER)
        assert breaker.state == "hedged"
        assert breaker.admit() == ADMIT_HEDGED

    def test_open_after_more_failures(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER)
        assert breaker.state == "open"

    def test_success_closes_from_hedged(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, HEDGE_AFTER)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.admit() == ADMIT_RUN

    def test_one_failure_is_weather_not_demotion(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, 1)
        assert breaker.state == "closed"
        breaker.admit()
        breaker.record_success()
        failed(breaker, 1)
        # Non-consecutive failures never accumulate into a demotion.
        assert breaker.state == "closed"

    def test_transition_log(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER, kind="hang")
        states = [(src, dst) for _, src, dst, _ in breaker.transitions]
        assert ("closed", "hedged") in states
        assert ("hedged", "open") in states
        why = [w for _, _, dst, w in breaker.transitions if dst == "open"]
        assert why == ["hang"]


class TestProbeBackoff:
    def test_open_skips_then_probes(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER)
        # First back-off is one skipped solve, then a hedged probe.
        assert breaker.admit() == ADMIT_SKIP
        assert breaker.admit() == ADMIT_HEDGED
        assert breaker.probes == 1

    def test_probe_failure_doubles_backoff(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER)
        skips = []
        for _ in range(3):  # three failed probe cycles: skip 1, 2, 4
            count = 0
            while breaker.admit() == ADMIT_SKIP:
                count += 1
            skips.append(count)
            breaker.record_failure("crash")
        assert skips == [1, 2, 4]

    def test_backoff_is_capped(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER)
        for _ in range(10):
            while breaker.admit() == ADMIT_SKIP:
                pass
            breaker.record_failure("crash")
        assert breaker.next_probe_skip == MAX_PROBE_SKIP

    def test_probe_success_closes_and_resets(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER)
        while breaker.admit() == ADMIT_SKIP:
            pass
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.next_probe_skip == 1
        assert breaker.admit() == ADMIT_RUN


class TestBookkeeping:
    def test_failure_kinds_tallied(self):
        breaker = CircuitBreaker("highs")
        failed(breaker, 1, "crash")
        failed(breaker, 2, "rejected")
        assert breaker.failure_kinds == {"crash": 1, "rejected": 2}
        assert breaker.failures == 3

    def test_to_dict_is_json_safe(self):
        import json

        breaker = CircuitBreaker("highs")
        failed(breaker, OPEN_AFTER, "timeout")
        data = breaker.to_dict()
        json.dumps(data)
        assert data["state"] == "open"
        assert data["failure_kinds"]["timeout"] == OPEN_AFTER
        assert data["transitions"][0]["from"] == "closed"

    def test_board_snapshot_covers_all_lanes(self):
        board = BreakerBoard(("highs", "branch-bound"))
        board["highs"].record_failure("crash")
        snapshot = board.snapshot()
        assert set(snapshot) == {"highs", "branch-bound"}
        assert snapshot["highs"]["failures"] == 1
