"""Physical-constant and unit-helper tests."""

from __future__ import annotations

import pytest

from repro import units


class TestPaperConstants:
    def test_characterised_delays(self):
        """Section III: ALU 0.87 ns, DMU 3.14 ns, 200 MHz clock."""
        assert units.ALU_DELAY_NS == 0.87
        assert units.DMU_DELAY_NS == 3.14
        assert units.TARGET_CLOCK_HZ == 200e6
        assert units.CLOCK_PERIOD_NS == pytest.approx(5.0)

    def test_stress_rates_follow_from_delays(self):
        assert units.ALU_DELAY_NS / units.CLOCK_PERIOD_NS == pytest.approx(0.174)
        assert units.DMU_DELAY_NS / units.CLOCK_PERIOD_NS == pytest.approx(0.628)

    def test_nbti_constants_physical(self):
        assert 0 < units.NBTI_TIME_EXPONENT < 1
        assert 0.3 < units.NBTI_ACTIVATION_ENERGY_EV < 1.0
        assert units.VTH_FAILURE_FRACTION == pytest.approx(0.10)  # paper [3]
        assert units.BOLTZMANN_EV_PER_K == pytest.approx(8.617e-5, rel=1e-3)

    def test_wire_delay_subordinate_to_pe_delay(self):
        """One grid step of wire must cost less than an ALU op, keeping
        wire delay a first-order but not dominant term (Fig. 4's ratios)."""
        assert 0 < units.UNIT_WIRE_DELAY_NS < units.ALU_DELAY_NS


class TestConversions:
    def test_celsius_round_trip(self):
        assert units.celsius_to_kelvin(25.0) == pytest.approx(298.15)
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(85.0)) == (
            pytest.approx(85.0)
        )

    def test_years_round_trip(self):
        assert units.seconds_to_years(units.years_to_seconds(3.5)) == (
            pytest.approx(3.5)
        )

    def test_year_definition(self):
        assert units.years_to_seconds(1.0) == pytest.approx(31557600.0)
