"""High-level-synthesis frontend: mini-C -> scheduled, technology-mapped design.

This package substitutes the frontend half of the paper's commercial
Musketeer flow: parsing a synthesizable C subset, lowering to a dataflow
graph (loop unrolling, if-conversion, array scalarisation), list-scheduling
into contexts, and technology-mapping onto PE operations.
"""

from repro.hls.allocate import MappedDesign, OpInfo, tech_map
from repro.hls.ast_nodes import Program
from repro.hls.dfg import DataflowGraph, DfgNode
from repro.hls.lexer import Token, TokenKind, tokenize
from repro.hls.lower import compile_source, lower_program
from repro.hls.parser import parse_source
from repro.hls.schedule import Schedule, asap_cycles, alap_cycles, schedule_dfg
from repro.hls.typecheck import check_program

__all__ = [
    "DataflowGraph",
    "DfgNode",
    "MappedDesign",
    "OpInfo",
    "Program",
    "Schedule",
    "Token",
    "TokenKind",
    "alap_cycles",
    "asap_cycles",
    "check_program",
    "compile_source",
    "lower_program",
    "parse_source",
    "schedule_dfg",
    "tech_map",
    "tokenize",
]
