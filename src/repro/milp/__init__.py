"""A small PuLP-like MILP modelling layer with pluggable solver backends.

The paper drove CPLEX through PuLP; this package provides the same
capability on open components:

* :class:`~repro.milp.model.Model` — variables, constraints, objective;
* :class:`~repro.milp.scipy_backend.ScipyBackend` — HiGHS via scipy (default);
* :class:`~repro.milp.branch_bound.BranchBoundBackend` — a pure-Python
  reference solver used for cross-checking and ablations;
* :mod:`~repro.milp.rounding` — the LP-relaxation pre-mapping strategies of
  the paper's two-step method.
"""

from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import LinExpr, Variable, VarType, linear_sum
from repro.milp.model import CompiledModel, MatrixForm, Model, hint_vector
from repro.milp.rounding import (
    DEFAULT_FIX_THRESHOLD,
    RoundingReport,
    extract_assignment,
    randomized_round,
    threshold_fix,
)
from repro.milp.scipy_backend import ScipyBackend
from repro.milp.status import Solution, SolveStatus

__all__ = [
    "BranchBoundBackend",
    "CompiledModel",
    "Constraint",
    "DEFAULT_FIX_THRESHOLD",
    "LinExpr",
    "MatrixForm",
    "Model",
    "RoundingReport",
    "ScipyBackend",
    "Sense",
    "Solution",
    "SolveStatus",
    "VarType",
    "Variable",
    "extract_assignment",
    "hint_vector",
    "linear_sum",
    "randomized_round",
    "threshold_fix",
]
