"""Service soak: 50+ concurrent mixed-tenant requests under injected faults.

The PR's acceptance gate, in-process: a worker crash and a corrupted
cache write are both armed; the service must lose zero jobs, serve a
healthy share from cache, fail zero certifications, drain cleanly — and
every artifact must be bit-identical to the one-shot pipeline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import registry
from repro.resilience.faults import fault_scope
from repro.service import (
    AdmissionConfig,
    FloorplanRequest,
    FloorplanService,
    ServiceConfig,
    comparable_view,
)
from repro.service.worker import run_request

#: 4 unique workloads x duplicates x 3 tenants -> 52 requests.
UNIQUE = [
    {"kernel": "fir8", "fabric": "4x4", "mode": "rotate", "time_limit_s": 5.0},
    {"kernel": "fir8", "fabric": "4x4", "mode": "freeze", "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "mode": "rotate",
     "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "mode": "freeze",
     "time_limit_s": 5.0},
]
TENANTS = ("team-a", "team-b", "team-c")
REQUESTS = [
    dict(UNIQUE[i % len(UNIQUE)], tenant=TENANTS[i % len(TENANTS)])
    for i in range(52)
]


def metric(name: str) -> float:
    return registry().snapshot().get(name, {}).get("value", 0)


@pytest.mark.slow
def test_soak_under_faults(tmp_path):
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        concurrency=3,
        retries=2,
        retry_backoff_s=0.01,
        attempt_timeout_s=120.0,
        admission=AdmissionConfig(
            max_queue=len(REQUESTS) + 4,
            tenant_queue=len(REQUESTS),
            tenant_concurrency=2,
        ),
    )
    before = {
        name: metric(name)
        for name in (
            "service.cache_hits", "service.cache_certify_failures",
            "service.worker_crashes", "service.cache_corrupt",
            "service.shed",
        )
    }

    async def main():
        service = FloorplanService(config)
        await service.start()
        with fault_scope("service_worker_crash@1,service_cache_corrupt@1"):
            jobs = await asyncio.gather(*(
                service.run(request, timeout=300) for request in REQUESTS
            ))
        clean = await service.drain(grace_s=60.0)
        await service.close()
        return service, jobs, clean

    service, jobs, clean = asyncio.run(main())

    # Zero lost jobs: every request reached "done", none shed.
    assert [job.status for job in jobs] == ["done"] * len(REQUESTS)
    assert metric("service.shed") == before["service.shed"]

    # The armed faults actually fired and were absorbed.
    assert metric("service.worker_crashes") >= before["service.worker_crashes"] + 1
    assert metric("service.cache_corrupt") >= before["service.cache_corrupt"] + 1
    assert len(service.cache.quarantined()) >= 1

    # Healthy duplicate traffic: nonzero cache hits, zero cert failures.
    assert metric("service.cache_hits") > before["service.cache_hits"]
    assert metric("service.cache_certify_failures") == (
        before["service.cache_certify_failures"]
    )

    # Clean drain; journal agrees every job completed.
    assert clean
    statuses = service.store.statuses()
    assert all(
        statuses[job.job_id] == "ok" for job in jobs
    ), f"journal disagrees: {statuses}"

    # Every served artifact is bit-identical to the one-shot pipeline.
    oneshot = {}
    for request_dict in UNIQUE:
        request = FloorplanRequest.from_dict(request_dict)
        oneshot[request.cache_key()] = comparable_view(run_request(request))
    for job in jobs:
        key = job.request.cache_key()
        assert comparable_view(job.document) == oneshot[key], (
            f"served artifact for {job.request.kernel}/{job.request.mode} "
            "differs from the one-shot CLI pipeline"
        )
