"""Parser tests: grammar coverage and precedence."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.hls import parse_source
from repro.hls.ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Conditional,
    Decl,
    For,
    If,
    NumberLit,
    UnaryOp,
    VarRef,
)


class TestDeclarations:
    def test_scalar_decl_with_init(self):
        program = parse_source("int x = 3;")
        decl = program.statements[0]
        assert isinstance(decl, Decl)
        assert decl.name == "x"
        assert isinstance(decl.init, NumberLit)

    def test_qualifiers(self):
        program = parse_source("in int a; out short b = 1;")
        assert program.statements[0].qualifier == "in"
        assert program.statements[1].qualifier == "out"
        assert program.statements[1].ctype == "short"

    def test_array_decl(self):
        decl = parse_source("int a[8];").statements[0]
        assert decl.array_size == 8

    def test_multi_declarator_flattened(self):
        program = parse_source("int a = 1, b, c = 2;")
        names = [s.name for s in program.statements]
        assert names == ["a", "b", "c"]

    def test_array_size_must_be_constant(self):
        with pytest.raises(ParseError):
            parse_source("int a[n];")


class TestAssignments:
    def test_simple_and_compound(self):
        program = parse_source("int x = 0; x = 1; x += 2;")
        assert program.statements[1].op == "="
        assert program.statements[2].op == "+="

    def test_increment_sugar(self):
        stmt = parse_source("int i = 0; i++;").statements[1]
        assert isinstance(stmt, Assign)
        assert stmt.op == "+="
        assert stmt.value.value == 1

    def test_array_element_assignment(self):
        stmt = parse_source("int a[4]; a[2] = 5;").statements[1]
        assert isinstance(stmt.target, ArrayRef)
        assert stmt.target.index.value == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("int x = 1")


class TestControlFlow:
    def test_if_else_blocks(self):
        stmt = parse_source(
            "int x = 1; if (x > 0) { x = 2; x = 3; } else x = 4;"
        ).statements[1]
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 2
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = parse_source("int x = 1; if (x) x = 0;").statements[1]
        assert stmt.else_body == ()

    def test_for_loop_structure(self):
        stmt = parse_source(
            "int i; int s = 0; for (i = 0; i < 4; i++) s += i;"
        ).statements[2]
        assert isinstance(stmt, For)
        assert stmt.var == "i"
        assert isinstance(stmt.cond, BinaryOp)
        assert stmt.step.op == "+="

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_source("int x = 1; if (x) { x = 2;")


class TestExpressions:
    def expr_of(self, text):
        return parse_source(f"int q = {text};").statements[0].init

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = self.expr_of("8 - 4 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 2

    def test_parentheses_override(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_shift_vs_relational(self):
        expr = self.expr_of("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_bitwise_precedence_chain(self):
        expr = self.expr_of("1 | 2 ^ 3 & 4")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_unary_operators(self):
        expr = self.expr_of("-~!3")
        assert isinstance(expr, UnaryOp) and expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_unary_plus_elided(self):
        assert isinstance(self.expr_of("+5"), NumberLit)

    def test_ternary(self):
        expr = self.expr_of("1 ? 2 : 3 ? 4 : 5")
        assert isinstance(expr, Conditional)
        assert isinstance(expr.if_false, Conditional)  # right-assoc

    def test_array_reference_expression(self):
        program = parse_source("int a[4]; int q = a[1 + 2];")
        expr = program.statements[1].init
        assert isinstance(expr, ArrayRef)
        assert expr.index.op == "+"

    def test_logical_operators(self):
        expr = self.expr_of("1 && 2 || 3")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_garbage_expression(self):
        with pytest.raises(ParseError):
            parse_source("int q = * 2;")

    def test_error_positions(self):
        with pytest.raises(ParseError) as excinfo:
            parse_source("int x = 1;\n???")
        assert "line 2" in str(excinfo.value) or excinfo.value.line == 2
