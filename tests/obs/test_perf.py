"""Performance-regression harness: bench records and their comparison."""

from __future__ import annotations

import pytest

from repro.obs import perf
from repro.obs.perf import (
    BENCH_SCHEMA,
    CompareThresholds,
    bench_table_rows,
    compare_records,
)


def _entry(wall_s=1.0, mem_mb=10.0, nodes=100, mttf=2.0, cpd=True):
    return {
        "benchmark": "B1",
        "fabric": "4x4",
        "wall_s": wall_s,
        "peak_mem_mb": mem_mb,
        "mttf_increase": mttf,
        "cpd_preserved": cpd,
        "degradation": "none",
        "stages": {},
        "solver": {"solves": 3, "nodes": nodes, "max_mip_gap": 0.0},
    }


def _record(**entries):
    return {
        "schema": 1,
        "kind": "bench_record",
        "bench_schema": BENCH_SCHEMA,
        "timestamp": "20260101T000000",
        "entries": entries,
    }


class TestCompare:
    def test_identical_records_pass(self):
        base = _record(B1=_entry())
        assert compare_records(base, base).ok

    def test_noise_below_thresholds_passes(self):
        base = _record(B1=_entry(wall_s=10.0))
        cand = _record(B1=_entry(wall_s=11.0))  # +10% < 25% allowance
        assert compare_records(base, cand).ok

    def test_wall_time_regression_detected(self):
        base = _record(B1=_entry(wall_s=10.0))
        cand = _record(B1=_entry(wall_s=20.0))
        result = compare_records(base, cand)
        assert not result.ok
        (regression,) = result.regressions
        assert regression.metric == "wall_s"
        assert regression.ratio == pytest.approx(2.0)
        assert "B1" in regression.describe()

    def test_absolute_noise_floor_suppresses_tiny_regressions(self):
        # 3x relative but only +0.2s absolute: below the 0.5s floor.
        base = _record(B1=_entry(wall_s=0.1))
        cand = _record(B1=_entry(wall_s=0.3))
        assert compare_records(base, cand).ok

    def test_memory_and_nodes_regressions(self):
        base = _record(B1=_entry(mem_mb=20.0, nodes=200))
        cand = _record(B1=_entry(mem_mb=60.0, nodes=600))
        metrics = {r.metric for r in compare_records(base, cand).regressions}
        assert metrics == {"peak_mem_mb", "solver.nodes"}

    def test_custom_thresholds(self):
        base = _record(B1=_entry(wall_s=10.0))
        cand = _record(B1=_entry(wall_s=11.5))
        tight = CompareThresholds(wall_rel=0.10, wall_abs_s=0.5)
        assert not compare_records(base, cand, tight).ok

    def test_missing_and_new_entries_warn(self):
        base = _record(B1=_entry(), B4=_entry())
        cand = _record(B1=_entry(), B9=_entry())
        result = compare_records(base, cand)
        assert result.ok  # entry drift warns, it does not fail the gate
        assert any("B4" in w and "missing" in w for w in result.warnings)
        assert any("B9" in w and "new" in w for w in result.warnings)

    def test_quality_drop_warns_but_does_not_fail(self):
        base = _record(B1=_entry(mttf=2.0, cpd=True))
        cand = _record(B1=_entry(mttf=1.5, cpd=False))
        result = compare_records(base, cand)
        assert result.ok
        assert any("mttf_increase" in w for w in result.warnings)
        assert any("CPD" in w for w in result.warnings)

    def test_schema_mismatch_warns(self):
        base = _record(B1=_entry())
        cand = dict(_record(B1=_entry()), bench_schema="repro.bench/999")
        assert any(
            "schema" in w for w in compare_records(base, cand).warnings
        )


class TestAggregatesAndTables:
    def test_solver_aggregates_roll_up_span_records(self):
        solves = [
            {"duration_s": 0.5, "attrs": {"kind": "milp", "nodes": 10,
                                          "gap": 0.05, "limit_reason": "time_limit"}},
            {"duration_s": 0.1, "attrs": {"kind": "lp", "nodes": 0}},
            {"duration_s": 0.4, "attrs": {"kind": "milp", "nodes": 7, "gap": 0.2}},
        ]
        agg = perf._solver_aggregates(solves)
        assert agg["solves"] == 3
        assert agg["milp_solves"] == 2
        assert agg["nodes"] == 17
        assert agg["max_mip_gap"] == pytest.approx(0.2)
        assert agg["solve_s"] == pytest.approx(1.0)
        assert agg["limit_hits"] == 1
        assert agg["limit_reasons"] == {"time_limit": 1}

    def test_limit_reasons_break_out_per_cause(self):
        solves = [
            {"duration_s": 0.1, "attrs": {"limit_reason": "time_limit"}},
            {"duration_s": 0.1, "attrs": {"limit_reason": "deadline"}},
            {"duration_s": 0.1, "attrs": {"limit_reason": "time_limit"}},
            {"duration_s": 0.1, "attrs": {}},
        ]
        agg = perf._solver_aggregates(solves)
        assert agg["limit_hits"] == 3
        assert agg["limit_reasons"] == {"time_limit": 2, "deadline": 1}

    def test_limit_hit_rise_warns_with_reason_breakdown(self):
        base = _entry()
        cand = _entry()
        cand["solver"] = dict(
            cand["solver"], limit_hits=2,
            limit_reasons={"deadline": 1, "time_limit": 1},
        )
        result = compare_records(_record(B1=base), _record(B1=cand))
        assert result.ok  # a warning, not a failing regression
        (warning,) = [w for w in result.warnings if "limit hits" in w]
        assert "0 -> 2" in warning
        assert "deadline=1, time_limit=1" in warning
        assert "no reason breakdown" in warning  # the baseline side

    def test_bench_table_rows(self):
        record = _record(B1=_entry(wall_s=1.234, mem_mb=5.6))
        (row,) = bench_table_rows(record)
        assert row[0] == "B1"
        assert row[2] == pytest.approx(1.234)
        assert row[4] == 3  # solves


class TestRunEntry:
    """One real flow measurement (smoke scale, seconds)."""

    @pytest.fixture(scope="class")
    def entry(self):
        return perf.run_entry("B1", time_limit_s=10.0, max_iterations=6)

    def test_entry_shape(self, entry):
        assert entry["benchmark"] == "B1"
        assert entry["wall_s"] > 0.0
        assert entry["peak_mem_mb"] > 0.0
        assert entry["solver"]["solves"] > 0
        assert entry["mttf_increase"] >= 1.0

    def test_stage_walltimes_present(self, entry):
        assert any(path.endswith("algorithm1") for path in entry["stages"])
        flow_total = entry["stages"]["flow"]["total_s"]
        assert 0.0 < flow_total <= entry["wall_s"]

    def test_alg1_record_attached(self, entry):
        assert entry["alg1"] is not None
        assert entry["alg1"]["iterations"] >= 1
        assert len(entry["alg1"]["verdicts"]) == entry["alg1"]["iterations"]


class TestDeterminism:
    def test_back_to_back_runs_agree_within_noise(self):
        first = perf.run_entry("B1", time_limit_s=10.0, max_iterations=6)
        second = perf.run_entry("B1", time_limit_s=10.0, max_iterations=6)
        # Scientific outputs are exactly reproducible with fixed seeds...
        assert first["mttf_increase"] == pytest.approx(second["mttf_increase"])
        assert first["solver"]["nodes"] == second["solver"]["nodes"]
        assert first["alg1"]["st_trajectory"] == second["alg1"]["st_trajectory"]
        # ...so a self-comparison never trips the regression gate.
        base = _record(B1=first)
        cand = _record(B1=second)
        assert compare_records(base, cand).ok
