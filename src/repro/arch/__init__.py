"""CGRRA architecture model: PEs, fabric grid, multi-context floorplans.

This package is the substitute for the Renesas STP device the paper targets
(see DESIGN.md): a parametric grid of PEs, each containing an ALU (0.87 ns)
and a DMU (3.14 ns), connected by buffered wires whose delay is linear in
Manhattan length.
"""

from repro.arch.checks import check_capacity, check_frozen_ops, check_same_schedule
from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric, Pad
from repro.arch.opcodes import (
    ALU_KINDS,
    DMU_KINDS,
    PSEUDO_KINDS,
    REFERENCE_WIDTH,
    SUPPORTED_WIDTHS,
    OpKind,
    OpProfile,
    UnitKind,
    arity_of,
    is_compute,
    op_delay_ns,
    profile,
    stress_rate,
    unit_of,
    width_scale,
)
from repro.arch.pe import ALU_UNIT, DMU_UNIT, FunctionalUnit, PECell

__all__ = [
    "ALU_KINDS",
    "ALU_UNIT",
    "DMU_KINDS",
    "DMU_UNIT",
    "Fabric",
    "Floorplan",
    "FunctionalUnit",
    "OpKind",
    "OpProfile",
    "PECell",
    "PSEUDO_KINDS",
    "Pad",
    "REFERENCE_WIDTH",
    "SUPPORTED_WIDTHS",
    "UnitKind",
    "arity_of",
    "check_capacity",
    "check_frozen_ops",
    "check_same_schedule",
    "is_compute",
    "op_delay_ns",
    "profile",
    "stress_rate",
    "unit_of",
    "width_scale",
]
