"""Constraint normalisation, satisfaction and violation tests."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.milp import Constraint, LinExpr, Sense, Variable


@pytest.fixture
def xy():
    return Variable("x"), Variable("y")


class TestNormalisation:
    def test_body_strips_constant(self, xy):
        x, y = xy
        constraint = x + 2 * y + 3 <= 10
        assert constraint.body.constant == 0.0
        assert constraint.rhs == pytest.approx(7.0)

    def test_rhs_sign_convention(self, xy):
        x, _ = xy
        constraint = x - 5 >= 0
        assert constraint.rhs == pytest.approx(5.0)

    def test_lhs_must_be_expression(self):
        with pytest.raises(ModelError):
            Constraint("not an expr", Sense.LE)  # type: ignore[arg-type]


class TestTriviality:
    def test_trivially_satisfied(self):
        constraint = LinExpr.constant_expr(1.0) <= 2.0
        assert constraint.is_trivial()
        assert constraint.trivially_satisfied()

    def test_trivially_violated(self):
        constraint = LinExpr.constant_expr(3.0) <= 2.0
        assert not constraint.trivially_satisfied()

    def test_eq_triviality(self):
        assert (LinExpr.constant_expr(2.0) == 2.0).trivially_satisfied()
        assert not (LinExpr.constant_expr(2.0) == 3.0).trivially_satisfied()

    def test_non_trivial_raises(self, xy):
        x, _ = xy
        with pytest.raises(ModelError):
            (x <= 1).trivially_satisfied()


class TestSatisfaction:
    def test_le_satisfied(self, xy):
        x, y = xy
        constraint = x + y <= 3
        assert constraint.satisfied_by({x: 1.0, y: 1.5})
        assert not constraint.satisfied_by({x: 2.0, y: 1.5})

    def test_ge_violation_magnitude(self, xy):
        x, _ = xy
        constraint = 2 * x >= 4
        assert constraint.violation({x: 1.0}) == pytest.approx(2.0)
        assert constraint.violation({x: 3.0}) == 0.0

    def test_eq_violation_magnitude(self, xy):
        x, _ = xy
        constraint = LinExpr.from_term(x) == 2
        assert constraint.violation({x: 2.5}) == pytest.approx(0.5)
        assert constraint.violation({x: 1.5}) == pytest.approx(0.5)

    def test_tolerance(self, xy):
        x, _ = xy
        constraint = x <= 1
        assert constraint.satisfied_by({x: 1.0 + 1e-8})
        assert not constraint.satisfied_by({x: 1.1})

    def test_repr_includes_name(self, xy):
        x, _ = xy
        constraint = x <= 1
        constraint.name = "cap"
        assert "cap" in repr(constraint)
