"""Fig. 2(a) regeneration benchmark (experiment F2a in DESIGN.md).

Fig. 2(a) is the stress-levelling illustration: the aging-unaware
floorplan concentrates accumulated stress on a few PEs; the aging-aware
floorplan levels it (max 4 -> 2 in the paper's unit-stress toy).  This
benchmark runs the flow on the smallest suite entry and asserts the
quantitative levelling plus renders both grids.

Run::

    pytest benchmarks/bench_fig2a.py --benchmark-only
"""

from __future__ import annotations

from benchmarks.conftest import bench_flow, scaled_entry
from repro.benchgen.synth import build_benchmark
from repro.report import stress_grid


def test_fig2a_stress_levelling(benchmark):
    entry = scaled_entry("B1")
    design, fabric = build_benchmark(entry.spec())
    flow = bench_flow("rotate")

    result = benchmark.pedantic(
        flow.run, args=(design, fabric), rounds=1, iterations=1
    )

    before = result.original.stress
    after = result.remapped.stress
    # The core claim: the maximum accumulated stress drops...
    assert after.max_accumulated_ns < before.max_accumulated_ns
    # ...while total stress is conserved (re-binding moves, never creates).
    assert abs(after.total_ns - before.total_ns) < 1e-6
    # And usage spreads: at least as many PEs carry work as before.
    assert (after.accumulated_ns > 0).sum() >= (before.accumulated_ns > 0).sum()

    benchmark.extra_info.update(
        {
            "max_before_ns": round(before.max_accumulated_ns, 3),
            "max_after_ns": round(after.max_accumulated_ns, 3),
            "levelling_factor": round(
                before.max_accumulated_ns / after.max_accumulated_ns, 3
            ),
            "grid_before": stress_grid(fabric, before.accumulated_ns),
            "grid_after": stress_grid(fabric, after.accumulated_ns),
        }
    )
