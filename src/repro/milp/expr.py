"""Linear-expression algebra for the MILP modelling layer.

This is the foundation of a small PuLP-like modelling library (the paper used
PuLP 1.6.1 to drive CPLEX).  A :class:`Variable` is a named decision variable
with a domain; a :class:`LinExpr` is an immutable-by-convention mapping from
variables to coefficients plus a constant term.  Arithmetic operators build
expressions; comparison operators build :class:`~repro.milp.constraint.Constraint`
objects.

Expressions intentionally support only *linear* algebra: multiplying two
expressions that both contain variables raises :class:`ModelError`, which
catches accidental quadratic formulations early (e.g. the naive
driver-position x load-position wire-length product that Section V of the
paper implies and that we linearise explicitly in ``repro.core.constraints``).
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Iterable, Iterator, Mapping, Union

from repro.errors import ModelError

Number = Union[int, float]

_variable_ids = itertools.count()


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var` in
    normal use; constructing them directly is supported for tests.

    Parameters
    ----------
    name:
        Human-readable identifier (used in constraint dumps and errors).
    lb, ub:
        Bounds.  Binary variables are clamped to [0, 1] regardless.
    vtype:
        One of :class:`VarType`.
    """

    __slots__ = ("name", "lb", "ub", "vtype", "index", "_id")

    def __init__(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> None:
        if vtype is VarType.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} > upper bound {ub}")
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        #: Column index assigned by the owning model (None until registered).
        self.index: int | None = None
        self._id = next(_variable_ids)

    # Identity-based hashing: two distinct Variable objects are distinct
    # columns even if they share a name.
    def __hash__(self) -> int:
        return self._id

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return LinExpr.from_term(self).__eq__(other)
        return NotImplemented

    def __ne__(self, other: object):  # type: ignore[override]
        raise ModelError("'!=' constraints are not expressible in a MILP")

    def is_same(self, other: "Variable") -> bool:
        """Identity comparison (``==`` is overloaded to build constraints)."""
        return self._id == other._id

    # -- arithmetic delegates to LinExpr ------------------------------------
    def __add__(self, other):
        return LinExpr.from_term(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return LinExpr.from_term(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, other):
        return LinExpr.from_term(self) * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return LinExpr.from_term(self) / other

    def __neg__(self):
        return LinExpr.from_term(self, coeff=-1.0)

    def __le__(self, other):
        return LinExpr.from_term(self) <= other

    def __ge__(self, other):
        return LinExpr.from_term(self) >= other

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.vtype.value}, [{self.lb}, {self.ub}])"


class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + constant``.

    Supports ``+``, ``-``, scalar ``*`` and ``/``, and the comparison
    operators ``<=``, ``>=``, ``==`` which produce constraints.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0):
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_term(cls, var: Variable, coeff: float = 1.0) -> "LinExpr":
        """Expression consisting of a single scaled variable."""
        return cls({var: float(coeff)})

    @classmethod
    def constant_expr(cls, value: float) -> "LinExpr":
        """Expression with no variables."""
        return cls({}, float(value))

    @classmethod
    def sum(cls, items: Iterable[Union["LinExpr", Variable, Number]]) -> "LinExpr":
        """Sum an iterable of expressions/variables/numbers efficiently.

        Unlike ``builtins.sum``, this performs a single accumulation pass
        instead of building O(n) intermediate expressions, which matters for
        the stress constraints that sum thousands of assignment variables.
        """
        terms: dict[Variable, float] = {}
        constant = 0.0
        for item in items:
            if isinstance(item, Variable):
                terms[item] = terms.get(item, 0.0) + 1.0
            elif isinstance(item, LinExpr):
                constant += item.constant
                for var, coeff in item.terms.items():
                    terms[var] = terms.get(var, 0.0) + coeff
            elif isinstance(item, (int, float)):
                constant += item
            else:
                raise ModelError(f"cannot sum object of type {type(item).__name__}")
        return cls(terms, constant)

    # -- inspection ----------------------------------------------------------
    def variables(self) -> Iterator[Variable]:
        """Iterate over the variables with non-zero coefficients."""
        return iter(self.terms)

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 if absent)."""
        return self.terms.get(var, 0.0)

    def evaluate(self, assignment: Mapping[Variable, float]) -> float:
        """Value of the expression under a {variable: value} assignment."""
        total = self.constant
        for var, coeff in self.terms.items():
            try:
                total += coeff * assignment[var]
            except KeyError as exc:
                raise ModelError(f"assignment missing variable {var.name!r}") from exc
        return total

    def is_constant(self) -> bool:
        """True when the expression contains no variables."""
        return not self.terms

    def copy(self) -> "LinExpr":
        """Shallow copy (terms dict is copied; Variables are shared)."""
        return LinExpr(self.terms, self.constant)

    # -- arithmetic ----------------------------------------------------------
    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr.from_term(other)
        if isinstance(other, (int, float)):
            return LinExpr.constant_expr(other)
        raise ModelError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        terms = dict(self.terms)
        for var, coeff in other.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
        return LinExpr(terms, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, other) -> "LinExpr":
        if isinstance(other, (Variable, LinExpr)):
            other_expr = self._coerce(other)
            if not other_expr.is_constant() and not self.is_constant():
                raise ModelError(
                    "product of two non-constant expressions is not linear; "
                    "linearise explicitly (see repro.core.constraints)"
                )
            if other_expr.is_constant():
                scale = other_expr.constant
            else:
                return other_expr * self.constant
        elif isinstance(other, (int, float)):
            scale = float(other)
        else:
            raise ModelError(f"cannot scale LinExpr by {type(other).__name__}")
        return LinExpr({v: c * scale for v, c in self.terms.items()}, self.constant * scale)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "LinExpr":
        if not isinstance(other, (int, float)):
            raise ModelError("can only divide a LinExpr by a number")
        if other == 0:
            raise ModelError("division of a LinExpr by zero")
        return self * (1.0 / other)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- constraint builders ---------------------------------------------
    def __le__(self, other):
        from repro.milp.constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.LE)

    def __ge__(self, other):
        from repro.milp.constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.EQ)

    def __ne__(self, other):  # type: ignore[override]
        raise ModelError("'!=' constraints are not expressible in a MILP")

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in list(self.terms.items())[:6]]
        if len(self.terms) > 6:
            parts.append(f"... ({len(self.terms)} terms)")
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def linear_sum(items: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Module-level alias of :meth:`LinExpr.sum` for readability at call sites."""
    return LinExpr.sum(items)
