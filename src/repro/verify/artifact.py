"""Certification of saved run artifacts (``repro verify``).

A ``flow_result`` document (written by ``repro flow ... -o record.json``)
carries the design, both floorplans and the summary the run *claimed*.
:func:`certify_artifact` re-derives every claim from the raw floorplans —
fresh STA for both CPDs, plain-loop stress re-accumulation, slot/schedule
invariants — and flags any disagreement with the stored summary.

With ``certify_backend`` set, a sampled subset of contexts is additionally
re-solved as small restricted Eq. (3) models (each op choosing between its
original and its remapped PE, other contexts pinned as committed stress)
on *both* backends, and the objectives are compared within tolerance
(:mod:`repro.verify.differential`).
"""

from __future__ import annotations

import random

from repro.errors import CertificationError
from repro.obs import get_logger, span
from repro.verify.certifier import (
    ABS_TOL,
    CPD_EPS,
    Certificate,
    Violation,
    certify_floorplan,
)
from repro.verify.differential import differential_solve, make_backend

_log = get_logger("verify.artifact")

#: Violation kind for summary fields that disagree with re-derived values.
KIND_SUMMARY = "summary_mismatch"

#: Tolerance for re-derived scalar summary fields (ns / ratios round-trip
#: exactly through JSON, so this only absorbs re-accumulation order noise).
SUMMARY_TOL = 1e-6


def _check_summary_field(
    cert: Certificate, name: str, claimed, derived: float, tol: float = SUMMARY_TOL
) -> None:
    if claimed is None:
        return
    if abs(float(claimed) - derived) > tol:
        cert.violations.append(
            Violation(
                kind=KIND_SUMMARY,
                subject=name,
                detail=f"summary claims {float(claimed):.9g}, re-derived {derived:.9g}",
                magnitude=abs(float(claimed) - derived),
            )
        )


def certify_artifact(
    document: dict,
    certify_backend: str | None = None,
    sample: int = 2,
    seed: int = 0,
    time_limit_s: float = 30.0,
) -> dict:
    """Re-check a saved flow result from first principles.

    Returns a JSON-ready report: ``{"ok", "certificate", "differential"}``.
    Raises :class:`CertificationError` for documents that are not
    ``flow_result`` artifacts (nothing to certify).
    """
    from repro.io.serialize import design_from_dict, floorplan_from_dict
    from repro.timing.sta import analyze

    if document.get("kind") != "flow_result":
        raise CertificationError(
            f"cannot certify a {document.get('kind')!r} document: "
            "expected kind 'flow_result' (repro flow ... -o record.json)"
        )
    design = design_from_dict(document["design"])
    original = floorplan_from_dict(document["original_floorplan"])
    remapped = floorplan_from_dict(document["remapped_floorplan"])
    summary = document.get("summary", {})

    with span("certify_artifact", benchmark=design.name):
        baseline = analyze(design, original)
        # Independent stress re-accumulation (plain dict loop).
        stress_by_pe: dict[int, float] = {}
        for op in design.ops.values():
            pe_index = remapped.pe_of.get(op.op_id)
            if pe_index is not None:
                stress_by_pe[pe_index] = (
                    stress_by_pe.get(pe_index, 0.0) + op.stress_ns
                )
        max_stress = max(stress_by_pe.values(), default=0.0)

        cert = certify_floorplan(
            design,
            remapped,
            st_target_ns=max_stress + ABS_TOL,
            baseline_cpd_ns=baseline.cpd_ns + CPD_EPS,
        )
        final = analyze(design, remapped)
        _check_summary_field(
            cert, "original_cpd_ns", summary.get("original_cpd_ns"), baseline.cpd_ns
        )
        _check_summary_field(
            cert, "final_cpd_ns", summary.get("final_cpd_ns"), final.cpd_ns
        )
        _check_summary_field(
            cert,
            "remapped_max_stress_ns",
            summary.get("remapped_max_stress_ns"),
            max_stress,
        )
        mttf = summary.get("mttf_increase")
        if mttf is not None and float(mttf) < 1.0 - SUMMARY_TOL:
            cert.violations.append(
                Violation(
                    kind=KIND_SUMMARY,
                    subject="mttf_increase",
                    detail=f"claimed MTTF increase {float(mttf):.6g} < 1.0",
                )
            )
        cert.checks.append("summary fields re-derived (CPDs, max stress, MTTF)")

        differential = None
        if certify_backend is not None:
            differential = _differential_contexts(
                design, original, remapped, certify_backend,
                sample=sample, seed=seed, time_limit_s=time_limit_s,
                max_stress_ns=max_stress, cpd_ns=baseline.cpd_ns,
            )

    report = {
        "ok": cert.ok and (differential is None or differential["ok"]),
        "benchmark": design.name,
        "certificate": cert.to_dict(),
        "differential": differential,
    }
    return report


def _differential_contexts(
    design,
    original,
    remapped,
    certify_backend: str,
    sample: int,
    seed: int,
    time_limit_s: float,
    max_stress_ns: float,
    cpd_ns: float,
) -> dict:
    """Re-solve a sampled subset of contexts on both backends.

    Each sampled context becomes a restricted Eq. (3) model: its ops choose
    between their original and their remapped PE, every other context is
    pinned at its remapped position (committed stress), the budget is the
    artifact's own max accumulated stress.  The remapped binding is a
    feasible point of that model, so both backends must find a solution,
    and on a model this small both prove optimality — the objectives must
    agree.
    """
    from repro.core.remap import build_remap_model
    from repro.core.rotation import FrozenPlan

    contexts = sorted({op.context for op in design.ops.values()})
    rng = random.Random(seed)
    chosen = sorted(rng.sample(contexts, min(sample, len(contexts))))
    backends = {
        "highs": make_backend("highs", time_limit_s),
        certify_backend: make_backend(certify_backend, time_limit_s),
    }
    reports = {}
    ok = True
    for context in chosen:
        pinned = {
            op_id: remapped.pe_of[op_id]
            for op_id, op in design.ops.items()
            if op.context != context and op_id in remapped.pe_of
        }
        candidates = {}
        for op_id, op in design.ops.items():
            if op.context != context:
                continue
            pes = [original.pe_of[op_id]]
            if remapped.pe_of[op_id] not in pes:
                pes.append(remapped.pe_of[op_id])
            candidates[op_id] = pes
        if not candidates:
            continue
        frozen = FrozenPlan(positions=pinned, orientation_of_context={})
        model, _variables, _stats = build_remap_model(
            design,
            remapped.fabric,
            frozen,
            candidates,
            monitored_paths=[],
            cpd_ns=cpd_ns,
            st_target_ns=max_stress_ns + ABS_TOL,
            name=f"verify_ctx{context}",
            objective="wirelength",
        )
        result = differential_solve(model, backends)
        reports[str(context)] = result
        ok = ok and result["ok"]
        _log.info(
            "context %d differential: %s (objectives %s)",
            context,
            "ok" if result["ok"] else "MISMATCH",
            result["objectives"],
        )
    return {"ok": ok, "sampled_contexts": chosen, "contexts": reports}
