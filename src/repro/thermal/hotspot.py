"""HotSpot-style facade: floorplan + stress maps -> per-context thermal maps.

Mirrors the paper's use of HotSpot 6.0 (Section III): "The thermal
simulator inputs the stress time maps and floorplans generated in the
aging-unaware mapping generation phase and generates a thermal map for
each context.  The PE with the maximum accumulated temperature across all
contexts is, then, identified."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.fabric import Fabric
from repro.errors import ThermalError
from repro.kernels import kernel_timer, vectorized
from repro.obs import counter, span
from repro.resilience.deadline import current_deadline
from repro.resilience.faults import should_inject
from repro.thermal.grid import ThermalGrid, ThermalGridConfig
from repro.thermal.power import PowerModel


def _require_finite(maps: np.ndarray, what: str) -> np.ndarray:
    """Fail loudly (typed) when a thermal solve diverged.

    An ill-conditioned grid (or an injected ``thermal_divergence`` fault)
    yields NaN/inf temperatures; letting those flow onward corrupts the
    NBTI model silently.  Divergence is a first-class, recoverable outcome:
    Phase 2 catches :class:`ThermalError` and keeps the original floorplan.
    """
    if should_inject("thermal_divergence"):
        maps = np.full_like(maps, np.nan)
    bad = int(np.count_nonzero(~np.isfinite(maps)))
    if bad:
        counter("thermal.divergences").inc()
        raise ThermalError(
            f"thermal solve diverged: {bad} non-finite temperature(s) in {what}"
        )
    return maps


@dataclass
class ThermalReport:
    """Thermal maps for one floorplan.

    Attributes
    ----------
    per_context_k:
        ``(contexts, num_pes)`` steady-state temperature per context.
    accumulated_k:
        Per-PE mean temperature over the schedule (the long-term operating
        temperature that drives NBTI).
    """

    per_context_k: np.ndarray
    accumulated_k: np.ndarray

    @property
    def hottest_pe(self) -> int:
        """PE index with the maximum accumulated temperature."""
        return int(np.argmax(self.accumulated_k))

    @property
    def peak_k(self) -> float:
        return float(np.max(self.accumulated_k))

    def temperature_of(self, pe_index: int) -> float:
        return float(self.accumulated_k[pe_index])


@dataclass
class ThermalSimulator:
    """Steady-state thermal simulation of a multi-context configuration."""

    fabric: Fabric
    grid_config: ThermalGridConfig = field(default_factory=ThermalGridConfig)
    power_model: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        self._grid = ThermalGrid(self.fabric, self.grid_config)

    def simulate(self, duty_per_context: np.ndarray) -> ThermalReport:
        """Thermal maps from per-context duty cycles.

        Parameters
        ----------
        duty_per_context:
            Array of shape ``(contexts, num_pes)``: the duty cycle of each
            PE while each context is resident (= stress time within the
            cycle / clock period).
        """
        duty_per_context = np.asarray(duty_per_context, dtype=float)
        if duty_per_context.ndim != 2 or duty_per_context.shape[1] != self.fabric.num_pes:
            raise ThermalError(
                f"duty array shape {duty_per_context.shape} incompatible with "
                f"fabric of {self.fabric.num_pes} PEs"
            )
        deadline = current_deadline()
        num_contexts = duty_per_context.shape[0]
        with span("thermal", contexts=num_contexts):
            if vectorized() and num_contexts:
                deadline.check("thermal:batch")
                with kernel_timer("thermal"):
                    power = self.power_model.power_map_many(
                        self.fabric, duty_per_context
                    )
                    maps = self._grid.solve_many(power)
            else:
                maps = np.empty_like(duty_per_context)
                for context in range(num_contexts):
                    deadline.check(f"thermal:context{context}")
                    power = self.power_model.power_map(
                        self.fabric, duty_per_context[context]
                    )
                    maps[context] = self._grid.solve(power)
            counter("thermal.grid_solves").inc(num_contexts)
            maps = _require_finite(maps, "per-context thermal maps")
        return ThermalReport(
            per_context_k=maps,
            accumulated_k=maps.mean(axis=0),
        )

    def simulate_average(self, average_duty: np.ndarray) -> np.ndarray:
        """Single steady-state map from schedule-average duty cycles."""
        current_deadline().check("thermal:average")
        with span("thermal", contexts=1):
            power = self.power_model.power_map(self.fabric, average_duty)
            counter("thermal.grid_solves").inc()
            return _require_finite(self._grid.solve(power), "average thermal map")
