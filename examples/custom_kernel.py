#!/usr/bin/env python
"""Bring-your-own-kernel: compile mini-C, explore fabric sizes, re-map.

Demonstrates the workload the paper's introduction motivates: take a
synthesizable C kernel, let the HLS frontend schedule it onto fabrics of
different sizes (trading contexts/latency against area), and measure the
aging-aware re-mapping gain on each configuration — the low/medium/high
utilisation trend of Fig. 5 on a single real kernel.

Usage::

    python examples/custom_kernel.py [kernel-name|path/to/file.c]

Kernel names: fir8, matvec4, checksum, sobel3 (see repro.benchgen.sources).
"""

from __future__ import annotations

import pathlib
import sys

from repro import Fabric, compile_source, schedule_dfg, tech_map
from repro.benchgen import KERNELS, kernel_source
from repro.core import AgingAwareFlow, Algorithm1Config, FlowConfig, RemapConfig
from repro.report import format_table


def load_kernel(argument: str) -> tuple[str, str]:
    path = pathlib.Path(argument)
    if path.exists():
        return path.stem, path.read_text()
    if argument in KERNELS:
        return argument, kernel_source(argument)
    raise SystemExit(
        f"unknown kernel {argument!r}; pick one of {sorted(KERNELS)} or a file"
    )


def main() -> None:
    name, source = load_kernel(sys.argv[1] if len(sys.argv) > 1 else "sobel3")
    dfg = compile_source(source, name)
    print(f"{name}: {dfg.num_compute} compute ops")

    flow = AgingAwareFlow(
        FlowConfig(algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=60)))
    )

    rows = []
    for dim in (3, 4, 6):
        fabric = Fabric(dim, dim)
        schedule = schedule_dfg(dfg, capacity=fabric.num_pes)
        design = tech_map(schedule, name=f"{name}@{dim}x{dim}")
        result = flow.run(design, fabric)
        rows.append([
            f"{dim}x{dim}",
            design.num_contexts,
            f"{result.original.floorplan.utilization():.0%}",
            result.remap.original_cpd_ns,
            result.mttf_increase,
            result.cpd_preserved,
        ])
    print()
    print(format_table(
        ["fabric", "contexts", "utilization", "CPD (ns)",
         "MTTF increase (x)", "CPD preserved"],
        rows,
    ))
    print()
    print("Smaller fabrics -> more contexts and higher utilisation -> less")
    print("spare room for stress levelling: the same trend as the paper's")
    print("low/medium/high super-columns.")


if __name__ == "__main__":
    main()
