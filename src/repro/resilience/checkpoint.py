"""Crash-isolated, resumable experiment sweeps (JSONL checkpoints).

A Table I sweep at paper scale runs for hours; losing the whole run to one
crashing benchmark (or a ^C at entry 25 of 27) is the single biggest
robustness hole in the experiment drivers.  :class:`SweepCheckpoint`
appends one JSON record per finished entry — success or permanent failure
— to a sidecar file, flushed and fsynced per record so a killed process
loses at most the entry in flight.

``run_table1``/``run_fig5`` consume it: ``--resume`` skips entries whose
latest record is a success (failed entries are retried), and because JSON
floats round-trip exactly, a resumed sweep reproduces byte-identical
tables.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
from typing import Iterator

from repro.errors import ReproError
from repro.obs.logs import get_logger
from repro.resilience.atomic import atomic_write_text

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

_log = get_logger("resilience.checkpoint")


@contextlib.contextmanager
def _exclusive(handle) -> Iterator[None]:
    """Hold an advisory ``flock`` on ``handle`` for the ``with`` body.

    Two processes appending to the same journal (e.g. two concurrent
    ``--resume`` sweeps pointed at one checkpoint) would otherwise be
    able to interleave partial ``write`` calls into one torn line in the
    *middle* of the file — which ``records()`` treats as real corruption.
    The lock serialises whole-record appends; it is advisory, so readers
    (which never write) stay lock-free.  Released automatically when the
    file handle closes, even if the process dies mid-append.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class CheckpointError(ReproError):
    """A sweep checkpoint file is unreadable or malformed."""


class SweepCheckpoint:
    """Append-only JSONL journal of per-entry sweep outcomes.

    Records are free-form dicts carrying at least ``entry`` (benchmark
    name) and ``status`` (``"ok"`` or ``"failed"``).  The latest record
    per entry wins, so a retried entry simply appends a newer record.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Start a fresh sweep: truncate any previous journal.

        Uses the shared atomic-replace helper so a crash mid-reset leaves
        either the old journal or an empty one — never a torn file.
        """
        atomic_write_text(self.path, "")

    def append(self, record: dict) -> None:
        """Durably append one record (flock + flush + fsync per line).

        The advisory :func:`_exclusive` lock means concurrent appenders
        (two ``--resume`` processes sharing a checkpoint) write whole
        lines, never interleaved fragments; the fsync means a killed
        process loses at most its own in-flight record.
        """
        if "entry" not in record or "status" not in record:
            raise CheckpointError(
                f"checkpoint record needs 'entry' and 'status': {record!r}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            with _exclusive(handle):
                # Seek inside the lock: another appender may have grown
                # the file since open; "a" mode appends at write time on
                # POSIX, but the explicit seek documents the invariant.
                handle.seek(0, os.SEEK_END)
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def records(self, tolerate_torn_tail: bool = True) -> Iterator[dict]:
        """Yield every record in journal order (missing file = empty).

        A malformed *final* line is skipped with a warning when
        ``tolerate_torn_tail`` is true: a process killed mid-``append``
        leaves at most one truncated line at the end of the journal, and
        that must not make the whole sweep unresumable (same contract as
        :func:`repro.obs.trace.read_trace`).  A torn line anywhere else
        means real corruption and still raises :class:`CheckpointError`.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = [
                (lineno, line.strip())
                for lineno, line in enumerate(handle, start=1)
                if line.strip()
            ]
        for position, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "entry" not in record:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: not a sweep record: {line!r}"
                    )
            except (json.JSONDecodeError, CheckpointError) as exc:
                if not tolerate_torn_tail or position != len(lines) - 1:
                    if isinstance(exc, CheckpointError):
                        raise
                    raise CheckpointError(
                        f"{self.path}:{lineno}: not valid JSON: {exc}"
                    ) from exc
                _log.warning(
                    "%s: line %d is torn (crash-truncated write?); skipped",
                    self.path, lineno,
                )
                return
            yield record

    def latest(self) -> dict[str, dict]:
        """Latest record per entry name (later lines supersede earlier)."""
        result: dict[str, dict] = {}
        for record in self.records():
            result[record["entry"]] = record
        return result

    def completed(self) -> dict[str, dict]:
        """Entries whose latest record is a success."""
        return {
            name: record
            for name, record in self.latest().items()
            if record.get("status") == "ok"
        }
