"""Linear constraints for the MILP modelling layer.

A :class:`Constraint` stores a normalised form ``expr (<=|>=|==) 0`` where
``expr`` is a :class:`~repro.milp.expr.LinExpr`.  Comparison operators on
expressions and variables produce these objects, so model code reads like
the paper's formulation, e.g.::

    model.add_constraint(
        linear_sum(st[op] * x[op, pe] for op in ops) <= st_target,
        name=f"stress[{pe}]",
    )
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.errors import ModelError
from repro.milp.expr import LinExpr, Variable


class Sense(enum.Enum):
    """Direction of a constraint, relative to ``expr (sense) 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``lhs sense 0`` (normalised form).

    The public, human-oriented view decomposes it as
    ``body sense rhs`` where ``body`` has no constant term and
    ``rhs = -lhs.constant``.
    """

    __slots__ = ("lhs", "sense", "name", "tags")

    def __init__(
        self,
        lhs: LinExpr,
        sense: Sense,
        name: str = "",
        tags: Mapping[str, object] | None = None,
    ) -> None:
        if not isinstance(lhs, LinExpr):
            raise ModelError("constraint left-hand side must be a LinExpr")
        self.lhs = lhs
        self.sense = sense
        self.name = name
        #: Domain metadata (e.g. ``{"family": "stress", "pe": 3}``) carried
        #: through compilation into :class:`~repro.milp.model.RowMeta`, so
        #: diagnostics can name rows in problem terms rather than indices.
        self.tags: Mapping[str, object] = dict(tags) if tags else {}

    @property
    def body(self) -> LinExpr:
        """The variable part of the constraint (no constant term)."""
        return LinExpr(self.lhs.terms, 0.0)

    @property
    def rhs(self) -> float:
        """The right-hand-side constant of ``body sense rhs``."""
        return -self.lhs.constant

    def is_trivial(self) -> bool:
        """True when the constraint contains no variables."""
        return self.lhs.is_constant()

    def trivially_satisfied(self) -> bool:
        """For a trivial constraint, whether it holds; raises otherwise."""
        if not self.is_trivial():
            raise ModelError("constraint is not trivial")
        value = self.lhs.constant
        if self.sense is Sense.LE:
            return value <= 1e-9
        if self.sense is Sense.GE:
            return value >= -1e-9
        return abs(value) <= 1e-9

    def satisfied_by(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check the constraint under a full variable assignment."""
        value = self.lhs.evaluate(assignment)
        if self.sense is Sense.LE:
            return value <= tol
        if self.sense is Sense.GE:
            return value >= -tol
        return abs(value) <= tol

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Non-negative magnitude of violation under ``assignment``."""
        value = self.lhs.evaluate(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"Constraint({label}{self.body!r} {self.sense.value} {self.rhs:g})"
