"""Deterministic fault injection for resilience testing.

The flow has a small catalogue of *named injection points* — places where
production deployments have seen real failures (solver crashes, timeouts,
infeasible models, diverging thermal solves, NaN annealing costs).  A
:class:`FaultPlan` arms a subset of them; the library calls
:func:`should_inject` at each point and fails exactly the way the real
fault would, so tests can prove every recovery path actually recovers.

Activation
----------
* Tests: ``with fault_scope("solver_crash"): ...``
* Whole-process (CI jobs, CLI smoke runs): the ``REPRO_FAULTS``
  environment variable, e.g. ``REPRO_FAULTS="solver_crash"`` or
  ``REPRO_FAULTS="thermal_divergence@2,annealing_nan"``.

Syntax: comma-separated point names; ``point@N`` fires only on the N-th
hit of that point (1-based) — e.g. ``thermal_divergence@2`` spares the
Phase 1 baseline evaluation and corrupts the Phase 2 re-evaluation, which
is the recoverable case.  A bare name fires on every hit.

The plan is deterministic: firing depends only on the per-point hit
counter, never on randomness or time.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.obs import counter, event, get_logger

_log = get_logger("resilience.faults")

#: The injection-point catalogue (see docs/robustness.md for the exact
#: failure each point produces and the recovery path it exercises).
FAULT_POINTS = (
    "solver_crash",       # MILP backend raises SolverError mid-solve
    "solver_timeout",     # MILP backend hits its limit with no incumbent
    "infeasible_model",   # MILP backend proves the model infeasible
    "thermal_divergence", # thermal solve returns non-finite temperatures
    "annealing_nan",      # annealing move cost evaluates to NaN
    # Sweep-worker faults: the decision is taken in the *parent* at
    # submission time (forked workers would each count hits from zero, so
    # ``worker_crash@N`` would be nondeterministic); the flag rides into
    # the worker, which then dies (``os._exit``) or hangs.  Exercised by
    # the supervised pool in repro.report.experiments.
    "worker_crash",       # sweep worker exits hard mid-entry (segfault/OOM)
    "worker_hang",        # sweep worker hangs inside a native call
    # Portfolio-lane faults: like worker faults, decided in the *parent*
    # (the racing executor) once per portfolio solve — lane threads would
    # race each other to the hit counter — and applied to the configured
    # leading backend's lane.  Exercised by repro.portfolio.
    "lane_crash",         # the leading lane raises SolverError mid-solve
    "lane_hang",          # the leading lane hangs until cancelled
    "lane_wrong_answer",  # the leading lane returns a corrupted solution
    # Service-layer faults (repro.service): like worker faults, the
    # ``service_worker_crash`` verdict is taken in the *service parent*
    # at dispatch time and rides into the job worker as a flag.
    "service_worker_crash",   # a service job worker dies hard mid-solve
    "service_cache_corrupt",  # an artifact-cache write lands corrupted
    "service_slow_client",    # an HTTP client stalls mid-request body
)

#: The portfolio-lane subset, in decision-priority order.
LANE_FAULT_POINTS = ("lane_crash", "lane_hang", "lane_wrong_answer")

#: Name of the activating environment variable.
ENV_VAR = "REPRO_FAULTS"


class FaultConfigError(ReproError):
    """A fault-plan specification could not be parsed."""


@dataclass
class FaultSpec:
    """One armed injection point.

    ``at`` fires only on that 1-based hit of the point; ``None`` fires on
    every hit.
    """

    point: str
    at: int | None = None

    def fires(self, hit: int) -> bool:
        return self.at is None or hit == self.at


@dataclass
class FaultPlan:
    """A deterministic set of armed injection points with hit counters."""

    specs: list[FaultSpec] = field(default_factory=list)
    _hits: dict[str, int] = field(default_factory=dict)
    _fired: dict[str, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` syntax (``point[@N][,point...]``)."""
        specs: list[FaultSpec] = []
        for raw in text.split(","):
            raw = raw.strip()
            if not raw:
                continue
            name, _, index = raw.partition("@")
            if name not in FAULT_POINTS:
                raise FaultConfigError(
                    f"unknown fault point {name!r}; known: {', '.join(FAULT_POINTS)}"
                )
            at: int | None = None
            if index:
                try:
                    at = int(index)
                except ValueError as exc:
                    raise FaultConfigError(
                        f"invalid hit index in {raw!r}; expected point@N"
                    ) from exc
                if at < 1:
                    raise FaultConfigError(f"hit index must be >= 1 in {raw!r}")
            specs.append(FaultSpec(name, at))
        return cls(specs=specs)

    def should_fire(self, point: str) -> bool:
        """Record a hit of ``point`` and decide whether the fault fires."""
        armed = [s for s in self.specs if s.point == point]
        if not armed:
            return False
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        if any(spec.fires(hit) for spec in armed):
            self._fired[point] = self._fired.get(point, 0) + 1
            return True
        return False

    def hits(self, point: str) -> int:
        """How many times ``point`` was reached under this plan."""
        return self._hits.get(point, 0)

    def fired(self, point: str) -> int:
        """How many times ``point`` actually injected a fault."""
        return self._fired.get(point, 0)


#: Plan installed programmatically (fault_scope); takes precedence over env.
_installed: FaultPlan | None = None
#: Cache of the env-var plan, keyed by the raw string, so hit counters
#: persist across calls within one process.
_env_cache: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The plan in force: the installed one, else one parsed from the env."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        _env_cache = None
        return None
    if _env_cache is None or _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan.parse(raw))
        _log.warning("fault injection armed from %s=%r", ENV_VAR, raw)
    return _env_cache[1]


def should_inject(point: str) -> bool:
    """Called by the library at each injection point.

    Returns True when the active plan wants this hit to fail; records an
    ``obs`` counter and event on every injection so traces show what was
    injected where.
    """
    plan = active_plan()
    if plan is None:
        return False
    if not plan.should_fire(point):
        return False
    counter(f"faults.injected.{point}").inc()
    event("fault.injected", point=point, hit=plan.hits(point))
    _log.warning("injecting fault %r (hit %d)", point, plan.hits(point))
    return True


def inject_solver_fault(model_name: str):
    """Shared MILP-backend injection site (both backends call this).

    Raises :class:`~repro.errors.SolverError` for ``solver_crash``;
    returns a fabricated no-solution :class:`~repro.milp.status.Solution`
    for ``solver_timeout``/``infeasible_model``; returns ``None`` when no
    solver fault is armed.  Imports are local so arming no faults costs a
    dict lookup, and the resilience package stays import-light.
    """
    if should_inject("solver_crash"):
        from repro.errors import SolverError

        raise SolverError(f"fault injection: solver crash in {model_name!r}")
    if should_inject("solver_timeout"):
        from repro.milp.status import Solution, SolveStatus

        return Solution(
            status=SolveStatus.ERROR,
            message="fault injection: time limit reached without incumbent",
        )
    if should_inject("infeasible_model"):
        from repro.milp.status import Solution, SolveStatus

        return Solution(
            status=SolveStatus.INFEASIBLE,
            message="fault injection: model proven infeasible",
        )
    return None


def decide_lane_fault() -> str | None:
    """Parent-side decision point for the portfolio-lane faults.

    Called by the racing executor exactly once per portfolio solve, so
    ``lane_crash@N`` counts *solves*, deterministically — lane threads
    deciding for themselves would race each other to the hit counter.
    Returns the fault to apply to the leading lane, or ``None``.
    """
    for point in LANE_FAULT_POINTS:
        if should_inject(point):
            return point
    return None


@contextlib.contextmanager
def fault_scope(plan: "FaultPlan | str") -> Iterator[FaultPlan]:
    """Install a plan for the ``with`` body (tests' entry point).

    Accepts a :class:`FaultPlan` or the ``REPRO_FAULTS`` string syntax.
    """
    global _installed
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = _installed
    _installed = plan
    try:
        yield plan
    finally:
        _installed = previous
