"""Paper-comparison helper tests."""

from __future__ import annotations

import pytest

from repro.benchgen import TABLE1, entry
from repro.report import (
    BenchmarkMeasurement,
    class_averages,
    paper_class_averages,
    paper_reference_rows,
    shape_checks,
)


def measurements_matching_paper():
    """Fake measurements equal to the published values."""
    return [
        BenchmarkMeasurement(e, e.freeze_ref, e.rotate_ref) for e in TABLE1
    ]


class TestClassAverages:
    def test_reproduces_paper_avg_row(self):
        averages = class_averages(measurements_matching_paper())
        published = paper_class_averages()
        for usage, (freeze, rotate) in averages.items():
            assert freeze == pytest.approx(published[usage][0], abs=0.01)
            assert rotate == pytest.approx(published[usage][1], abs=0.01)

    def test_partial_measurements(self):
        subset = measurements_matching_paper()[:9]  # low only
        averages = class_averages(subset)
        assert set(averages) == {"low"}


class TestShapeChecks:
    def test_paper_values_pass_all_checks(self):
        checks = shape_checks(measurements_matching_paper())
        assert checks
        failing = [c.name for c in checks if not c.holds]
        assert failing == []

    def test_rotate_below_freeze_flagged(self):
        bad = measurements_matching_paper()
        bad[0] = BenchmarkMeasurement(bad[0].entry, 3.0, 1.0)
        checks = shape_checks(bad)
        check = next(c for c in checks if c.name == "rotate >= freeze")
        assert not check.holds
        assert "B1" in check.detail

    def test_inverted_utilization_trend_flagged(self):
        """Swap low and high gains: the class-ordering check must fail."""
        swapped = []
        for e in TABLE1:
            gain = {"low": 1.2, "medium": 2.0, "high": 3.0}[e.usage_class]
            swapped.append(BenchmarkMeasurement(e, gain, gain))
        checks = shape_checks(swapped)
        check = next(
            c for c in checks if c.name == "low > medium > high (rotate avg)"
        )
        assert not check.holds

    def test_empty_measurements(self):
        assert shape_checks([]) == [] or all(
            isinstance(c.holds, bool) for c in shape_checks([])
        )


class TestReferenceRows:
    def test_rows_match_entries(self):
        rows = paper_reference_rows()
        assert len(rows) == 27
        b13 = next(r for r in rows if r[0] == "B13")
        assert b13[5] == entry("B13").freeze_ref

    def test_measurement_row_interleaves_paper_values(self):
        m = BenchmarkMeasurement(entry("B5"), 2.5, 2.7)
        row = m.row()
        assert row[0] == "B5"
        assert row[5] == 2.5 and row[6] == entry("B5").freeze_ref
        assert row[7] == 2.7 and row[8] == entry("B5").rotate_ref
