"""Mini-C kernel library tests: every kernel compiles, schedules and is
semantically sane."""

from __future__ import annotations

import pytest

from repro.benchgen import KERNELS, kernel_source
from repro.errors import BenchmarkError
from repro.hls import compile_source, schedule_dfg, tech_map


class TestLibrary:
    def test_at_least_four_kernels(self):
        assert len(KERNELS) >= 4

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BenchmarkError):
            kernel_source("nonexistent")

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_compiles_and_maps(self, name):
        dfg = compile_source(kernel_source(name), name)
        assert dfg.num_compute > 0
        schedule = schedule_dfg(dfg, capacity=16)
        design = tech_map(schedule)
        design.validate()
        assert design.num_ops == dfg.num_compute


class TestKernelSemantics:
    def test_fir8_linear_in_input_scale(self):
        dfg = compile_source(kernel_source("fir8"), "fir8")
        base = dfg.evaluate({"s0": 100, "s1": 50})["y"]
        assert dfg.evaluate({"s0": 100, "s1": 50})["y"] == base  # stable

    def test_matvec4_known_values(self):
        dfg = compile_source(kernel_source("matvec4"), "matvec4")
        result = dfg.evaluate({"x0": 1, "x1": 0, "x2": 0, "x3": 0})
        # First column of m: m[0], m[4], m[8], m[12] with
        # m[i] = (i*7) % 11 - 5.
        m = [(i * 7) % 11 - 5 for i in range(16)]
        r = [m[i * 4] for i in range(4)]
        assert result["y1"] == r[1]
        assert result["y3"] == r[3]
        assert result["y2"] == (r[2] ^ r[3])
        assert result["y0"] == (100 if r[0] > 100 else r[0])

    def test_checksum_differs_by_key(self):
        dfg = compile_source(kernel_source("checksum"), "checksum")
        d1 = dfg.evaluate({"data": 1234, "key": 1})["digest"]
        d2 = dfg.evaluate({"data": 1234, "key": 2})["digest"]
        assert d1 != d2
        assert 0 <= d1 <= 65535

    def test_sobel_magnitude_nonnegative(self):
        dfg = compile_source(kernel_source("sobel3"), "sobel3")
        for p in ((0, 0, 0), (100, -7, 13), (-1, -2, -3)):
            result = dfg.evaluate({"p0": p[0], "p1": p[1], "p2": p[2]})
            assert result["magnitude"] >= 0
