"""Process-local metrics: counters, gauges and histograms.

The registry is the always-on half of the observability layer: instruments
are cheap attribute updates behind a per-instrument lock (no I/O), so
solver internals can count nodes, relaxations and accepted moves
unconditionally — including from sweep worker threads.  Sinks read a
:meth:`MetricsRegistry.snapshot` at the end of a run.

Histograms additionally keep a bounded reservoir of observations
(:data:`RESERVOIR_SIZE`, Vitter's Algorithm R) so snapshots can report
p50/p95/p99 without unbounded memory.  The reservoir RNG is seeded from
the instrument *name*, so quantiles over a deterministic workload are
themselves deterministic run-to-run.

Naming convention (see ``docs/observability.md``): dotted lowercase paths,
``<subsystem>.<thing>[.<aspect>]`` — e.g. ``milp.bb.nodes_explored``,
``algorithm1.st_target_relaxations``, ``rounding.vars_fixed``,
``anneal.moves_accepted``, ``thermal.grid_solves``.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Iterator

#: Max observations a Histogram retains for quantile estimation.  1024
#: doubles give exact quantiles for every smoke-scale workload and a
#: uniform sample (Algorithm R) beyond it.
RESERVOIR_SIZE = 1024


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending list (q in [0, 1])."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (last-write-wins, thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean + quantiles).

    Beyond the running aggregates, a bounded reservoir (uniform sample,
    Algorithm R) supports p50/p95/p99 in :meth:`snapshot`.  The sampling
    RNG is seeded from the instrument name so deterministic workloads
    yield deterministic quantiles.  All updates are thread-safe.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir",
                 "_rng", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._reservoir: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Reservoir estimate of the ``q``-quantile (exact while count
        stays within :data:`RESERVOIR_SIZE`)."""
        with self._lock:
            ordered = sorted(self._reservoir)
        return _percentile(ordered, q)

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._reservoir)
            count, total = self.count, self.total
            lo = self.min if count else 0.0
            hi = self.max if count else 0.0
        return {
            "kind": "histogram",
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Creation is lock-protected (cheap, happens once per name); updates go
    through each instrument's own lock.  A name is permanently bound to
    its first kind — asking for ``counter("x")`` after ``gauge("x")`` is
    an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls(name))
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """``{name: {kind, value | count/sum/...}}`` sorted by name."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._instruments.clear()


#: The process-default registry the module-level helpers write to.
_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return _default


def counter(name: str) -> Counter:
    """Default-registry counter, e.g. ``counter("milp.bb.nodes_explored")``."""
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    """Default-registry gauge."""
    return _default.gauge(name)


def histogram(name: str) -> Histogram:
    """Default-registry histogram."""
    return _default.histogram(name)
