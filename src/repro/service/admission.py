"""Admission control and load shedding for the floorplanning service.

A long-lived service in front of an expensive solver has to say *no*
early: a request it cannot start within its deadline is better rejected
at the door — with an honest retry hint — than queued until it times out
holding memory.  The controller enforces two independent limits:

* a **bounded queue** — at most ``max_queue`` jobs admitted but not yet
  finished across all tenants; beyond it, requests are shed with
  ``AdmissionError("queue_full", retry_after_s)`` (HTTP 503 +
  ``Retry-After``);
* a **per-tenant backlog cap** — one tenant cannot fill the whole queue;
  beyond ``tenant_queue`` waiting+running jobs, *that tenant's* requests
  are shed (``"tenant_queue_full"``) while other tenants keep being
  admitted.

Separately from admission, per-tenant **concurrency quotas** bound how
many of a tenant's admitted jobs occupy workers at once
(:meth:`AdmissionController.acquire` / :meth:`release` wrap an
``asyncio``-friendly counter used by the service's worker loop).

The retry hint is proportional to the backlog: a client told to come
back in ``retry_after_s`` seconds when the queue is N deep gets a larger
hint at 2N — cheap, stateless backpressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AdmissionError
from repro.obs import counter, event, gauge


@dataclass
class AdmissionConfig:
    """Knobs of the admission controller."""

    #: Max admitted-but-unfinished jobs across all tenants.
    max_queue: int = 64
    #: Max admitted-but-unfinished jobs per tenant.
    tenant_queue: int = 32
    #: Max concurrently *running* jobs per tenant.
    tenant_concurrency: int = 2
    #: Base retry hint handed to shed clients (scaled by backlog).
    retry_after_s: float = 1.0


@dataclass
class AdmissionController:
    """Counts admitted/running jobs and sheds what does not fit."""

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    _admitted: dict[str, int] = field(default_factory=dict)
    _running: dict[str, int] = field(default_factory=dict)
    draining: bool = False

    # -- intake ---------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Admitted-but-unfinished jobs, all tenants."""
        return sum(self._admitted.values())

    def tenant_depth(self, tenant: str) -> int:
        return self._admitted.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Admit one job for ``tenant`` or raise :class:`AdmissionError`.

        The caller must pair every successful ``admit`` with exactly one
        :meth:`finish` when the job reaches a terminal state.
        """
        if self.draining:
            self._shed(tenant, "draining")
        if self.depth >= self.config.max_queue:
            self._shed(tenant, "queue_full")
        if self.tenant_depth(tenant) >= self.config.tenant_queue:
            self._shed(tenant, "tenant_queue_full")
        self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
        counter("service.admitted").inc()
        gauge("service.queue_depth").set(self.depth)

    def finish(self, tenant: str) -> None:
        """A previously admitted job reached a terminal state."""
        remaining = self._admitted.get(tenant, 0) - 1
        if remaining > 0:
            self._admitted[tenant] = remaining
        else:
            self._admitted.pop(tenant, None)
        gauge("service.queue_depth").set(self.depth)

    def _shed(self, tenant: str, reason: str) -> None:
        counter("service.shed").inc()
        counter(f"service.shed.{reason}").inc()
        retry_after = self.retry_hint()
        event(
            "service.shed", tenant=tenant, reason=reason,
            retry_after_s=retry_after, depth=self.depth,
        )
        raise AdmissionError(reason, retry_after)

    def retry_hint(self) -> float:
        """Backlog-proportional retry hint (never below the base)."""
        base = self.config.retry_after_s
        if self.config.max_queue <= 0:
            return base
        return base * max(1.0, 1.0 + self.depth / self.config.max_queue)

    # -- per-tenant concurrency ----------------------------------------------
    def acquire(self, tenant: str) -> bool:
        """Try to take a run slot for ``tenant`` (non-blocking)."""
        if self._running.get(tenant, 0) >= self.config.tenant_concurrency:
            return False
        self._running[tenant] = self._running.get(tenant, 0) + 1
        gauge("service.running").set(sum(self._running.values()))
        return True

    def release(self, tenant: str) -> None:
        remaining = self._running.get(tenant, 0) - 1
        if remaining > 0:
            self._running[tenant] = remaining
        else:
            self._running.pop(tenant, None)
        gauge("service.running").set(sum(self._running.values()))

    # -- reporting ------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "running": sum(self._running.values()),
            "per_tenant": dict(sorted(self._admitted.items())),
            "draining": self.draining,
        }
