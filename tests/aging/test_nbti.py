"""NBTI model tests (paper Eq. 1): calibration, inversion, monotonicity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.aging import NbtiModel, calibrate_prefactor
from repro.errors import AgingError
from repro.units import (
    NBTI_PREFACTOR,
    NBTI_REFERENCE_MTTF_YEARS,
    NBTI_REFERENCE_TEMP_K,
    VTH0_V,
    years_to_seconds,
)


@pytest.fixture
def model():
    return NbtiModel()


class TestEquationOne:
    def test_zero_stress_zero_shift(self, model):
        assert model.vth_shift(0.0, 350.0) == 0.0

    def test_power_law_exponent(self, model):
        """Shift scales as ST^n: 16x stress -> 2x shift at n = 1/4."""
        s1 = model.vth_shift(1e6, 350.0)
        s16 = model.vth_shift(16e6, 350.0)
        assert s16 / s1 == pytest.approx(2.0, rel=1e-9)

    def test_arrhenius_acceleration(self, model):
        """Hotter devices degrade more."""
        assert model.vth_shift(1e6, 370.0) > model.vth_shift(1e6, 330.0)

    def test_duty_scaling(self, model):
        full = model.vth_shift_at(1e7, 1.0, 350.0)
        half = model.vth_shift_at(1e7, 0.5, 350.0)
        assert half == pytest.approx(model.vth_shift(0.5e7, 350.0))
        assert half < full

    def test_negative_stress_rejected(self, model):
        with pytest.raises(AgingError):
            model.vth_shift(-1.0, 350.0)

    def test_bad_temperature_rejected(self, model):
        with pytest.raises(AgingError):
            model.vth_shift(1.0, 0.0)

    def test_bad_duty_rejected(self, model):
        with pytest.raises(AgingError):
            model.vth_shift_at(1.0, 1.5, 350.0)


class TestCalibration:
    def test_units_constant_reproduced(self):
        assert calibrate_prefactor() == pytest.approx(NBTI_PREFACTOR, rel=1e-12)

    def test_reference_point_round_trip(self, model):
        """At reference conditions the model fails at exactly 5 years."""
        mttf = model.time_to_failure_s(1.0, NBTI_REFERENCE_TEMP_K)
        assert mttf == pytest.approx(
            years_to_seconds(NBTI_REFERENCE_MTTF_YEARS), rel=1e-9
        )

    def test_failure_shift_definition(self, model):
        assert model.failure_shift_v == pytest.approx(0.1 * VTH0_V)

    def test_shift_at_failure_time_is_failure_shift(self, model):
        mttf = model.time_to_failure_s(0.4, 345.0)
        shift = model.vth_shift_at(mttf, 0.4, 345.0)
        assert shift == pytest.approx(model.failure_shift_v, rel=1e-9)


class TestTimeToFailure:
    def test_idle_pe_lives_forever(self, model):
        assert model.time_to_failure_s(0.0, 350.0) == math.inf

    def test_inverse_in_duty(self, model):
        t_full = model.time_to_failure_s(1.0, 350.0)
        t_half = model.time_to_failure_s(0.5, 350.0)
        assert t_half == pytest.approx(2 * t_full, rel=1e-9)

    def test_validation(self, model):
        with pytest.raises(AgingError):
            model.time_to_failure_s(1.2, 350.0)


class TestParameterValidation:
    def test_bad_exponent(self):
        with pytest.raises(AgingError):
            NbtiModel(time_exponent=1.5)

    def test_bad_prefactor(self):
        with pytest.raises(AgingError):
            NbtiModel(prefactor=-1)

    def test_bad_failure_fraction(self):
        with pytest.raises(AgingError):
            NbtiModel(failure_fraction=0.0)

    def test_calibrate_validation(self):
        with pytest.raises(AgingError):
            calibrate_prefactor(mttf_years=-1)


duties = st.floats(0.01, 1.0, allow_nan=False)
temps = st.floats(300.0, 400.0, allow_nan=False)


class TestMonotonicityProperties:
    @settings(max_examples=40, deadline=None)
    @given(duty=duties, t_low=temps, t_high=temps)
    def test_hotter_fails_sooner(self, duty, t_low, t_high):
        model = NbtiModel()
        if t_low > t_high:
            t_low, t_high = t_high, t_low
        assert model.time_to_failure_s(duty, t_high) <= (
            model.time_to_failure_s(duty, t_low) + 1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(d_low=duties, d_high=duties, temp=temps)
    def test_busier_fails_sooner(self, d_low, d_high, temp):
        model = NbtiModel()
        if d_low > d_high:
            d_low, d_high = d_high, d_low
        assert model.time_to_failure_s(d_high, temp) <= (
            model.time_to_failure_s(d_low, temp) + 1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(duty=duties, temp=temps, t1=st.floats(1e3, 1e9), t2=st.floats(1e3, 1e9))
    def test_shift_monotone_in_time(self, duty, temp, t1, t2):
        model = NbtiModel()
        if t1 > t2:
            t1, t2 = t2, t1
        assert model.vth_shift_at(t1, duty, temp) <= (
            model.vth_shift_at(t2, duty, temp) + 1e-12
        )
