"""Solver root-cause diagnostics: explain *why* a solve went the way it did.

Three layers, all speaking in domain terms (PEs, ops, contexts, paths)
via the :class:`~repro.milp.model.RowMeta` domain tags stamped by the
constraint builders in :mod:`repro.core.constraints`:

* :mod:`repro.explain.attribution` — on *feasible* solves, per-family
  slack histograms and the top-k binding rows (which PEs are
  stress-saturated, which paths are wire-length-critical), exposed on
  ``SolveStats.attribution`` and mirrored into solver span attrs;
* :mod:`repro.explain.iis` — on *infeasible* verdicts, deletion-filtering
  over the compiled CSR to an irreducible infeasible subsystem, with an
  independent :func:`~repro.explain.iis.verify_iis` re-check;
* :mod:`repro.explain.probe` — deterministic forced-infeasible stress
  probe (pigeonhole over the conserved total stress) used by CI and
  ``repro explain --probe-infeasible``.

Diagnostics are **opt-out**: :func:`set_explain` (or the
``REPRO_EXPLAIN`` environment variable, ``0``/``false`` to disable)
gates everything.  The attribution pass is a handful of numpy
mat-vecs per solve; IIS extraction runs only on terminal infeasible
outcomes, never on the happy path.
"""

from __future__ import annotations

import os

from repro.explain.attribution import attribute_solution, attribution_brief
from repro.explain.iis import IISMember, IISResult, find_iis, verify_iis

__all__ = [
    "attribute_solution",
    "attribution_brief",
    "explain_enabled",
    "find_iis",
    "IISMember",
    "IISResult",
    "set_explain",
    "verify_iis",
]

#: Tri-state programmatic override; ``None`` defers to the environment.
_override: bool | None = None

#: Environment switch; anything in {"0", "false", "no", "off"} disables.
ENV_VAR = "REPRO_EXPLAIN"


def set_explain(enabled: bool | None) -> None:
    """Enable/disable diagnostics programmatically (``None`` = env/default)."""
    global _override
    _override = enabled


def explain_enabled() -> bool:
    """Whether diagnostics (attribution, IIS, explain events) are active."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    return raw not in {"0", "false", "no", "off"}
