"""The :class:`Model` container of the MILP modelling layer.

A model owns variables, constraints and an (optional) objective.  The
paper's formulation (3) is a *feasibility* MILP — ``ObjFunc: Null`` — so the
objective defaults to nothing; solvers then search for any feasible point.

Models compile themselves to a sparse matrix form
(:meth:`Model.to_matrix_form`) consumed by the scipy/HiGHS backend, and
support the transformations the paper's two-step method needs:

* :meth:`relaxed` — the LP relaxation (all discrete variables made
  continuous on the same bounds), used in Step 1 / the first half of the
  two-step solve;
* :meth:`fix_variable` — pin a variable to a value (used to pre-map
  assignment variables whose LP value exceeds the 0.95 threshold, and to
  freeze critical-path operations onto their original PEs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import LinExpr, Variable, VarType
from repro.milp.status import Solution


@dataclass
class MatrixForm:
    """Sparse standard form of a model.

    ``A x (sense) b`` row-wise, with per-column bounds and integrality
    markers.  ``senses`` holds one :class:`Sense` per row.
    """

    variables: list[Variable]
    a_matrix: sparse.csr_matrix
    senses: list[Sense]
    rhs: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # 1 where the column must be integral, else 0
    objective: np.ndarray


class Model:
    """A mixed-integer linear program under construction.

    Parameters
    ----------
    name:
        Used in diagnostics only.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr.constant_expr(0.0)
        self._minimize = True
        self._fixed: dict[Variable, float] = {}

    # -- variables -----------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable."""
        var = Variable(name, lb=lb, ub=ub, vtype=vtype)
        var.index = len(self._variables)
        self._variables.append(var)
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a {0, 1} variable (the ``OP_ijk`` variables of Eq. 3)."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_continuous(self, name: str, lb: float = 0.0, ub: float = math.inf) -> Variable:
        """Create a continuous variable (the auxiliary distance variables)."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def adopt_variable(self, var: Variable) -> Variable:
        """Register an externally constructed variable with this model."""
        if var.index is not None and var.index < len(self._variables) and (
            self._variables[var.index] is var
        ):
            return var
        var.index = len(self._variables)
        self._variables.append(var)
        return var

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_binary(self) -> int:
        return sum(1 for v in self._variables if v.vtype is VarType.BINARY)

    # -- constraints -----------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (built with <=, >=, == on expressions)."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "expected a Constraint; did you compare two numbers instead of "
                "expressions?"
            )
        if name:
            constraint.name = name
        if constraint.is_trivial():
            if not constraint.trivially_satisfied():
                raise ModelError(
                    f"constraint {constraint.name or constraint!r} is trivially "
                    "infeasible"
                )
            return constraint  # satisfied constants need not be stored
        for var in constraint.lhs.variables():
            self._check_owned(var)
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Register several constraints."""
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def _check_owned(self, var: Variable) -> None:
        idx = var.index
        if idx is None or idx >= len(self._variables) or self._variables[idx] is not var:
            raise ModelError(
                f"variable {var.name!r} does not belong to model {self.name!r}"
            )

    # -- objective --------------------------------------------------------------
    def set_objective(self, expr: LinExpr | Variable | float, minimize: bool = True) -> None:
        """Set the objective.  The paper's Eq. (3) leaves this Null."""
        if isinstance(expr, Variable):
            expr = LinExpr.from_term(expr)
        elif isinstance(expr, (int, float)):
            expr = LinExpr.constant_expr(expr)
        for var in expr.variables():
            self._check_owned(var)
        self._objective = expr
        self._minimize = minimize

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def minimize(self) -> bool:
        return self._minimize

    def has_objective(self) -> bool:
        """Whether a non-constant objective was set (else: feasibility model)."""
        return not self._objective.is_constant()

    # -- transformations ----------------------------------------------------------
    def fix_variable(self, var: Variable, value: float) -> None:
        """Pin ``var`` to ``value`` by collapsing its bounds.

        Used for the paper's pre-mapping step (LP values > 0.95 become 1)
        and for freezing critical-path operations.
        """
        self._check_owned(var)
        if value < var.lb - 1e-9 or value > var.ub + 1e-9:
            raise ModelError(
                f"cannot fix {var.name!r} to {value}: outside bounds "
                f"[{var.lb}, {var.ub}]"
            )
        if var.vtype is not VarType.CONTINUOUS and abs(value - round(value)) > 1e-9:
            raise ModelError(f"cannot fix discrete {var.name!r} to fractional {value}")
        var.lb = var.ub = float(value)
        self._fixed[var] = float(value)

    @property
    def fixed_variables(self) -> dict[Variable, float]:
        return dict(self._fixed)

    def relaxed(self) -> "Model":
        """Return the LP relaxation sharing this model's Variable objects.

        Discrete domains become continuous with identical bounds.  Because
        Variable objects are shared, solutions of the relaxation index
        directly into the original variables; the relaxation records the
        original types so :meth:`restore_types` can undo it.
        """
        relaxation = Model(f"{self.name}.lp_relaxation")
        relaxation._variables = self._variables
        relaxation._constraints = self._constraints
        relaxation._objective = self._objective
        relaxation._minimize = self._minimize
        relaxation._fixed = dict(self._fixed)
        relaxation._saved_types = {  # type: ignore[attr-defined]
            v: v.vtype for v in self._variables if v.vtype is not VarType.CONTINUOUS
        }
        for var in relaxation._saved_types:  # type: ignore[attr-defined]
            var.vtype = VarType.CONTINUOUS
        return relaxation

    def restore_types(self) -> None:
        """Undo a :meth:`relaxed` transformation (no-op on a base model)."""
        saved = getattr(self, "_saved_types", None)
        if saved:
            for var, vtype in saved.items():
                var.vtype = vtype
            saved.clear()

    # -- compilation ------------------------------------------------------------
    def to_matrix_form(self) -> MatrixForm:
        """Compile to the sparse standard form consumed by backends."""
        n = len(self._variables)
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        senses: list[Sense] = []
        rhs: list[float] = []
        for row, constraint in enumerate(self._constraints):
            for var, coeff in constraint.lhs.terms.items():
                if coeff == 0.0:
                    continue
                rows.append(row)
                cols.append(var.index)  # type: ignore[arg-type]
                data.append(coeff)
            senses.append(constraint.sense)
            rhs.append(constraint.rhs)
        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n)
        )
        lower = np.array([v.lb for v in self._variables], dtype=float)
        upper = np.array([v.ub for v in self._variables], dtype=float)
        integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self._variables],
            dtype=np.int8,
        )
        objective = np.zeros(n, dtype=float)
        for var, coeff in self._objective.terms.items():
            objective[var.index] = coeff  # type: ignore[index]
        if not self._minimize:
            objective = -objective
        return MatrixForm(
            variables=list(self._variables),
            a_matrix=a_matrix,
            senses=senses,
            rhs=np.array(rhs, dtype=float),
            lower=lower,
            upper=upper,
            integrality=integrality,
            objective=objective,
        )

    # -- solving ------------------------------------------------------------------
    def solve(self, backend=None, **options) -> Solution:
        """Solve with ``backend`` (default: the scipy/HiGHS backend)."""
        if backend is None:
            from repro.milp.scipy_backend import ScipyBackend

            backend = ScipyBackend()
        solution = backend.solve(self, **options)
        if solution.status.has_solution and not self._minimize and self.has_objective():
            solution.objective = -solution.objective
        return solution

    def check_solution(self, solution: Solution, tol: float = 1e-5) -> list[Constraint]:
        """Return the constraints violated by ``solution`` (for debugging)."""
        if not solution.status.has_solution:
            raise ModelError("cannot check a solution-less result")
        return [c for c in self._constraints if not c.satisfied_by(solution.values, tol)]

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables} "
            f"(bin={self.num_binary}), cons={self.num_constraints})"
        )
