"""Table/CSV renderer tests."""

from __future__ import annotations

from repro.report import format_csv, format_mapping, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.234], ["b", 22.5]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]
        assert "1.23" in lines[2]

    def test_column_width_grows_with_content(self):
        text = format_table(["x"], [["very-long-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-cell-content")

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_precision(self):
        text = format_table(["v"], [[3.14159]], precision=4)
        assert "3.1416" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatCsv:
    def test_round_trip_values(self):
        text = format_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]


class TestFormatMapping:
    def test_keys_aligned(self):
        text = format_mapping("Summary", {"short": 1, "longer_key": 2.5})
        lines = text.splitlines()
        assert lines[0] == "Summary"
        assert lines[1] == "-------"
        assert "2.500" in text
