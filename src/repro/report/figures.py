"""ASCII renderings of the paper's figures.

* :func:`bar_chart` — grouped horizontal bars (Fig. 5: MTTF increase per
  C/F group, one bar per usage class);
* :func:`series_csv` / :func:`ascii_curve` — the Fig. 2(b) Vth-shift-vs-
  time curves;
* :func:`stress_grid` — the Fig. 2(a) accumulated-stress heat grid.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.aging.mttf import VthCurve
from repro.arch.fabric import Fabric
from repro.units import seconds_to_years


def bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    unit: str = "x",
) -> str:
    """Grouped horizontal bar chart.

    ``groups`` are the x-axis categories (e.g. C4F4..C16F16); ``series``
    maps a label (low/medium/high) to one value per group.
    """
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=1.0,
    )
    label_width = max(len(g) for g in groups) + 2
    series_width = max(len(s) for s in series) + 2
    lines: list[str] = []
    for gi, group in enumerate(groups):
        for si, (label, values) in enumerate(series.items()):
            value = values[gi]
            prefix = group.ljust(label_width) if si == 0 else " " * label_width
            if value is None:
                lines.append(f"{prefix}{label.ljust(series_width)}(n/a)")
                continue
            bar = "#" * max(1, round(width * value / peak))
            lines.append(
                f"{prefix}{label.ljust(series_width)}{bar} {value:.2f}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def ascii_curve(
    curves: Sequence[VthCurve], height: int = 16, width: int = 64
) -> str:
    """Overlayed Vth-shift-vs-time curves with the failure threshold line.

    Each curve gets a distinct marker; '=' marks the failure shift level.
    Reproduces the *shape* of Fig. 2(b): the re-mapped (lower-slope) curve
    crosses the threshold later.
    """
    if not curves:
        return "(no curves)"
    markers = "ox+*"
    t_max = max(float(c.times_s[-1]) for c in curves)
    v_max = max(
        max(float(c.shifts_v.max()) for c in curves),
        max(c.failure_shift_v for c in curves),
    )
    canvas = [[" "] * width for _ in range(height)]
    threshold_row = height - 1 - round(
        (curves[0].failure_shift_v / v_max) * (height - 1)
    )
    for x in range(width):
        canvas[threshold_row][x] = "="
    for ci, curve in enumerate(curves):
        marker = markers[ci % len(markers)]
        for t, v in zip(curve.times_s, curve.shifts_v):
            x = round((float(t) / t_max) * (width - 1)) if t_max else 0
            y = height - 1 - round((float(v) / v_max) * (height - 1))
            canvas[y][x] = marker
    lines = ["".join(row) for row in canvas]
    legend = "   ".join(
        f"{markers[i % len(markers)]} {c.label} "
        f"(MTTF {seconds_to_years(c.mttf_s):.1f}y)"
        for i, c in enumerate(curves)
    )
    lines.append(f"time -> ({seconds_to_years(t_max):.1f} years full scale)")
    lines.append(legend + "   = failure shift")
    return "\n".join(lines)


def series_csv(curves: Sequence[VthCurve]) -> str:
    """CSV of the Fig. 2(b) series (time_years, one shift column per curve)."""
    header = ["time_years"] + [c.label for c in curves]
    base = curves[0].times_s
    rows = []
    for i, t in enumerate(base):
        row = [f"{seconds_to_years(float(t)):.4f}"]
        for c in curves:
            row.append(f"{float(c.shifts_v[i]):.6f}")
        rows.append(",".join(row))
    return "\n".join([",".join(header), *rows])


def stress_grid(fabric: Fabric, accumulated: np.ndarray, cell: int = 5) -> str:
    """The Fig. 2(a) view: accumulated stress per PE as a number grid."""
    values = np.asarray(accumulated, dtype=float).reshape(fabric.rows, fabric.cols)
    lines = []
    for r in range(fabric.rows):
        lines.append(
            " ".join(f"{values[r, c]:>{cell}.1f}" for c in range(fabric.cols))
        )
    return "\n".join(lines)
