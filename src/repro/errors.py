"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type at an API boundary.  Subsystem-specific errors derive from
intermediate classes (e.g. :class:`ModelError` for MILP-modelling mistakes)
so tests can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ModelError(ReproError):
    """An MILP model was constructed or used incorrectly."""


class SolverError(ReproError):
    """A solver backend failed in a way that is not simply 'infeasible'."""


class WarmStartError(ModelError):
    """A warm-start hint is malformed (non-finite values, wrong length).

    Distinct from a merely *stale* hint — a well-formed hint that no
    longer satisfies the model validates to ``None`` and the caller falls
    back to a cold solve.  A malformed hint is a programming error at the
    call site and must not be silently dropped, let alone passed through
    to a backend.
    """


class BudgetInfeasibleError(ModelError):
    """A stress budget is violated by frozen ops alone.

    No assignment of the movable operations can repair this; Algorithm 1
    treats it as an infeasible iteration and relaxes ``ST_target``.
    """


class InfeasibleError(SolverError):
    """The model was proven infeasible (raised only when a solution is required)."""


class ArchitectureError(ReproError):
    """An invalid CGRRA architecture description or mapping."""


class MappingError(ArchitectureError):
    """An op-to-PE mapping violates fabric rules (overlap, out of bounds...)."""


class HLSError(ReproError):
    """Base class for high-level-synthesis frontend errors."""


class LexerError(HLSError):
    """Tokenisation of a mini-C source failed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, col {column}: {message}")
        self.line = line
        self.column = column


class ParseError(HLSError):
    """Parsing of a mini-C source failed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f"line {line}, col {column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class TypeCheckError(HLSError):
    """Semantic analysis of a mini-C source failed."""


class SchedulingError(HLSError):
    """A dataflow graph could not be scheduled under the given resources."""


class TimingError(ReproError):
    """Static timing analysis failed (cyclic timing graph, missing placement...)."""


class ThermalError(ReproError):
    """The thermal model received inconsistent inputs."""


class AgingError(ReproError):
    """The NBTI/MTTF model received out-of-domain parameters."""


class KernelConfigError(ReproError):
    """An unknown ``REPRO_KERNELS`` evaluation-kernel mode was requested."""


class FlowError(ReproError):
    """The end-to-end CAD flow could not produce a valid floorplan."""


class DeadlineExceededError(FlowError):
    """A wall-clock budget (:class:`repro.resilience.Deadline`) expired.

    Raised at iteration boundaries (Algorithm 1 iterations, MILP solves,
    thermal context solves) when the flow's budget is spent.  Callers with
    a fallback — e.g. Phase 2's degradation ladder — catch this and degrade
    instead of aborting.
    """

    def __init__(self, stage: str, budget_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"deadline of {budget_s:.3f}s exceeded at {stage!r} "
            f"(elapsed {elapsed_s:.3f}s)"
        )
        self.stage = stage
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class CertificationError(ReproError):
    """An independently re-checked solution failed certification.

    Raised by :mod:`repro.verify` when a solver solution (or a final
    floorplan) violates a re-derived constraint — feasibility rows,
    per-PE stress budgets, exactly-one-PE bindings, frozen-op pinning,
    or the CPD-preservation invariant.  Algorithm 1 treats it like a
    solver failure: one cold-rebuild re-solve, then the degradation
    ladder.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class SweepError(ReproError):
    """An experiment sweep entry failed permanently (after retries)."""


class ServiceError(ReproError):
    """The floorplanning service could not handle a request."""


class AdmissionError(ServiceError):
    """A request was shed at admission (queue full, draining, bad tenant).

    Carries ``retry_after_s`` so callers — and the HTTP layer's
    ``Retry-After`` header — can tell the client when another attempt is
    worth making, and ``reason`` (``"queue_full"`` / ``"draining"`` /
    ``"tenant_queue_full"``) so load shedding stays observable and typed.
    """

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(
            f"request rejected ({reason}); retry after {retry_after_s:.1f}s"
        )
        self.reason = reason
        self.retry_after_s = retry_after_s


class CacheError(ServiceError):
    """A persistent artifact-cache entry is unreadable or failed its
    integrity checks (checksum mismatch, truncation, wrong key).

    Never propagates to a client: the cache layer quarantines the entry
    and reports a miss, so the job is recomputed rather than served a
    wrong or stale answer.
    """


class BenchmarkError(ReproError):
    """A synthetic benchmark request was inconsistent or unsatisfiable."""
