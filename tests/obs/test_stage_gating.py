"""Evaluation-stage breakdowns and the bench-compare stage gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.perf import (
    BENCH_SCHEMA,
    CompareThresholds,
    compare_records,
)
from repro.obs.trace import EVALUATION_STAGES, summarize_records


def _span(path, duration_s, parent="flow"):
    return {
        "type": "span",
        "name": path.split(" > ")[-1],
        "path": path,
        "duration_s": duration_s,
        "parent": parent,
    }


def _trace_records():
    return [
        _span("flow", 2.0, parent=None),
        _span("flow > phase1 > evaluate", 0.2),
        _span("flow > phase1 > evaluate > stress", 0.05),
        _span("flow > phase2 > evaluate > stress", 0.07),
        _span("flow > phase2 > algorithm1 > sta", 0.01),
        _span("flow > phase2 > algorithm1 > iteration > sta_verify", 0.02),
        {
            "type": "metric",
            "name": "kernels.sta.seconds",
            "kind": "histogram",
            "count": 4,
            "sum": 0.012,
        },
        {
            "type": "metric",
            "name": "kernels.sta.cache_hits",
            "kind": "counter",
            "value": 3,
        },
    ]


class TestTraceEvaluationStages:
    def test_aggregates_same_leaf_across_paths(self):
        summary = summarize_records(_trace_records())
        rows = {row.path: row for row in summary.evaluation_stages()}
        assert rows["stress"].count == 2
        assert rows["stress"].total_s == pytest.approx(0.12)
        assert rows["sta"].total_s == pytest.approx(0.01)
        assert rows["sta_verify"].count == 1

    def test_canonical_order_and_omission(self):
        summary = summarize_records(_trace_records())
        names = [row.path for row in summary.evaluation_stages()]
        assert names == [
            s for s in EVALUATION_STAGES if s in set(names)
        ]
        assert "thermal" not in names  # absent stages are omitted

    def test_to_dict_carries_evaluation_stages(self):
        doc = summarize_records(_trace_records()).to_dict()
        assert doc["evaluation_stages"]["stress"]["count"] == 2

    def test_kernel_metrics_filtered(self):
        summary = summarize_records(_trace_records())
        assert set(summary.kernel_metrics()) == {
            "kernels.sta.seconds",
            "kernels.sta.cache_hits",
        }

    def test_empty_trace_has_no_evaluation_rows(self):
        summary = summarize_records([_span("flow", 1.0, parent=None)])
        assert summary.evaluation_stages() == []
        assert summary.evaluation_table() == []


def _entry(stage_s):
    stages = {
        "flow > phase1 > evaluate > stress": {
            "count": 1, "total_s": stage_s / 2,
        },
        "flow > phase2 > evaluate > stress": {
            "count": 1, "total_s": stage_s / 2,
        },
        "flow > phase2 > algorithm1 > sta": {"count": 1, "total_s": 0.001},
        "flow > phase2 > algorithm1 > milp_restamp": {
            "count": 1, "total_s": 5.0,  # not an evaluation stage
        },
    }
    return {
        "benchmark": "B1",
        "fabric": "4x4",
        "wall_s": 1.0,
        "peak_mem_mb": 10.0,
        "mttf_increase": 2.0,
        "cpd_preserved": True,
        "degradation": "none",
        "stages": stages,
        "solver": {"solves": 3, "nodes": 100, "max_mip_gap": 0.0},
    }


def _record(entry):
    return {
        "schema": 1,
        "kind": "bench_record",
        "bench_schema": BENCH_SCHEMA,
        "timestamp": "20260101T000000",
        "entries": {"B1": entry},
    }


class TestStageComparison:
    def test_stage_blowup_lands_in_stage_regressions(self):
        result = compare_records(
            _record(_entry(0.1)), _record(_entry(0.5))
        )
        assert result.ok  # headline metrics untouched
        metrics = [r.metric for r in result.stage_regressions]
        assert metrics == ["stage.stress"]
        assert result.stage_regressions[0].candidate == pytest.approx(0.5)

    def test_paths_fold_by_leaf_before_comparison(self):
        result = compare_records(_record(_entry(0.1)), _record(_entry(0.1)))
        assert not result.stage_regressions
        stress_rows = [r for r in result.stage_rows if r[1] == "stress"]
        assert len(stress_rows) == 1  # both paths folded into one row
        assert stress_rows[0][2] == pytest.approx(0.1)

    def test_absolute_floor_suppresses_jitter(self):
        # 3x relative blowup but only 20ms absolute: below stage_abs_s.
        result = compare_records(
            _record(_entry(0.01)), _record(_entry(0.03))
        )
        assert not result.stage_regressions

    def test_improvements_never_regress(self):
        result = compare_records(
            _record(_entry(0.5)), _record(_entry(0.05))
        )
        assert not result.stage_regressions

    def test_custom_stage_threshold(self):
        th = CompareThresholds(stage_rel=5.0)
        result = compare_records(
            _record(_entry(0.1)), _record(_entry(0.5)), th
        )
        assert not result.stage_regressions

    def test_non_evaluation_stages_not_gated(self):
        base, cand = _entry(0.1), _entry(0.1)
        cand["stages"]["flow > phase2 > algorithm1 > milp_restamp"] = {
            "count": 1, "total_s": 50.0,
        }
        result = compare_records(_record(base), _record(cand))
        assert not result.stage_regressions


class TestGateStagesCli:
    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return path

    @pytest.fixture
    def regressed_pair(self, tmp_path):
        base = self._write(tmp_path, "base.json", _record(_entry(0.1)))
        cand = self._write(tmp_path, "cand.json", _record(_entry(0.5)))
        return str(base), str(cand)

    def test_ungated_stage_regression_exits_zero(self, regressed_pair, capsys):
        base, cand = regressed_pair
        assert main(["bench", "compare", base, cand]) == 0
        assert "EVALUATION-STAGE REGRESSIONS" in capsys.readouterr().out

    def test_gate_stages_fails(self, regressed_pair):
        base, cand = regressed_pair
        assert main(["bench", "compare", base, cand, "--gate-stages"]) == 3

    def test_gate_stages_overrides_warn_only(self, regressed_pair):
        base, cand = regressed_pair
        code = main([
            "bench", "compare", base, cand, "--gate-stages", "--warn-only",
        ])
        assert code == 3

    def test_clean_pair_passes_under_gate(self, tmp_path, capsys):
        base = self._write(tmp_path, "b.json", _record(_entry(0.1)))
        cand = self._write(tmp_path, "c.json", _record(_entry(0.1)))
        assert main([
            "bench", "compare", str(base), str(cand), "--gate-stages",
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_stage_table_printed(self, regressed_pair, capsys):
        base, cand = regressed_pair
        main(["bench", "compare", base, cand])
        out = capsys.readouterr().out
        assert "evaluation stages" in out
        assert "stress" in out
