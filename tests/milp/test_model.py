"""Model construction, compilation and transformation tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.milp import Model, Sense, VarType, linear_sum


@pytest.fixture
def model():
    return Model("t")


class TestVariables:
    def test_indices_are_dense(self, model):
        names = [model.add_var(f"v{i}").index for i in range(5)]
        assert names == list(range(5))

    def test_binary_helper(self, model):
        b = model.add_binary("b")
        assert b.vtype is VarType.BINARY
        assert (b.lb, b.ub) == (0.0, 1.0)

    def test_counts(self, model):
        model.add_binary("b")
        model.add_continuous("c")
        assert model.num_variables == 2
        assert model.num_binary == 1

    def test_foreign_variable_rejected_in_constraint(self, model):
        other = Model("other")
        x = other.add_binary("x")
        with pytest.raises(ModelError):
            model.add_constraint(x <= 1)


class TestConstraints:
    def test_trivially_satisfied_not_stored(self, model):
        from repro.milp import LinExpr

        model.add_constraint(LinExpr.constant_expr(1.0) <= 2.0)
        assert model.num_constraints == 0

    def test_trivially_infeasible_raises(self, model):
        from repro.milp import LinExpr

        with pytest.raises(ModelError):
            model.add_constraint(LinExpr.constant_expr(3.0) <= 2.0)

    def test_non_constraint_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_constraint(True)  # type: ignore[arg-type]

    def test_named_constraint(self, model):
        x = model.add_binary("x")
        constraint = model.add_constraint(x <= 1, name="cap")
        assert constraint.name == "cap"


class TestMatrixForm:
    def test_senses_and_rhs(self, model):
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y <= 5)
        model.add_constraint(x - y >= 1)
        model.add_constraint(linear_sum([x, y]) == 4)
        form = model.to_matrix_form()
        assert form.senses == [Sense.LE, Sense.GE, Sense.EQ]
        np.testing.assert_allclose(form.rhs, [5, 1, 4])
        assert form.a_matrix.shape == (3, 2)

    def test_integrality_markers(self, model):
        model.add_binary("b")
        model.add_continuous("c")
        model.add_var("i", 0, 5, VarType.INTEGER)
        form = model.to_matrix_form()
        np.testing.assert_array_equal(form.integrality, [1, 0, 1])

    def test_objective_vector_and_maximize(self, model):
        x = model.add_continuous("x", 0, 1)
        model.set_objective(3 * x, minimize=False)
        form = model.to_matrix_form()
        # Maximisation compiles to negated minimisation.
        assert form.objective[0] == pytest.approx(-3.0)


class TestTransformations:
    def test_fix_variable(self, model):
        x = model.add_binary("x")
        model.fix_variable(x, 1.0)
        assert (x.lb, x.ub) == (1.0, 1.0)
        assert model.fixed_variables == {x: 1.0}

    def test_fix_outside_bounds_rejected(self, model):
        x = model.add_binary("x")
        with pytest.raises(ModelError):
            model.fix_variable(x, 2.0)

    def test_fix_fractional_discrete_rejected(self, model):
        x = model.add_binary("x")
        with pytest.raises(ModelError):
            model.fix_variable(x, 0.5)

    def test_relaxed_and_restore(self, model):
        b = model.add_binary("b")
        relaxed = model.relaxed()
        assert b.vtype is VarType.CONTINUOUS
        relaxed.restore_types()
        assert b.vtype is VarType.BINARY

    def test_relaxed_shares_variables(self, model):
        b = model.add_binary("b")
        relaxed = model.relaxed()
        assert relaxed.variables[0] is b
        relaxed.restore_types()


class TestSolveIntegration:
    def test_default_backend_solves(self, model):
        x = model.add_continuous("x", 0, 10)
        model.add_constraint(x >= 3)
        model.set_objective(x)
        solution = model.solve()
        assert solution.objective == pytest.approx(3.0)

    def test_maximize_objective_sign(self, model):
        x = model.add_continuous("x", 0, 10)
        model.set_objective(x, minimize=False)
        solution = model.solve()
        assert solution.objective == pytest.approx(10.0)

    def test_check_solution_finds_violations(self, model):
        from repro.milp import Solution, SolveStatus

        x = model.add_continuous("x", 0, 10)
        constraint = model.add_constraint(x <= 2, name="cap")
        fake = Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={x: 5.0})
        violated = model.check_solution(fake)
        assert violated == [constraint]

    def test_empty_model_is_optimal(self, model):
        solution = model.solve()
        assert solution.status.has_solution
        assert not math.isnan(solution.objective)
