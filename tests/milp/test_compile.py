"""Incremental compilation tests: the cached lowering, parameterized
RHS re-stamping, and warm-start hints.

The contract under test (docs/performance.md): re-stamping a parameter
on a compiled model must be observationally identical to rebuilding the
model from scratch at the new value — bit-identical matrix form — while
performing exactly one expression-tree lowering across all solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, WarmStartError
from repro.milp import (
    BranchBoundBackend,
    Model,
    ScipyBackend,
    Sense,
    SolveStatus,
    hint_vector,
    linear_sum,
)
from repro.obs import counter


def param_model(limit: float, budget: float = 6.0) -> tuple[Model, list]:
    """A small MILP with two rows bound to the ``limit`` parameter.

    One row uses the default coefficient, one a scaled coefficient, and
    one row is parameter-free — re-stamping must move exactly the first
    two RHS entries.
    """
    model = Model("param")
    x = model.add_continuous("x", 0, 10)
    y = model.add_continuous("y", 0, 10)
    b = model.add_binary("b")
    model.declare_parameter("limit", limit)
    model.add_constraint(x + y <= limit, parameter="limit")
    model.add_constraint(
        x - y >= -2.0 * limit, parameter="limit", parameter_coeff=-2.0
    )
    model.add_constraint(x + 2 * y + b <= budget)
    model.set_objective(-x - 2 * y - b)
    return model, [x, y, b]


def assert_forms_identical(a, b):
    """Bit-identical MatrixForm comparison (no tolerances)."""
    am, bm = a.a_matrix.tocsr(), b.a_matrix.tocsr()
    np.testing.assert_array_equal(am.data, bm.data)
    np.testing.assert_array_equal(am.indices, bm.indices)
    np.testing.assert_array_equal(am.indptr, bm.indptr)
    assert a.senses == b.senses
    np.testing.assert_array_equal(a.rhs, b.rhs)
    np.testing.assert_array_equal(a.lower, b.lower)
    np.testing.assert_array_equal(a.upper, b.upper)
    np.testing.assert_array_equal(a.integrality, b.integrality)
    np.testing.assert_array_equal(a.objective, b.objective)


class TestCompileCache:
    def test_lowering_happens_once(self):
        model, _ = param_model(5.0)
        lowerings = counter("milp.lowerings")
        hits = counter("milp.lowering_cache_hits")
        before = (lowerings.value, hits.value)
        model.to_matrix_form()
        model.to_matrix_form()
        model.to_matrix_form()
        assert lowerings.value == before[0] + 1
        assert hits.value == before[1] + 2

    def test_structure_change_invalidates(self):
        model, (x, _, _) = param_model(5.0)
        lowerings = counter("milp.lowerings")
        model.to_matrix_form()
        before = lowerings.value
        model.add_constraint(x >= 1)
        form = model.to_matrix_form()
        assert lowerings.value == before + 1
        assert form.a_matrix.shape[0] == 4

    def test_relaxation_shares_cache(self):
        model, _ = param_model(5.0)
        lowerings = counter("milp.lowerings")
        before = lowerings.value
        model.to_matrix_form()
        relaxed = model.relaxed()
        form = relaxed.to_matrix_form()
        relaxed.restore_types()
        # The relaxation re-reads integrality but reuses the lowering.
        assert lowerings.value == before + 1
        np.testing.assert_array_equal(form.integrality, [0, 0, 0])

    def test_fix_and_unfix_without_recompile(self):
        model, (_, _, b) = param_model(5.0)
        lowerings = counter("milp.lowerings")
        model.to_matrix_form()
        before = lowerings.value
        model.fix_variable(b, 1.0)
        fixed = model.to_matrix_form()
        assert (fixed.lower[2], fixed.upper[2]) == (1.0, 1.0)
        model.unfix_all()
        reopened = model.to_matrix_form()
        assert (reopened.lower[2], reopened.upper[2]) == (0.0, 1.0)
        assert model.fixed_variables == {}
        assert lowerings.value == before


class TestRestampVsRebuild:
    @pytest.mark.parametrize("new_limit", [2.0, 7.5, 0.0])
    def test_restamp_matches_fresh_build(self, new_limit):
        model, _ = param_model(5.0)
        model.to_matrix_form()  # populate the cache at the old value
        model.set_parameter("limit", new_limit)
        fresh, _ = param_model(new_limit)
        assert_forms_identical(model.to_matrix_form(), fresh.to_matrix_form())

    def test_restamp_moves_only_bound_rows(self):
        model, _ = param_model(5.0, budget=6.0)
        base = model.to_matrix_form()
        model.set_parameter("limit", 9.0)
        form = model.to_matrix_form()
        assert form.senses == [Sense.LE, Sense.GE, Sense.LE]
        np.testing.assert_array_equal(form.rhs, [9.0, -18.0, 6.0])
        np.testing.assert_array_equal(base.rhs, [5.0, -10.0, 6.0])

    def test_restamp_reuses_lowering(self):
        model, _ = param_model(5.0)
        lowerings = counter("milp.lowerings")
        restamps = counter("milp.rhs_restamps")
        model.to_matrix_form()
        before = (lowerings.value, restamps.value)
        model.set_parameter("limit", 3.0)
        model.to_matrix_form()
        assert lowerings.value == before[0]
        assert restamps.value == before[1] + 1

    def test_check_solution_follows_restamp(self):
        model, variables = param_model(5.0)
        x, y, b = variables
        solution = model.solve()
        assert not model.check_solution(solution)
        # Tighten the parameter under the solution's feet: the stored
        # constraints must report the violation (restamping edits the
        # constraint constants, not just the compiled RHS).
        model.set_parameter("limit", 0.5)
        assert model.check_solution(solution)

    def test_solve_tracks_parameter(self):
        model, _ = param_model(5.0)
        loose = model.solve()
        model.set_parameter("limit", 1.0)
        tight = model.solve()
        assert tight.objective > loose.objective  # minimisation: worse
        model.set_parameter("limit", 5.0)
        again = model.solve()
        assert again.objective == pytest.approx(loose.objective)

    def test_undeclared_parameter_rejected(self):
        model, _ = param_model(5.0)
        with pytest.raises(ModelError):
            model.set_parameter("nope", 1.0)
        with pytest.raises(ModelError):
            model.parameter("nope")

    def test_redeclare_updates_value(self):
        model, _ = param_model(5.0)
        model.declare_parameter("limit", 4.0)
        assert model.parameter("limit") == 4.0
        assert model.parameters == {"limit": 4.0}


def warm_model() -> tuple[Model, list]:
    """A tiny knapsack with a unique optimum (pick x2 and x3 -> -7)."""
    model = Model("warm")
    xs = [model.add_binary(f"x{i}") for i in range(4)]
    model.add_constraint(linear_sum(xs) <= 2)
    model.set_objective(-(xs[0] + 2 * xs[1] + 3 * xs[2] + 4 * xs[3]))
    return model, xs


class TestHintVector:
    def test_valid_hint_snaps_discrete(self):
        model, xs = warm_model()
        form = model.to_matrix_form()
        x = hint_vector(form, {xs[0]: 0.0, xs[1]: 1e-6, xs[2]: 1.0, xs[3]: 1.0})
        np.testing.assert_array_equal(x, [0, 0, 1, 1])

    def test_partial_coverage_rejected(self):
        model, xs = warm_model()
        form = model.to_matrix_form()
        assert hint_vector(form, {xs[0]: 1.0}) is None

    def test_fractional_discrete_rejected(self):
        model, xs = warm_model()
        form = model.to_matrix_form()
        values = {v: 0.0 for v in xs}
        values[xs[0]] = 0.4
        assert hint_vector(form, values) is None

    def test_row_violation_rejected(self):
        model, xs = warm_model()
        form = model.to_matrix_form()
        assert hint_vector(form, {v: 1.0 for v in xs}) is None

    def test_dense_hint_accepted(self):
        model, _ = warm_model()
        form = model.to_matrix_form()
        x = hint_vector(form, [0.0, 0.0, 1.0, 1.0])
        np.testing.assert_array_equal(x, [0, 0, 1, 1])

    def test_nan_hint_raises_not_validates(self):
        """NaN compares false against every bound: without the explicit
        finiteness check a poisoned hint would sail through validation."""
        model, xs = warm_model()
        form = model.to_matrix_form()
        values = {v: 0.0 for v in xs}
        values[xs[2]] = float("nan")
        with pytest.raises(WarmStartError, match="non-finite"):
            hint_vector(form, values)

    def test_inf_hint_raises(self):
        model, _ = warm_model()
        form = model.to_matrix_form()
        with pytest.raises(WarmStartError, match="x1"):
            hint_vector(form, [0.0, float("inf"), 0.0, 0.0])

    def test_wrong_length_dense_hint_raises(self):
        model, _ = warm_model()
        form = model.to_matrix_form()
        with pytest.raises(WarmStartError, match="3 entries"):
            hint_vector(form, [0.0, 1.0, 1.0])

    def test_warm_start_error_is_a_model_error(self):
        # Callers catching ModelError keep catching hint problems.
        assert issubclass(WarmStartError, ModelError)


class TestWarmStart:
    @pytest.fixture(params=["bb", "scipy"])
    def backend(self, request):
        if request.param == "scipy":
            pytest.importorskip("scipy")
            return ScipyBackend()
        return BranchBoundBackend()

    def test_warm_objective_equals_cold(self, backend):
        model, _ = warm_model()
        cold = backend.solve(model)
        warm = backend.solve(model, warm_start=dict(cold.values))
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.values == cold.values
        assert warm.stats.warm_started
        assert warm.stats.hint_objective == pytest.approx(cold.objective)

    def test_stale_hint_falls_back_to_cold(self, backend):
        model, xs = warm_model()
        misses = counter("milp.warm_start_misses")
        before = misses.value
        cold = backend.solve(model)
        warm = backend.solve(model, warm_start={v: 1.0 for v in xs})
        assert misses.value == before + 1
        assert not warm.stats.warm_started
        assert warm.objective == pytest.approx(cold.objective)

    def test_bb_warm_start_prunes(self):
        model, _ = warm_model()
        backend = BranchBoundBackend()
        hits = counter("milp.warm_start_hits")
        cold = backend.solve(model)
        before = hits.value
        warm = backend.solve(model, warm_start=dict(cold.values))
        assert hits.value == before + 1
        # Seeding the incumbent at the optimum can only shrink the tree.
        assert warm.stats.nodes <= cold.stats.nodes

    def test_scipy_feasibility_shortcut(self):
        pytest.importorskip("scipy")
        model, xs = warm_model()
        model.set_objective(0.0)  # Eq. (3) style: pure feasibility
        backend = ScipyBackend()
        shortcuts = counter("milp.warm_start_shortcuts")
        values = {v: 0.0 for v in xs}
        before = shortcuts.value
        solution = backend.solve(model, warm_start=values)
        assert shortcuts.value == before + 1
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.values == values
        assert solution.stats.warm_started
