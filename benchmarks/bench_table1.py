"""Table I regeneration benchmark (experiment T1 in DESIGN.md).

One benchmark per suite entry and re-mapping mode: runs the full flow
(Phase 1 + Phase 2) and records the MTTF increase next to the paper's
published value.  The *shape* assertions (gain >= 1, CPD preserved,
Rotate competitive with Freeze) are hard checks; absolute agreement with
the paper is recorded, not asserted (our substrate is a simulator, not
the authors' Renesas testbed — see EXPERIMENTS.md).

Run::

    pytest benchmarks/bench_table1.py --benchmark-only
    REPRO_BENCH_SCALE=paper pytest benchmarks/bench_table1.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SMOKE_BENCHMARKS, bench_flow, solver_extra_info


@pytest.mark.parametrize("name", SMOKE_BENCHMARKS)
@pytest.mark.parametrize("mode", ["freeze", "rotate"])
def test_table1_entry(benchmark, built_benchmarks, name, mode):
    entry, design, fabric = built_benchmarks[name]
    flow = bench_flow(mode)

    result = benchmark.pedantic(
        flow.run, args=(design, fabric), rounds=1, iterations=1
    )

    assert result.mttf_increase >= 1.0
    assert result.cpd_preserved, "the paper's no-delay-degradation guarantee"
    benchmark.extra_info.update(
        {
            "benchmark": entry.name,
            "mode": mode,
            "contexts": entry.num_contexts,
            "fabric": f"{entry.fabric_dim}x{entry.fabric_dim}",
            "pe_count": entry.pe_count,
            "usage_class": entry.usage_class,
            "mttf_increase": round(result.mttf_increase, 3),
            "paper_reference": (
                entry.freeze_ref if mode == "freeze" else entry.rotate_ref
            ),
            "fell_back": result.remap.fell_back,
            "iterations": result.remap.iterations,
            "original_cpd_ns": round(result.remap.original_cpd_ns, 3),
            "final_cpd_ns": round(result.remap.final_cpd_ns, 3),
            **solver_extra_info(result),
        }
    )
