"""Ablation A2: >0.95 threshold fixing vs randomized rounding.

The paper: "we did try other well-known approaches such as randomized
rounding, but they did not work as well" (Section V-B Step 1).  This
ablation runs both strategies over a sweep of stress budgets and compares
success rates and solve times.  Randomized rounding can pre-map two ops of
one context onto the same PE (an immediately infeasible residue), which is
exactly the failure mode that makes it "not work as well".

Run::

    pytest benchmarks/bench_ablation_rounding.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_entry
from repro.aging import compute_stress_map
from repro.benchgen.synth import build_benchmark
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    solve_remap,
)
from repro.place import place_baseline
from repro.timing import analyze, filter_paths

BUDGET_FACTORS = (0.70, 0.80, 0.90, 1.00)


@pytest.fixture(scope="module")
def problem():
    entry = scaled_entry("B10")
    design, fabric = build_benchmark(entry.spec())
    floorplan = place_baseline(design, fabric)
    stress = compute_stress_map(design, floorplan)
    report = analyze(design, floorplan)
    monitored = filter_paths(design, floorplan).non_critical
    frozen = FrozenPlan(positions={}, orientation_of_context={})
    candidates = default_candidates(design, floorplan, frozen, fabric, None)
    return design, fabric, frozen, candidates, monitored, report.cpd_ns, stress


@pytest.mark.parametrize("rounding", ["threshold", "randomized"])
def test_rounding_strategy_sweep(benchmark, problem, rounding):
    design, fabric, frozen, candidates, monitored, cpd, stress = problem
    config = RemapConfig(rounding=rounding, time_limit_s=20, seed=11)

    def sweep():
        outcomes = []
        for factor in BUDGET_FACTORS:
            model, variables, _ = build_remap_model(
                design, fabric, frozen, candidates, monitored, cpd,
                st_target_ns=factor * stress.max_accumulated_ns,
            )
            outcomes.append(solve_remap(model, variables, config))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    successes = sum(1 for o in outcomes if o.feasible)
    # The paper's strategy must succeed on the loose budgets at least.
    if rounding == "threshold":
        assert outcomes[-1].feasible, "threshold fixing failed at ST_up"
    benchmark.extra_info.update(
        {
            "rounding": rounding,
            "budgets": list(BUDGET_FACTORS),
            "successes": successes,
            "per_budget": [
                {
                    "factor": factor,
                    "feasible": outcome.feasible,
                    "fixed_fraction": outcome.stats.get("fixed_fraction"),
                }
                for factor, outcome in zip(BUDGET_FACTORS, outcomes)
            ],
        }
    )
