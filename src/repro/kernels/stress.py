"""Batched stress-map assembly (scatter-add over index arrays).

The scalar path (:func:`repro.aging.stress.compute_stress_map`) loops
every op in Python: two dict lookups, a float compare and an in-place
``+=`` per op per candidate floorplan.  This kernel lowers the design
once into ``(context, stress)`` arrays in ``design.ops`` iteration
order, then assembles the whole ``(contexts, num_pes)`` map with a
single ``np.add.at`` scatter — which applies its updates sequentially
in index order, so repeated deposits into one (context, PE) cell sum in
exactly the scalar loop's order (bit-identical accumulation).

Error parity: the scalar loop raises on the *first* offending op in
iteration order, interleaving the stress-exceeds-clock check with the
unplaced-op check.  The lowering records whether any op violates the
(floorplan-independent) stress bound; if so — or if any op is missing
from the floorplan — the kernel declines (returns ``None``) and the
dispatcher re-runs the scalar loop, reproducing the exact scalar error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.context import Floorplan
from repro.hls.allocate import MappedDesign
from repro.kernels import kernel_timer, note_lowering

_LOWERING_ATTR = "_kernels_stress_lowering"


@dataclass
class StressLowering:
    """Structure-of-arrays form of a design's per-op stress deposits."""

    op_ids: list[int]  # design.ops iteration order
    ctx: np.ndarray  # (n,) context per op
    stress: np.ndarray  # (n,) stress_ns per op
    #: True when some op's stress exceeds the clock period — the kernel
    #: declines and the scalar loop raises its exact in-order error.
    has_stress_violation: bool
    structure_key: tuple[int, int, float]


def _structure_key(design: MappedDesign) -> tuple[int, int, float]:
    return (len(design.ops), design.num_contexts, design.clock_period_ns)


def lower_design(design: MappedDesign) -> StressLowering:
    """The (cached) stress lowering of one design."""
    cached: StressLowering | None = getattr(design, _LOWERING_ATTR, None)
    if cached is not None and cached.structure_key == _structure_key(design):
        note_lowering("stress", hit=True)
        return cached
    note_lowering("stress", hit=False)
    op_ids = list(design.ops)
    ctx = np.array([design.ops[op].context for op in op_ids], dtype=np.intp)
    stress = np.array(
        [design.ops[op].stress_ns for op in op_ids], dtype=float
    )
    has_violation = bool(
        stress.size and float(stress.max()) > design.clock_period_ns + 1e-9
    )
    lowering = StressLowering(
        op_ids=op_ids,
        ctx=ctx,
        stress=stress,
        has_stress_violation=has_violation,
        structure_key=_structure_key(design),
    )
    try:
        setattr(design, _LOWERING_ATTR, lowering)
    except AttributeError:  # pragma: no cover - slotted/frozen designs
        pass
    return lowering


def per_context_stress(
    design: MappedDesign, floorplan: Floorplan
) -> np.ndarray | None:
    """The ``(contexts, num_pes)`` stress map, or ``None`` to decline.

    Declines (for exact scalar error parity) when the design carries a
    stress-exceeds-clock violation or the floorplan misses an op.
    """
    lowering = lower_design(design)
    if lowering.has_stress_violation:
        return None
    with kernel_timer("stress"):
        pe_of = floorplan.pe_of
        try:
            pe = np.fromiter(
                (pe_of[op] for op in lowering.op_ids),
                dtype=np.intp,
                count=len(lowering.op_ids),
            )
        except KeyError:
            return None
        per_context = np.zeros(
            (design.num_contexts, floorplan.fabric.num_pes), dtype=float
        )
        np.add.at(per_context, (lowering.ctx, pe), lowering.stress)
        return per_context
