"""A pure-Python branch-and-bound MILP backend.

This backend exists for three reasons:

* it removes the hard dependency of the core algorithms on any one solver
  (the paper's flow treats the solver as a pluggable component: CPLEX there,
  HiGHS here);
* it is small enough to be read and tested exhaustively, so it serves as an
  executable specification that the fast backend is checked against in the
  test suite;
* it exposes node counts (via ``Solution.stats.nodes``), which the
  two-step-relaxation ablation (``benchmarks/bench_ablation_twostep.py``)
  uses to show *why* the paper's LP→ILP pre-mapping is necessary.

The implementation is classic best-bound branch and bound with LP
relaxations solved by HiGHS (``scipy.optimize.linprog``), most-fractional
branching, and simple bound-based pruning.  It is intended for models up to
a few hundred discrete variables.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.explain import explain_enabled
from repro.milp.model import MatrixForm, Model, hint_vector
from repro.milp.scipy_backend import attach_attribution
from repro.milp.status import Solution, SolveStatus
from repro.obs import counter, get_logger, span
from repro.obs.solverstats import (
    SolveProgress,
    SolveStats,
    progress_enabled,
    relative_gap,
)
from repro.portfolio.cancel import current_cancel_token
from repro.resilience.deadline import current_deadline
from repro.resilience.faults import inject_solver_fault

_INTEGRALITY_TOL = 1e-6

_log = get_logger("milp.branch_bound")


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its relaxation bound."""

    bound: float
    tiebreak: int = field(compare=True)
    lower: np.ndarray = field(compare=False, default=None)  # type: ignore[assignment]
    upper: np.ndarray = field(compare=False, default=None)  # type: ignore[assignment]


class BranchBoundBackend:
    """Best-bound branch and bound over HiGHS LP relaxations.

    Parameters
    ----------
    max_nodes:
        Abort (returning the incumbent, if any) after this many nodes.
    time_limit:
        Wall-clock limit in seconds.
    """

    def __init__(self, max_nodes: int = 200_000, time_limit: float | None = None):
        self.max_nodes = max_nodes
        self.time_limit = time_limit

    # -- LP relaxation -------------------------------------------------------
    @staticmethod
    def _solve_relaxation(
        form: MatrixForm, lower: np.ndarray, upper: np.ndarray
    ):
        """Solve the LP relaxation on the given bound box.

        Returns ``(objective, x)`` or ``None`` when infeasible.  The
        constraint split is cached on ``form``, so the per-node cost is
        one linprog call, not a fresh matrix assembly.
        """
        a_ub, b_ub, a_eq, b_eq = form.ub_eq_split()
        kwargs = {}
        if a_ub is not None:
            kwargs["A_ub"] = a_ub
            kwargs["b_ub"] = b_ub
        if a_eq is not None:
            kwargs["A_eq"] = a_eq
            kwargs["b_eq"] = b_eq
        result = linprog(
            c=form.objective,
            bounds=np.column_stack([lower, upper]),
            method="highs",
            **kwargs,
        )
        if result.status == 2:  # infeasible
            return None
        if result.status != 0:
            raise SolverError(f"LP relaxation failed: {result.message}")
        return float(result.fun), result.x

    # -- main loop --------------------------------------------------------------
    def solve(self, model: Model, **options) -> Solution:
        """Solve ``model`` to proven optimality (subject to node/time limits).

        ``options["warm_start"]`` may carry an incumbent hint (a
        ``{Variable: value}`` mapping): when it validates against the
        model, it seeds the incumbent and upper bound before the first
        node, so bound-based pruning engages from node 1 instead of after
        the first integral leaf is found.
        """
        stats = SolveStats(backend="branch_bound", kind="milp")
        with span(
            "solver", backend="branch_bound", kind="milp", model=model.name
        ) as solver_span:
            solution = self._solve(model, solver_span, stats, **options)
            if solution.stats is None:
                stats.elapsed_s = solver_span.duration_s
                solution.stats = stats
            solver_span.set(
                status=solution.status.value, **solution.stats.span_attrs()
            )
        counter("milp.bb.solves").inc()
        counter("milp.bb.nodes_explored").inc(solution.stats.nodes)
        _log.debug(
            "branch-and-bound %s: %d nodes, status %s in %.3fs",
            model.name, solution.stats.nodes, solution.status.value,
            solution.solve_seconds,
        )
        return solution

    def _solve(
        self, model: Model, solver_span, stats: SolveStats, **options
    ) -> Solution:
        deadline = current_deadline()
        deadline.check(f"branch_bound:{model.name}")
        injected = inject_solver_fault(model.name)
        if injected is not None:
            stats.limit_reason = "fault_injected"
            return injected
        form = model.to_matrix_form()
        n = len(form.variables)
        time_limit = deadline.cap(options.get("time_limit", self.time_limit))
        max_nodes = options.get("max_nodes", self.max_nodes)

        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL, objective=0.0, values={},
            )

        discrete = np.flatnonzero(form.integrality)
        tiebreak = itertools.count()
        progress = (
            SolveProgress(f"bb {model.name}") if progress_enabled() else None
        )

        root = self._solve_relaxation(form, form.lower, form.upper)
        if root is None:
            return Solution(
                status=SolveStatus.INFEASIBLE,
                solve_seconds=solver_span.duration_s,
            )
        root_bound, _ = root
        stats.lp_objective = root_bound
        stats.sample(solver_span.duration_s, 0, None, root_bound)

        heap: list[_Node] = [
            _Node(root_bound, next(tiebreak), form.lower.copy(), form.upper.copy())
        ]
        best_obj = math.inf
        best_x: np.ndarray | None = None
        hint = options.get("warm_start")
        if hint:
            x0 = hint_vector(form, hint)
            if x0 is None:
                counter("milp.warm_start_misses").inc()
            else:
                # Seed the incumbent: every node whose relaxation bound
                # cannot beat the hint is pruned without branching.
                best_obj = float(form.objective @ x0)
                best_x = x0
                stats.warm_started = True
                stats.hint_objective = best_obj
                stats.sample(solver_span.duration_s, 0, best_obj, root_bound)
                counter("milp.warm_start_hits").inc()
        #: Tightest dual bound proven so far: the minimum over open nodes.
        global_bound = root_bound
        proven = True
        token = current_cancel_token()

        try:
            while heap:
                if token.cancelled:
                    # Cooperative cancellation (a portfolio race was
                    # decided elsewhere): wind down with the incumbent so
                    # the loser's partial stats survive into the race
                    # record.  Checked every node expansion — one node LP
                    # bounds the cancellation latency.
                    proven = False
                    stats.limit_reason = "cancelled"
                    break
                if stats.nodes >= max_nodes:
                    proven = False
                    stats.limit_reason = "node_limit"
                    break
                if (
                    time_limit is not None
                    and solver_span.duration_s > time_limit
                ):
                    proven = False
                    stats.limit_reason = "time_limit"
                    break
                if deadline.expired:
                    proven = False
                    stats.limit_reason = "deadline"
                    break
                node = heapq.heappop(heap)
                global_bound = node.bound
                if node.bound >= best_obj - 1e-9 and best_x is not None:
                    continue  # cannot improve on the incumbent
                stats.nodes += 1
                if progress is not None:
                    progress.update(
                        solver_span.duration_s,
                        stats.nodes,
                        best_obj if best_x is not None else None,
                        global_bound,
                    )
                try:
                    relaxed = self._solve_relaxation(form, node.lower, node.upper)
                except SolverError:
                    # A node LP blew up mid-search.  With an incumbent in
                    # hand the search degrades to "best found so far" (the
                    # ladder's incumbent rung); without one the error
                    # propagates.
                    if best_x is None:
                        raise
                    counter("milp.bb.incumbent_recoveries").inc()
                    proven = False
                    stats.limit_reason = "solver_error"
                    break
                if relaxed is None:
                    continue
                bound, x = relaxed
                if bound >= best_obj - 1e-9 and best_x is not None:
                    continue

                fractional = [
                    (abs(x[j] - round(x[j])), j)
                    for j in discrete
                    if abs(x[j] - round(x[j])) > _INTEGRALITY_TOL
                ]
                if not fractional:
                    if bound < best_obj - 1e-9:
                        best_obj = bound
                        best_x = x.copy()
                        stats.sample(
                            solver_span.duration_s, stats.nodes,
                            best_obj, global_bound,
                        )
                    continue

                # Branch on the most fractional variable.
                _, j = max(fractional)
                floor_val = math.floor(x[j])
                down_lower, down_upper = node.lower.copy(), node.upper.copy()
                down_upper[j] = floor_val
                up_lower, up_upper = node.lower.copy(), node.upper.copy()
                up_lower[j] = floor_val + 1
                for lo, hi in ((down_lower, down_upper), (up_lower, up_upper)):
                    if lo[j] <= hi[j]:
                        heapq.heappush(heap, _Node(bound, next(tiebreak), lo, hi))
        finally:
            if progress is not None:
                progress.close()

        elapsed = solver_span.duration_s
        stats.elapsed_s = elapsed
        if best_x is None:
            status = SolveStatus.INFEASIBLE if proven else SolveStatus.ERROR
            message = "" if proven else "node/time limit reached without incumbent"
            return Solution(status=status, solve_seconds=elapsed, message=message)

        # Snap near-integral values exactly.
        for j in discrete:
            best_x[j] = round(best_x[j])
        if explain_enabled():
            attach_attribution(stats, form, best_x, model.row_metadata())
        values = {var: float(best_x[i]) for i, var in enumerate(form.variables)}
        status = SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE
        objective = float(form.objective @ best_x)
        stats.incumbent = objective
        # Proven optimality closes the gap by definition; otherwise the
        # tightest open-node bound certifies the remaining gap.
        stats.best_bound = objective if proven else min(
            global_bound, objective
        )
        stats.mip_gap = (
            0.0 if proven else relative_gap(objective, stats.best_bound)
        )
        stats.sample(elapsed, stats.nodes, objective, stats.best_bound)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_seconds=elapsed,
            message=f"nodes={stats.nodes}",
        )
