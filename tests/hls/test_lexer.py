"""Tokeniser tests."""

from __future__ import annotations

import pytest

from repro.errors import LexerError
from repro.hls import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int foo short bar2 in out")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD, TokenKind.IDENT,
            TokenKind.KEYWORD, TokenKind.IDENT,
            TokenKind.KEYWORD, TokenKind.KEYWORD,
        ]

    def test_numbers_decimal_and_hex(self):
        assert texts("42 0x1F 0") == ["42", "0x1F", "0"]
        assert int(tokenize("0x1F")[0].text, 0) == 31

    def test_number_with_trailing_letter_rejected(self):
        with pytest.raises(LexerError):
            tokenize("42abc")

    def test_malformed_hex_rejected(self):
        with pytest.raises(LexerError):
            tokenize("0x")

    def test_underscore_identifier(self):
        assert texts("_tmp x_1") == ["_tmp", "x_1"]


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a <<= b << c <= d < e") == [
            "a", "<<=", "b", "<<", "c", "<=", "d", "<", "e"
        ]

    def test_compound_assignment_ops(self):
        assert texts("+= -= *= /= %= &= |= ^=") == [
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="
        ]

    def test_increment_decrement(self):
        assert texts("i++ --j") == ["i", "++", "--", "j"]

    def test_punctuation(self):
        assert kinds("(){}[];,") == [TokenKind.PUNCT] * 8

    def test_ternary(self):
        assert texts("a ? b : c") == ["a", "?", "b", ":", "c"]


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* never ends")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a $ b")
        assert excinfo.value.column == 3

    def test_token_helpers(self):
        token = tokenize("int")[0]
        assert token.is_keyword("int", "short")
        assert not token.is_op("+")
        assert not token.is_punct(";")
