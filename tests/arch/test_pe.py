"""PE-cell tests."""

from __future__ import annotations

import pytest

from repro.arch import ALU_UNIT, DMU_UNIT, OpKind, PECell, UnitKind
from repro.errors import ArchitectureError
from repro.units import CLOCK_PERIOD_NS


@pytest.fixture
def pe():
    return PECell(index=5, row=1, col=1)


class TestFunctionalUnits:
    def test_unit_selection(self, pe):
        assert pe.unit_for(OpKind.ADD) is ALU_UNIT
        assert pe.unit_for(OpKind.MUL) is DMU_UNIT

    def test_pseudo_op_rejected(self, pe):
        with pytest.raises(ArchitectureError):
            pe.unit_for(OpKind.INPUT)

    def test_unit_stress_rates(self):
        assert ALU_UNIT.stress_rate == pytest.approx(0.87 / CLOCK_PERIOD_NS)
        assert DMU_UNIT.stress_rate == pytest.approx(3.14 / CLOCK_PERIOD_NS)
        assert ALU_UNIT.kind is UnitKind.ALU


class TestDelaysAndStress:
    def test_delay_matches_characterisation(self, pe):
        assert pe.delay_for(OpKind.ADD) == pytest.approx(0.87)

    def test_stress_equals_active_time(self, pe):
        """Stress per cycle = the unit's active time = its delay."""
        assert pe.stress_for(OpKind.MUL) == pytest.approx(3.14)
        assert pe.stress_for(OpKind.MUL, 8) < pe.stress_for(OpKind.MUL, 32)

    def test_position(self, pe):
        assert pe.position == (1, 1)
        assert "PE5" in repr(pe)
