"""The Phase 2 graceful-degradation ladder.

When the re-mapping MILP cannot deliver — solver crash, timeout without an
incumbent, or the flow's wall-clock budget expiring mid-loop — Algorithm 1
does not abort.  It walks a ladder of progressively cheaper floorplans:

``none``
    The MILP produced a proven (or gap-certified) floorplan — no
    degradation.
``incumbent``
    A solver limit was hit but a feasible incumbent existed (HiGHS' or the
    branch-and-bound backend's best-so-far); the floorplan still passed
    the full STA gate, only optimality is unproven.
``greedy``
    The solver failed outright; :func:`greedy_stress_level_remap`
    stress-levels the movable ops with a pure-Python verified swap
    descent whose every move passed the STA gate.
``original``
    Nothing better verified; the original floorplan is kept (the paper's
    unconditional no-delay-degradation fallback, MTTF increase 1.0x).

Every level is recorded on ``RemapResult.degradation`` and surfaced in
``FlowResult.summary()`` and traces, so a degraded Table I entry is
visible as such instead of silently looking like a weak result.
"""

from __future__ import annotations

from typing import Mapping

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.hls.allocate import MappedDesign
from repro.obs import counter, get_logger, span

_log = get_logger("resilience.degrade")

#: Ladder levels, best to worst.
DEGRADATION_LEVELS = ("none", "incumbent", "greedy", "original")


def worse_level(a: str, b: str) -> str:
    """The worse (higher-rung) of two degradation levels."""
    return max(a, b, key=DEGRADATION_LEVELS.index)


#: CPD comparisons in the greedy rung use this guard band (ns).
_CPD_EPS = 1e-6

#: Per-improvement-move cap on target PEs tried (each trial is one STA).
_TRIALS_PER_OP = 8


def greedy_stress_level_remap(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    frozen_positions: Mapping[int, int],
    max_moves: int | None = None,
    graphs=None,
) -> Floorplan | None:
    """Solver-free stress levelling: the ladder's ``greedy`` rung.

    Verified steepest-descent: repeatedly take the PE with the highest
    accumulated stress and try to move (or swap) one of its ops to a
    cooler PE in the same context.  A move is kept only when a full STA
    pass confirms the CPD did not grow *and* both touched PEs end up
    strictly below the hot PE's previous accumulated stress — the sorted
    stress vector then decreases lexicographically, so the descent cannot
    cycle and every returned floorplan is CPD-preserving by construction.
    Frozen (critical-path) ops never move.

    ``max_moves`` caps accepted moves (default ``8 *`` contexts);
    ``graphs`` forwards prebuilt timing graphs to avoid rebuilding them
    per STA trial.  Returns ``None`` when no single verified improvement
    exists — the caller then falls through to the ``original`` rung.
    """
    from repro.aging.stress import compute_stress_map
    from repro.timing.sta import analyze

    with span("greedy_fallback_remap") as fb_span:
        plan = original.with_bindings({})
        base = analyze(design, plan, graphs)
        cpd_limit = base.cpd_ns + _CPD_EPS
        acc = [float(v) for v in compute_stress_map(design, plan).accumulated_ns]
        frozen = set(frozen_positions)
        budget = max_moves if max_moves is not None else 8 * design.num_contexts
        moves = 0
        blocked: set[int] = set()
        while moves < budget:
            hot = max(
                (k for k in range(fabric.num_pes) if k not in blocked),
                key=lambda k: (acc[k], -k),
                default=None,
            )
            if hot is None or acc[hot] <= 0.0:
                break
            if _improve_hot_pe(
                design, plan, fabric, hot, acc, frozen, cpd_limit, graphs
            ):
                moves += 1
                blocked.clear()
            else:
                blocked.add(hot)
        if moves == 0:
            counter("degrade.greedy_dead_ends").inc()
            _log.warning(
                "greedy fallback: no CPD-preserving levelling move exists"
            )
            return None
        fb_span.set(moves=moves)
        _log.debug("greedy fallback: %d verified levelling move(s)", moves)
        return plan


def _improve_hot_pe(
    design: MappedDesign,
    plan: Floorplan,
    fabric: Fabric,
    hot: int,
    acc: list[float],
    frozen: set[int],
    cpd_limit: float,
    graphs,
) -> bool:
    """Try one verified relocation/swap off PE ``hot``; True when applied.

    ``plan`` and ``acc`` are updated in place on success and left
    untouched on failure (every rejected trial is reverted).
    """
    from repro.timing.sta import analyze

    hot_ops = sorted(
        (
            op_id
            for context in range(plan.num_contexts)
            if (op_id := plan.op_on(context, hot)) is not None
            and op_id not in frozen
        ),
        key=lambda op_id: (-design.ops[op_id].stress_ns, op_id),
    )
    for op_id in hot_ops:
        context = design.ops[op_id].context
        op_stress = design.ops[op_id].stress_ns
        if op_stress <= 0.0:
            continue
        targets = sorted(
            (k for k in range(fabric.num_pes) if k != hot),
            key=lambda k: (acc[k], k),
        )
        trials = 0
        for target in targets:
            if trials >= _TRIALS_PER_OP:
                break
            occupant = plan.op_on(context, target)
            if occupant is not None and occupant in frozen:
                continue
            delta = op_stress - (
                design.ops[occupant].stress_ns if occupant is not None else 0.0
            )
            # Both touched PEs must land strictly below the hot PE's
            # current level, else the move is not levelling progress.
            if delta <= 0.0 or acc[target] + delta >= acc[hot]:
                continue
            trials += 1
            if occupant is None:
                plan.rebind(op_id, target)
            else:
                plan.swap(op_id, occupant)
            if analyze(design, plan, graphs).cpd_ns <= cpd_limit:
                acc[hot] -= delta
                acc[target] += delta
                return True
            if occupant is None:
                plan.rebind(op_id, hot)
            else:
                plan.swap(op_id, occupant)
    return False
