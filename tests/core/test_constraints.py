"""Re-mapping MILP constraint-builder tests."""

from __future__ import annotations

import pytest

from repro.arch import Fabric, OpKind, UnitKind
from repro.core import FrozenPlan
from repro.core.constraints import (
    add_assignment_variables,
    add_exclusivity_constraints,
    add_path_constraints,
    add_stress_constraints,
    add_wirelength_objective,
    build_coordinates,
    collect_endpoints,
    design_wire_endpoints,
)
from repro.errors import ModelError
from repro.hls import MappedDesign, OpInfo
from repro.milp import Model, ScipyBackend
from repro.timing import Endpoint, TimingPath
from repro.timing.kpaths import MonitoredPath


def simple_design(num_ops=3, contexts=None):
    design = MappedDesign(name="t", num_contexts=2)
    for op in range(num_ops):
        ctx = (contexts or {}).get(op, 0)
        design.ops[op] = OpInfo(op, OpKind.ADD, 32, ctx, UnitKind.ALU, 1.0, 1.0)
    return design


@pytest.fixture
def fabric():
    return Fabric(2, 2, unit_wire_delay_ns=1.0)


class TestAssignment:
    def test_one_hot_groups(self, fabric):
        design = simple_design(2)
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0, 1], 1: [2, 3]}, design
        )
        assert model.num_binary == 4
        assert model.num_constraints == 2
        assert len(variables.groups()) == 2

    def test_empty_candidates_rejected(self, fabric):
        design = simple_design(1)
        model = Model()
        with pytest.raises(ModelError):
            add_assignment_variables(model, {0: []}, design)


class TestExclusivity:
    def test_slot_constraints_for_shared_candidates(self, fabric):
        design = simple_design(2)  # both ops in context 0
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0, 1], 1: [0, 1]}, design
        )
        before = model.num_constraints
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        assert model.num_constraints == before + 2  # PE0, PE1 shared

    def test_different_contexts_do_not_conflict(self, fabric):
        design = simple_design(2, contexts={0: 0, 1: 1})
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0], 1: [0]}, design
        )
        before = model.num_constraints
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        assert model.num_constraints == before  # singleton slots skipped

    def test_solver_enforces_exclusivity(self, fabric):
        design = simple_design(2)
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0], 1: [0]}, design  # both want only PE 0
        )
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        solution = model.solve(ScipyBackend())
        assert not solution.status.has_solution


class TestStress:
    def test_budget_enforced(self, fabric):
        design = simple_design(3)  # three 1.0 ns ops, context 0
        model = Model()
        variables = add_assignment_variables(
            model, {op: [0, 1, 2, 3] for op in range(3)}, design
        )
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        add_stress_constraints(variables, design, 4, 1.0, {})
        solution = model.solve(ScipyBackend())
        assert solution.status.has_solution  # one op per PE fits 1.0 budget

        model2 = Model()
        variables2 = add_assignment_variables(
            model2, {op: [0, 1] for op in range(3)}, design
        )
        add_exclusivity_constraints(variables2, design, fabric.num_pes)
        add_stress_constraints(variables2, design, 4, 1.0, {})
        # Three ops on two PEs in one context: exclusivity alone kills it.
        assert not model2.solve(ScipyBackend()).status.has_solution

    def test_frozen_contribution_counts(self, fabric):
        design = simple_design(1)
        model = Model()
        variables = add_assignment_variables(model, {0: [0]}, design)
        add_stress_constraints(variables, design, 4, 1.5, {0: 1.0})
        # movable 1.0 + frozen 1.0 > 1.5 on PE 0 -> infeasible.
        assert not model.solve(ScipyBackend()).status.has_solution

    def test_frozen_overflow_detected_immediately(self, fabric):
        design = simple_design(1)
        model = Model()
        variables = add_assignment_variables(model, {0: [1]}, design)
        with pytest.raises(ModelError):
            add_stress_constraints(variables, design, 4, 0.5, {0: 1.0})


def monitored(chain, context=0):
    return MonitoredPath(
        path=TimingPath(context=context, chain=chain), delay_ns=0.0
    )


class TestPathConstraints:
    def build(self, fabric, candidates, frozen_positions, paths, cpd):
        design = simple_design(3)
        model = Model()
        variables = add_assignment_variables(model, candidates, design)
        endpoints = collect_endpoints(paths)
        build_coordinates(variables, design, fabric, frozen_positions, endpoints)
        added, violations = add_path_constraints(
            variables, design, fabric, paths, cpd
        )
        return design, model, variables, added, violations

    def test_constraint_limits_distance(self, fabric):
        # op0 frozen at PE0 (0,0); op1 choosable at PE1 (0,1) or PE3 (1,1).
        paths = [monitored((0, 1))]
        design, model, variables, added, violations = self.build(
            fabric, {1: [1, 3], 2: [2]}, {0: 0}, paths, cpd=3.0
        )
        # slack = (3.0 - 2.0)/1.0 = 1.0 -> only PE1 (distance 1) feasible...
        # PE3 is distance 2 -> must be excluded by the constraint.
        solution = model.solve(ScipyBackend())
        assert solution.status.has_solution
        chosen = [pe for var, pe in variables.assign[1] if solution.value(var) > 0.5]
        assert chosen == [1]
        assert added == 1
        assert violations == 0

    def test_all_frozen_violation_skipped(self, fabric):
        # Both ops frozen 2 apart but slack only 1: recorded, not raised.
        paths = [monitored((0, 1))]
        design, model, variables, added, violations = self.build(
            fabric, {2: [2]}, {0: 0, 1: 3}, paths, cpd=3.0
        )
        assert added == 0
        assert violations == 1

    def test_pe_delay_above_cpd_rejected(self, fabric):
        paths = [monitored((0, 1))]
        with pytest.raises(ModelError):
            self.build(fabric, {0: [0], 1: [1], 2: [2]}, {}, paths, cpd=1.5)

    def test_distance_vars_shared_between_paths(self, fabric):
        paths = [monitored((0, 1)), monitored((0, 1))]
        design, model, variables, added, violations = self.build(
            fabric, {0: [0, 1], 1: [2, 3], 2: [2]}, {}, paths, cpd=5.0
        )
        assert len(variables.distance_vars) == 1


class TestWirelengthObjective:
    def test_objective_counts_all_wires(self, fabric):
        design = simple_design(2)
        design.compute_edges = [(0, 1)]
        design.input_edges = [(0, 0)]
        design.output_edges = [(1, 0)]
        assert len(design_wire_endpoints(design)) == 3
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0, 1], 1: [2, 3]}, design
        )
        add_wirelength_objective(variables, design, fabric, {})
        assert model.has_objective()

    def test_solver_picks_shortest_layout(self, fabric):
        design = simple_design(2)
        design.compute_edges = [(0, 1)]
        model = Model()
        variables = add_assignment_variables(
            model, {0: [0], 1: [1, 3]}, design
        )
        add_exclusivity_constraints(variables, design, fabric.num_pes)
        add_wirelength_objective(variables, design, fabric, {})
        solution = model.solve(ScipyBackend())
        chosen = [pe for var, pe in variables.assign[1] if solution.value(var) > 0.5]
        assert chosen == [1]  # adjacent beats diagonal
        assert solution.objective == pytest.approx(1.0)


class TestCoordinates:
    def test_unknown_endpoint_rejected(self, fabric):
        design = simple_design(1)
        model = Model()
        variables = add_assignment_variables(model, {0: [0]}, design)
        with pytest.raises(ModelError):
            build_coordinates(
                variables, design, fabric, {}, {Endpoint.op(42)}
            )

    def test_pad_coordinates_constant(self, fabric):
        design = simple_design(1)
        model = Model()
        variables = add_assignment_variables(model, {0: [0]}, design)
        build_coordinates(
            variables, design, fabric, {}, {Endpoint.in_pad(0)}
        )
        key = ("in", 0)
        assert variables.coords.x_of[key].is_constant()
        assert variables.coords.x_of[key].constant == -1.0
