"""The service's request model and content-addressed work keys.

A :class:`FloorplanRequest` names one unit of floorplanning work exactly
the way the one-shot CLI does (``repro flow <kernel> --fabric RxC --mode
... --time-limit ...``), so a request executed by the service is
*bit-identical* to the same request run through ``repro flow`` — the
property the artifact cache and the soak tests lean on.

The **cache key** is a SHA-256 over the canonical JSON of every field
that determines the result: the design content (a mapped-design document,
or the kernel name + source that compiles into one), the fabric, the
re-mapping mode and the solver's ST/time parameters.  Tenant identity and
the per-request deadline are deliberately excluded — they shape *when*
and *whether* work runs, not what the answer is — except that a request
carrying its own deadline budget is keyed separately (a deadline can
degrade the result, and a degraded artifact must never be served to an
unbounded request).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.errors import ServiceError

#: Modes Algorithm 1 accepts; anything else is rejected at validation.
VALID_MODES = ("freeze", "rotate")

#: Hard ceiling on serialized request size (bytes of canonical JSON);
#: protects the HTTP intake from absurd payloads before any work starts.
MAX_REQUEST_BYTES = 4 * 1024 * 1024


def canonical_json(document: Any) -> str:
    """The one canonical JSON rendering used for hashing and checksums.

    Compact separators + sorted keys: two semantically equal documents
    always hash identically, regardless of who serialized them.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_hash(document: Any) -> str:
    """SHA-256 hex digest of a document's canonical JSON."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FloorplanRequest:
    """One floorplanning job, as submitted by a client.

    Exactly one of ``kernel``/``source`` (mini-C compiled on the worker,
    like ``repro flow``) or ``design`` (a pre-mapped ``mapped_design``
    document, like ``repro remap``) describes the work.  ``kernel`` also
    names the artifact when ``source`` is given.
    """

    kernel: str | None = None
    source: str | None = None
    design: dict | None = None
    fabric: str = "4x4"
    mode: str = "rotate"
    time_limit_s: float = 30.0
    #: Per-request wall-clock budget (None = the service default applies).
    deadline_s: float | None = None
    tenant: str = "default"
    #: Free-form client annotations; never part of the cache key.
    labels: dict = field(default_factory=dict)

    # -- validation -----------------------------------------------------------
    def validate(self) -> None:
        """Reject malformed requests with a typed :class:`ServiceError`."""
        if self.design is None and self.kernel is None and self.source is None:
            raise ServiceError(
                "request needs a design document, a kernel name, or source"
            )
        if self.design is not None and (self.source is not None):
            raise ServiceError("request cannot carry both a design and source")
        if self.design is not None and self.design.get("kind") != "mapped_design":
            raise ServiceError(
                "request 'design' must be a mapped_design document, got "
                f"kind={self.design.get('kind')!r}"
            )
        if self.source is not None and self.kernel is None:
            raise ServiceError("a source request needs 'kernel' as its name")
        if self.mode not in VALID_MODES:
            raise ServiceError(
                f"unknown mode {self.mode!r}; expected one of {VALID_MODES}"
            )
        rows_cols = self.fabric.lower().split("x")
        if len(rows_cols) != 2 or not all(p.isdigit() for p in rows_cols):
            raise ServiceError(
                f"invalid fabric {self.fabric!r}; expected e.g. 4x4"
            )
        if int(rows_cols[0]) < 1 or int(rows_cols[1]) < 1:
            raise ServiceError(f"fabric {self.fabric!r} has no PEs")
        if self.time_limit_s <= 0:
            raise ServiceError(
                f"time_limit_s must be > 0, got {self.time_limit_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServiceError(
                f"deadline_s must be > 0 when given, got {self.deadline_s}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServiceError(f"invalid tenant {self.tenant!r}")
        size = len(canonical_json(self.to_dict()))
        if size > MAX_REQUEST_BYTES:
            raise ServiceError(
                f"request is {size} bytes; limit is {MAX_REQUEST_BYTES}"
            )

    # -- identity -------------------------------------------------------------
    def design_hash(self) -> str:
        """Content hash of the work's *input design* (document or source)."""
        if self.design is not None:
            return content_hash(self.design)
        return content_hash({"kernel": self.kernel, "source": self.source})

    def cache_key(self) -> str:
        """Content-addressed key of the result this request computes.

        Keyed on (design hash, fabric, mode, ST/solver parameters) per
        the service contract; a bounded request keys separately so a
        deadline-degraded artifact can never satisfy an unbounded one.
        """
        return content_hash({
            "design": self.design_hash(),
            "fabric": self.fabric.lower(),
            "mode": self.mode,
            "time_limit_s": self.time_limit_s,
            "deadline_s": self.deadline_s,
        })

    # -- wire format ----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready encoding (journal records, HTTP bodies)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FloorplanRequest":
        """Decode and validate a request document."""
        if not isinstance(data, dict):
            raise ServiceError(f"request must be a JSON object, got {data!r}")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        try:
            request = cls(
                kernel=data.get("kernel"),
                source=data.get("source"),
                design=data.get("design"),
                fabric=str(data.get("fabric", "4x4")),
                mode=str(data.get("mode", "rotate")),
                time_limit_s=float(data.get("time_limit_s", 30.0)),
                deadline_s=(
                    float(data["deadline_s"])
                    if data.get("deadline_s") is not None
                    else None
                ),
                tenant=str(data.get("tenant", "default")),
                labels=dict(data.get("labels") or {}),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed request: {exc}") from exc
        request.validate()
        return request
