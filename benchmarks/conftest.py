"""Shared helpers for the benchmark harness.

Scale control
-------------
``REPRO_BENCH_SCALE`` selects the benchmark profile:

* ``smoke`` (default) — 4x4/8x8 fabrics, representative subset; minutes.
* ``paper`` — the verbatim Table I configurations; hours for the 16x16
  entries.  Use ``python -m repro.report.experiments table1 --scale paper``
  for the full-table reproduction outside pytest-benchmark.

Every benchmark records its scientific outputs (MTTF increase, CPD
preservation, solver statistics) in ``benchmark.extra_info`` so the
pytest-benchmark JSON doubles as the experiment record.
"""

from __future__ import annotations

import os

import pytest

from repro.benchgen import Table1Entry, entry
from repro.benchgen.synth import build_benchmark
from repro.core import AgingAwareFlow, Algorithm1Config, FlowConfig, RemapConfig

# The smoke suite definition lives with the perf harness (`repro bench
# run` executes the same subset), re-exported here for the pytest benches.
from repro.obs.perf import SMOKE_BENCHMARKS, SMOKE_MAX_FABRIC  # noqa: F401

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")


def scaled_entry(name: str) -> Table1Entry:
    e = entry(name)
    if SCALE == "smoke":
        return e.scaled(SMOKE_MAX_FABRIC)
    return e


def bench_flow(mode: str = "rotate", time_limit_s: float = 15.0) -> AgingAwareFlow:
    """Benchmark-profile flow: tighter solver budget and iteration cap so
    the whole harness completes in minutes on one core; the experiment
    CLI (`repro.report.experiments`) uses the full budgets."""
    return AgingAwareFlow(
        FlowConfig(
            algorithm1=Algorithm1Config(
                mode=mode,
                max_iterations=10,
                remap=RemapConfig(time_limit_s=time_limit_s),
            )
        )
    )


def solver_extra_info(result) -> dict:
    """Algorithm 1 convergence numbers for ``benchmark.extra_info``.

    ``result`` is a :class:`~repro.core.flow.FlowResult`; the returned
    keys sit next to the scientific outputs so the pytest-benchmark JSON
    records solver effort alongside quality.
    """
    alg1 = result.remap.alg1
    return {
        "solves": alg1.solves,
        "solver_nodes": alg1.total_nodes,
        "max_mip_gap": alg1.max_mip_gap,
        "st_relaxations": alg1.relaxations,
        "bisection_steps": alg1.bisection_steps,
    }


@pytest.fixture(scope="session")
def built_benchmarks():
    """Designs/fabrics for the smoke subset, built once per session."""
    result = {}
    for name in SMOKE_BENCHMARKS:
        e = scaled_entry(name)
        result[name] = (e, *build_benchmark(e.spec()))
    return result
