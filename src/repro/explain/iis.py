"""Irreducible infeasible subsystem (IIS) extraction by deletion filtering.

When Algorithm 1's MILP comes back infeasible, the useful question is not
*that* it is infeasible but *which small set of constraints conflict* —
e.g. three stress rows whose PEs cannot jointly absorb the movable load
at the current ``ST_target``.  Deletion filtering answers it exactly:

1. confirm the full row set is infeasible (a fault-injected verdict on a
   actually-feasible model is caught here and reported honestly);
2. drop rows chunk-wise while infeasibility persists (fast shrink);
3. one pass over the survivors, dropping each row whose removal keeps
   the system infeasible.

After a *complete* per-row pass the survivor set is minimal: feasibility
is monotone under row removal, so if dropping row ``r`` from an earlier
superset was feasible, dropping it from the final subset is feasible too
— every kept row is certifiably necessary.

Probes run on row submatrices of the compiled CSR via scipy.  An LP
probe runs first (LP infeasible implies MILP infeasible); only when the
LP is feasible and integer variables exist does a time-limited MILP
probe run.  An indeterminate probe (limit hit) keeps the row and marks
the result unverified rather than guessing.

Variable *bounds* (including ``fix_variable`` pins) are part of the
background system, not candidates for deletion — an IIS here is a
minimal set of *rows* given the bounds, which matches how the model
builders express all domain facts as rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint
from scipy.optimize import milp as _scipy_milp

#: Default wall-clock budget for one whole extraction.
DEFAULT_TIME_LIMIT_S = 30.0

#: Per-probe MILP time limit (LP probes are effectively instant).
PROBE_TIME_LIMIT_S = 2.0

#: Rows above which the chunked pre-pass kicks in.
_CHUNK_THRESHOLD = 32


@dataclass(frozen=True)
class IISMember:
    """One constraint row of the irreducible infeasible subsystem."""

    index: int
    name: str
    sense: str
    rhs: float
    tags: Mapping[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        head = f"{self.name} {self.sense} {self.rhs:g}"
        if not self.tags:
            return head
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        return f"{head}  [{parts}]"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "sense": self.sense,
            "rhs": self.rhs,
            "tags": dict(self.tags),
        }


@dataclass
class IISResult:
    """Outcome of an extraction attempt.

    ``status`` is ``"iis"`` (members form an infeasible subsystem),
    ``"feasible"`` (the model is NOT infeasible — e.g. the verdict came
    from fault injection or a solver limit) or ``"indeterminate"``
    (probes could not decide within budget).  ``minimal`` is True only
    when the full per-row pass completed; ``verified`` additionally
    requires every probe along the way to have been decisive.
    """

    status: str
    members: tuple[IISMember, ...] = ()
    minimal: bool = False
    verified: bool = False
    probes: int = 0
    elapsed_s: float = 0.0
    note: str = ""

    @property
    def families(self) -> dict[str, int]:
        """How many members each constraint family contributes."""
        histogram: dict[str, int] = {}
        for member in self.members:
            family = str(member.tags.get("family", "untagged"))
            histogram[family] = histogram.get(family, 0) + 1
        return histogram

    @property
    def involves(self) -> dict[str, list]:
        """Domain entities named by the members' tags."""
        pes: set[int] = set()
        contexts: set[int] = set()
        ops: set[int] = set()
        for member in self.members:
            tags = member.tags
            if "pe" in tags:
                pes.add(int(tags["pe"]))
            if tags.get("context") is not None:
                contexts.add(int(tags["context"]))
            if "op" in tags:
                ops.add(int(tags["op"]))
            for op in tags.get("ops", ()):
                ops.add(int(op))
        return {
            "pes": sorted(pes),
            "contexts": sorted(contexts),
            "ops": sorted(ops),
        }

    def describe(self) -> str:
        """Multi-line human narrative of the conflict."""
        if self.status == "feasible":
            return (
                "model is feasible on independent re-check — the infeasible "
                "verdict did not come from the constraints "
                f"({self.note or 'solver limit or injected fault'})"
            )
        if self.status == "indeterminate":
            return f"IIS extraction inconclusive: {self.note or 'probe budget hit'}"
        lines = [
            f"{len(self.members)} conflicting constraints "
            f"({'minimal' if self.minimal else 'reduced, not proven minimal'}"
            f"{', verified' if self.verified else ''}):"
        ]
        for member in self.members:
            lines.append(f"  - {member.describe()}")
        involves = self.involves
        summary = ", ".join(
            f"{kind} {values}" for kind, values in involves.items() if values
        )
        if summary:
            lines.append(f"  involves {summary}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "members": [member.to_dict() for member in self.members],
            "minimal": self.minimal,
            "verified": self.verified,
            "probes": self.probes,
            "elapsed_s": round(self.elapsed_s, 6),
            "families": self.families,
            "involves": self.involves,
            "note": self.note,
        }


class _Prober:
    """Feasibility probes over row subsets of one compiled matrix form."""

    def __init__(self, form, time_limit_s: float, probe_limit_s: float) -> None:
        self.a_matrix = form.a_matrix.tocsr()
        m = self.a_matrix.shape[0]
        senses = [getattr(s, "value", s) for s in form.senses]
        self.row_lower = np.full(m, -np.inf)
        self.row_upper = np.full(m, np.inf)
        for i, sense in enumerate(senses):
            if sense == "<=":
                self.row_upper[i] = form.rhs[i]
            elif sense == ">=":
                self.row_lower[i] = form.rhs[i]
            else:
                self.row_lower[i] = self.row_upper[i] = form.rhs[i]
        self.bounds = Bounds(form.lower, form.upper)
        self.integrality = np.asarray(form.integrality)
        self.has_integers = bool(self.integrality.any())
        self.zero_cost = np.zeros(self.a_matrix.shape[1])
        self.deadline = time.monotonic() + time_limit_s
        self.probe_limit_s = probe_limit_s
        self.probes = 0

    def out_of_budget(self) -> bool:
        return time.monotonic() >= self.deadline

    def infeasible(self, rows: np.ndarray) -> bool | None:
        """True = subset proven infeasible, False = feasible, None = unknown."""
        self.probes += 1
        if self.a_matrix.shape[1] == 0:
            # Zero-variable system (every op frozen): each row's LHS is the
            # empty sum 0, so feasibility is a direct bound check — scipy
            # rejects an empty cost vector, and no probe is needed anyway.
            if not rows.size:
                return False
            satisfied = (self.row_lower[rows] <= 0.0) & (self.row_upper[rows] >= 0.0)
            return not bool(satisfied.all())
        constraints = (
            LinearConstraint(
                self.a_matrix[rows], self.row_lower[rows], self.row_upper[rows]
            )
            if rows.size
            else ()
        )
        verdict = self._solve(constraints, relax=True)
        if verdict is True:
            return True  # LP infeasible => MILP infeasible
        if not self.has_integers:
            return verdict
        if verdict is None:
            return None
        return self._solve(constraints, relax=False)

    def _solve(self, constraints, relax: bool) -> bool | None:
        budget = min(self.probe_limit_s, max(self.deadline - time.monotonic(), 0.05))
        integrality = (
            np.zeros_like(self.integrality) if relax else self.integrality
        )
        try:
            result = _scipy_milp(
                c=self.zero_cost,
                constraints=constraints,
                integrality=integrality,
                bounds=self.bounds,
                options={"time_limit": budget, "presolve": True},
            )
        except Exception:  # pragma: no cover - defensive: HiGHS edge cases
            return None
        if result.status == 2:
            return True
        if result.success:
            return False
        return None


def find_iis(
    model,
    time_limit_s: float = DEFAULT_TIME_LIMIT_S,
    probe_limit_s: float = PROBE_TIME_LIMIT_S,
) -> IISResult:
    """Extract an IIS from (the current stamp of) ``model``.

    ``model`` is a :class:`repro.milp.model.Model`; the probe matrix is
    its compiled matrix form at current parameter values and variable
    bounds, so the result explains exactly the solve that just failed.
    """
    start = time.monotonic()
    form = model.to_matrix_form()
    metas = model.row_metadata()
    m = form.a_matrix.shape[0]
    prober = _Prober(form, time_limit_s, probe_limit_s)

    def finish(status, active=None, minimal=False, decisive=True, note=""):
        members = tuple(
            IISMember(
                index=metas[i].index,
                name=metas[i].name,
                sense=metas[i].sense,
                rhs=float(metas[i].rhs),
                tags=dict(metas[i].tags),
            )
            for i in (active if active is not None else ())
        )
        return IISResult(
            status=status,
            members=members,
            minimal=minimal,
            verified=minimal and decisive,
            probes=prober.probes,
            elapsed_s=time.monotonic() - start,
            note=note,
        )

    # The initial all-rows probe is the honesty check (a fault-injected or
    # limit-induced "infeasible" verdict on a feasible model must be caught
    # here), so it gets a larger slice of the budget than later probes.
    all_rows = np.arange(m)
    prober.probe_limit_s = max(probe_limit_s, time_limit_s / 2.0)
    verdict = prober.infeasible(all_rows)
    prober.probe_limit_s = probe_limit_s
    if verdict is False:
        return finish("feasible", note="full row set is feasible on re-check")
    if verdict is None:
        return finish("indeterminate", note="initial feasibility probe hit its limit")

    active = all_rows
    decisive = True

    # Chunked pre-pass: halve-ish the active set while infeasibility holds.
    chunk = max(len(active) // 4, _CHUNK_THRESHOLD)
    while chunk >= _CHUNK_THRESHOLD and len(active) > _CHUNK_THRESHOLD:
        if prober.out_of_budget():
            return finish(
                "iis", active, minimal=False, decisive=False,
                note="time budget hit during chunk pre-pass",
            )
        progressed = False
        start_idx = 0
        while start_idx < len(active):
            candidate = np.concatenate(
                (active[:start_idx], active[start_idx + chunk:])
            )
            if prober.infeasible(candidate) is True:
                active = candidate
                progressed = True
            else:
                start_idx += chunk
            if prober.out_of_budget():
                return finish(
                    "iis", active, minimal=False, decisive=False,
                    note="time budget hit during chunk pre-pass",
                )
        if not progressed:
            chunk //= 2

    # Minimality pass: one complete sweep, dropping every removable row.
    position = 0
    while position < len(active):
        if prober.out_of_budget():
            return finish(
                "iis", active, minimal=False, decisive=decisive,
                note="time budget hit during minimality pass",
            )
        candidate = np.concatenate((active[:position], active[position + 1:]))
        probe = prober.infeasible(candidate)
        if probe is True:
            active = candidate  # row not needed for infeasibility
        else:
            if probe is None:
                decisive = False  # conservative: keep the row
            position += 1

    return finish("iis", active, minimal=True, decisive=decisive)


def verify_iis(
    model,
    result: IISResult,
    probe_limit_s: float = PROBE_TIME_LIMIT_S,
    time_limit_s: float = DEFAULT_TIME_LIMIT_S,
) -> bool:
    """Independently certify ``result``: the members alone are infeasible
    and dropping any single member restores feasibility."""
    if result.status != "iis" or not result.members:
        return False
    form = model.to_matrix_form()
    prober = _Prober(form, time_limit_s, probe_limit_s)
    rows = np.array([member.index for member in result.members])
    if prober.infeasible(rows) is not True:
        return False
    for drop in range(len(rows)):
        candidate = np.concatenate((rows[:drop], rows[drop + 1:]))
        if prober.infeasible(candidate) is not False:
            return False
    return True
