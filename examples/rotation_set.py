#!/usr/bin/env python
"""Extension demo: multi-configuration rotation sets.

The paper's related work ([3], [8]) periodically swaps between several
configurations to spread wear.  This example composes the paper's MILP
machinery into that scheme: it builds rotation sets of size K = 1, 2 and
3 for one benchmark and shows how the time-averaged worst-PE stress — and
hence the MTTF — improves and then saturates (the fabric-mean duty is a
hard floor for any levelling scheme).

Usage::

    python examples/rotation_set.py [benchmark]   # default B19 (high util)
"""

from __future__ import annotations

import sys

from repro.aging import compute_mttf, compute_stress_map
from repro.benchgen import entry
from repro.benchgen.synth import build_benchmark
from repro.core import Algorithm1Config, RemapConfig, build_rotation_set
from repro.place import place_baseline
from repro.report import format_table
from repro.thermal import ThermalSimulator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "B19"
    bench = entry(name).scaled(4)
    design, fabric = build_benchmark(bench.spec())
    original = place_baseline(design, fabric)
    print(f"benchmark {bench.name}: {design.num_ops} ops, "
          f"{design.num_contexts} contexts, fabric {fabric.rows}x{fabric.cols}")

    original_stress = compute_stress_map(design, original)
    simulator = ThermalSimulator(fabric)
    thermal = simulator.simulate(original_stress.duty_per_context())
    baseline_mttf = compute_mttf(original_stress, thermal.accumulated_k)
    mean_floor = original_stress.mean_accumulated_ns
    print(f"aging-unaware max stress: {original_stress.max_accumulated_ns:.2f} ns"
          f"   (fabric-mean floor: {mean_floor:.2f} ns)")

    config = Algorithm1Config(remap=RemapConfig(time_limit_s=30))
    rows = []
    for k in (1, 2, 3):
        rotation = build_rotation_set(design, fabric, original, k=k, config=config)
        rows.append([
            k,
            rotation.combined_stress.max_accumulated_ns,
            rotation.mttf.mttf_s / baseline_mttf.mttf_s,
            all(not c.get("fell_back") for c in rotation.stats["configs"]),
        ])
    print()
    print(format_table(
        ["K configs", "avg worst-PE stress (ns)", "MTTF increase (x)",
         "all configs solved"],
        rows,
    ))
    print()
    print(f"The worst-PE average can never drop below the fabric mean of "
          f"{mean_floor:.2f} ns — watch the gain saturate toward that floor.")


if __name__ == "__main__":
    main()
