"""The long-lived asyncio floorplanning service (in-process client API).

:class:`FloorplanService` is the hardened surface every later scale item
talks to: requests come in (HTTP via :mod:`repro.service.server`, or this
class directly), pass **admission control**, are journaled durably,
deduplicated against the **persistent artifact cache** and against
identical **in-flight** work, and execute on crash-isolated single-worker
process pools with retry, exponential backoff and quarantine — the same
supervision discipline as the PR 5 sweep supervisor, applied per request.

Robustness contract:

* an *accepted* job (journal record ``accepted``) eventually reaches
  exactly one terminal state, across any number of service crashes —
  restart resumption replays pending work from the journal;
* a *served* artifact is bit-identical to the one-shot CLI's answer for
  the same request: results come from the shared ``repro.service.worker``
  pipeline, and cached hits are re-certified by ``repro.verify`` before
  being returned;
* a worker crash, hang or typed flow failure never takes the service
  down: the job retries on a **fresh** single-worker pool with
  exponential backoff, and repeated crashers are quarantined with a
  typed error response instead of wedging a worker slot;
* drain (SIGTERM) stops intake, finishes in-flight jobs inside a grace
  budget, and leaves still-queued jobs ``accepted`` in the journal for
  the next incarnation.
"""

from __future__ import annotations

import asyncio
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.obs import counter, event, get_logger, replay_records
from repro.resilience.faults import should_inject
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cache import ArtifactCache
from repro.service.jobs import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
    new_job_id,
)
from repro.service.request import FloorplanRequest
from repro.service.worker import die_with_parent, execute_request

_log = get_logger("service")

#: Sleep between requeue attempts for tenants at their concurrency quota.
_QUOTA_POLL_S = 0.05


@dataclass
class ServiceConfig:
    """Everything a service instance needs to know."""

    #: Durable state root: job journal, artifact cache, endpoint file.
    state_dir: str | pathlib.Path = "service-state"
    #: Parallel job slots (each job runs on its own single-worker pool).
    concurrency: int = 2
    #: Extra attempts after the first failed/crashed one.
    retries: int = 2
    #: Base of the exponential backoff between attempts (doubles each).
    retry_backoff_s: float = 0.25
    #: Hard wall-clock limit per attempt; a worker still running past it
    #: is killed and the attempt counts as a crash (None = no limit).
    attempt_timeout_s: float | None = 300.0
    #: Grace budget for :meth:`FloorplanService.drain`.
    drain_grace_s: float = 10.0
    #: Re-certify cached artifacts before serving them (the default; the
    #: opt-out exists for tests that measure the cache layer alone).
    certify_cached: bool = True
    #: Admission-control knobs.
    admission: AdmissionConfig | None = None

    def __post_init__(self) -> None:
        if self.admission is None:
            self.admission = AdmissionConfig()

    @property
    def cache_dir(self) -> pathlib.Path:
        return pathlib.Path(self.state_dir) / "cache"

    @property
    def journal_path(self) -> pathlib.Path:
        return pathlib.Path(self.state_dir) / "jobs.jsonl"


class FloorplanService:
    """Async facade over admission + cache + journal + worker pools."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = ArtifactCache(
            self.config.cache_dir, certify=self.config.certify_cached
        )
        self.store = JobStore(self.config.journal_path)
        self.admission = AdmissionController(self.config.admission)
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue[str] | None = None
        self._workers: list[asyncio.Task] = []
        self._events: dict[str, asyncio.Event] = {}
        #: cache key -> job id currently computing that key.
        self._leaders: dict[str, str] = {}
        #: cache key -> follower job ids waiting on the leader.
        self._followers: dict[str, list[str]] = {}
        self._started = False
        self.resumed: list[Job] = []

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Spin up worker tasks and resume journaled pending jobs."""
        if self._started:
            raise ServiceError("service already started")
        self._started = True
        self._queue = asyncio.Queue()
        pathlib.Path(self.config.state_dir).mkdir(parents=True, exist_ok=True)
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"service-worker-{i}")
            for i in range(max(1, self.config.concurrency))
        ]
        for job in self.store.pending():
            # These were admitted (and acked) by a previous incarnation;
            # they bypass shedding but still occupy queue-depth budget.
            self.admission._admitted[job.request.tenant] = (
                self.admission._admitted.get(job.request.tenant, 0) + 1
            )
            self._register(job)
            self.resumed.append(job)
            counter("service.jobs_resumed").inc()
            event("service.job_resumed", job=job.job_id)
            await self._route(job)
        if self.resumed:
            _log.warning(
                "resumed %d pending job(s) from %s",
                len(self.resumed), self.store.journal.path,
            )

    async def close(self) -> None:
        """Stop worker tasks (in-flight pools are killed, jobs stay
        ``accepted`` in the journal for the next incarnation)."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._started = False

    async def drain(self, grace_s: float | None = None) -> bool:
        """Stop intake and wait for in-flight work; True when clean.

        After the grace budget, still-unfinished jobs remain ``accepted``
        in the journal — a restarted service picks them up — so an
        over-budget drain loses no accepted work, only time.
        """
        self.admission.draining = True
        event("service.draining", jobs=len(self.open_jobs()))
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        deadline = time.monotonic() + grace
        for job in list(self.open_jobs()):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(
                    self._event_of(job.job_id).wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                break
        clean = not self.open_jobs()
        counter("service.drains").inc()
        event(
            "service.drained", clean=clean,
            unfinished=len(self.open_jobs()),
        )
        return clean

    # -- submission (the in-process client API) -------------------------------
    async def submit(self, request: FloorplanRequest | dict) -> Job:
        """Admit one request; returns the journaled :class:`Job`.

        Raises :class:`~repro.errors.AdmissionError` (with a retry-after
        hint) when shedding, :class:`~repro.errors.ServiceError` for
        malformed requests.  The returned job may already be terminal
        (cache hit).
        """
        if not self._started:
            raise ServiceError("service is not started")
        if isinstance(request, dict):
            request = FloorplanRequest.from_dict(request)
        else:
            request.validate()
        self.admission.admit(request.tenant)
        job = Job(job_id=new_job_id(), request=request)
        self._register(job)
        self.store.record_accepted(job)
        counter("service.jobs_accepted").inc()
        await self._route(job)
        return job

    async def run(
        self, request: FloorplanRequest | dict, timeout: float | None = None
    ) -> Job:
        """Submit and wait — the one-call in-process client."""
        job = await self.submit(request)
        return await self.wait(job.job_id, timeout=timeout)

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        job = self.job(job_id)
        if not job.terminal:
            await asyncio.wait_for(
                self._event_of(job_id).wait(), timeout=timeout
            )
        return job

    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def open_jobs(self) -> list[Job]:
        return [job for job in self.jobs.values() if not job.terminal]

    # -- routing: cache, coalescing, queue ------------------------------------
    def _register(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self._events[job.job_id] = asyncio.Event()

    def _event_of(self, job_id: str) -> asyncio.Event:
        return self._events[job_id]

    async def _route(self, job: Job) -> None:
        """Send an admitted job to the cheapest sufficient path.

        Leadership is claimed *before* the (awaiting) cache probe so two
        concurrent identical submissions cannot both become leaders.
        """
        key = job.request.cache_key()
        leader_id = self._leaders.get(key)
        if leader_id is not None and not self.jobs[leader_id].terminal:
            job.coalesced = True
            self._followers.setdefault(key, []).append(job.job_id)
            counter("service.jobs_coalesced").inc()
            event("service.job_coalesced", job=job.job_id, leader=leader_id)
            return
        self._leaders[key] = job.job_id
        cached = await asyncio.to_thread(self.cache.fetch, key)
        if cached is not None:
            self._complete(job, key, cached, cache_hit=True)
            return
        await self._queue.put(job.job_id)

    # -- worker loop -----------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.status != QUEUED:
                continue
            tenant = job.request.tenant
            if not self.admission.acquire(tenant):
                # Tenant at its concurrency quota: requeue after a beat
                # so other tenants' jobs flow past it.
                await asyncio.sleep(_QUOTA_POLL_S)
                await self._queue.put(job_id)
                continue
            try:
                await self._run_job(job)
            finally:
                self.admission.release(tenant)

    async def _run_job(self, job: Job) -> None:
        """Attempt ladder of one job: fresh pool, backoff, quarantine."""
        job.status = RUNNING
        key = job.request.cache_key()
        attempts = max(1, self.config.retries + 1)
        last_error = "unknown failure"
        crashed = False
        for attempt in range(attempts):
            job.attempts = attempt + 1
            if attempt:
                backoff = self.config.retry_backoff_s * 2 ** (attempt - 1)
                counter("service.job_retries").inc()
                event(
                    "service.job_retry", job=job.job_id, attempt=attempt + 1,
                    backoff_s=backoff, error=last_error,
                )
                await asyncio.sleep(backoff)
            # Fault verdict taken here, parent-side, so hit counters are
            # deterministic across forked workers.
            inject = "crash" if should_inject("service_worker_crash") else None
            outcome, failure = await self._attempt(job, inject)
            if outcome is not None and outcome["ok"]:
                replay_records(outcome["trace_records"])
                job.wall_s = outcome["wall_s"]
                document = outcome["document"]
                await asyncio.to_thread(self.cache.put, key, document)
                self._complete(job, key, document, cache_hit=False)
                return
            if outcome is not None:
                replay_records(outcome["trace_records"])
                last_error, crashed = outcome["error"], False
            else:
                last_error, crashed = failure, True
                counter("service.worker_crashes").inc()
                event(
                    "service.worker_crash", job=job.job_id,
                    attempt=attempt + 1, error=failure,
                )
        self._fail(job, last_error, quarantined=crashed)

    async def _attempt(
        self, job: Job, inject: str | None
    ) -> tuple[dict | None, str]:
        """One crash-isolated attempt on a fresh single-worker pool.

        Returns ``(outcome, "")`` on a worker that returned at all, or
        ``(None, reason)`` for hard deaths (crash, kill, timeout).
        """
        pool = ProcessPoolExecutor(max_workers=1, initializer=die_with_parent)
        try:
            future = pool.submit(
                execute_request, job.request.to_dict(), inject
            )
            try:
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(future),
                    timeout=self.config.attempt_timeout_s,
                )
                return outcome, ""
            except asyncio.TimeoutError:
                self._kill_pool(pool)
                counter("service.worker_timeouts").inc()
                return None, (
                    f"attempt exceeded {self.config.attempt_timeout_s:.1f}s; "
                    "worker killed"
                )
            except BrokenProcessPool:
                return None, "worker process died mid-job"
            except asyncio.CancelledError:
                # Service shutdown while a solve is in flight: kill the
                # worker so nothing outlives the service; the job stays
                # 'accepted' in the journal for the next incarnation.
                self._kill_pool(pool)
                raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        for process in list(pool._processes.values()):
            process.kill()

    # -- terminal transitions --------------------------------------------------
    def _complete(
        self, job: Job, key: str, document: dict, cache_hit: bool
    ) -> None:
        job.status = DONE
        job.result_key = key
        job.document = document
        job.summary = document.get("summary")
        job.cache_hit = cache_hit
        self.store.record_done(job)
        self.admission.finish(job.request.tenant)
        counter("service.jobs_done").inc()
        event(
            "service.job_done", job=job.job_id, key=key,
            cache_hit=cache_hit, attempts=job.attempts,
        )
        self._events[job.job_id].set()
        self._resolve_followers(key)

    def _fail(self, job: Job, error: str, quarantined: bool) -> None:
        job.status = QUARANTINED if quarantined else FAILED
        job.error = error
        self.store.record_failed(job, quarantined=quarantined)
        self.admission.finish(job.request.tenant)
        counter(
            "service.jobs_quarantined" if quarantined
            else "service.jobs_failed"
        ).inc()
        event(
            "service.job_failed", job=job.job_id, error=error,
            quarantined=quarantined, attempts=job.attempts,
        )
        self._events[job.job_id].set()
        self._resolve_followers(job.request.cache_key())

    def _resolve_followers(self, key: str) -> None:
        """Leader finished: settle (or promote) everyone waiting on it."""
        self._leaders.pop(key, None)
        followers = self._followers.pop(key, [])
        if followers:
            asyncio.get_running_loop().create_task(
                self._settle_followers(key, followers)
            )

    async def _settle_followers(self, key: str, follower_ids: list[str]) -> None:
        for job_id in follower_ids:
            job = self.jobs[job_id]
            if job.terminal:
                continue
            cached = await asyncio.to_thread(self.cache.fetch, key)
            if cached is not None:
                self._complete(job, key, cached, cache_hit=True)
                continue
            # Leader failed (or its artifact did not survive): this
            # follower takes over as a fresh leader and computes.
            job.coalesced = False
            await self._route(job)

    # -- reporting -------------------------------------------------------------
    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "jobs": by_status,
            "admission": self.admission.stats(),
            "cache": self.cache.stats(),
            "resumed": len(self.resumed),
        }
