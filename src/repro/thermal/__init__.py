"""Compact steady-state thermal model (HotSpot 6.0 substitute).

Per-PE power from duty cycles, a lateral+vertical conduction grid solved
with sparse LU, and a simulator facade producing the per-context thermal
maps the aging model consumes.
"""

from repro.thermal.grid import ThermalGrid, ThermalGridConfig
from repro.thermal.hotspot import ThermalReport, ThermalSimulator
from repro.thermal.power import PowerModel

__all__ = [
    "PowerModel",
    "ThermalGrid",
    "ThermalGridConfig",
    "ThermalReport",
    "ThermalSimulator",
]
