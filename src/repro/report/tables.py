"""Plain-text table rendering for experiment reports.

No plotting dependencies are available offline, so tables and figures are
emitted as aligned ASCII (and optionally CSV) — enough to compare shapes
against the paper's Table I and Fig. 5.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render rows as an aligned ASCII table with a header rule."""
    rendered_rows = [
        [_cell(value, precision) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_csv(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Minimal CSV (values contain no commas in our reports)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(v) for v in row))
    return "\n".join(lines)


def format_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """A small key/value block used for summaries."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title, "-" * len(title)]
    for key, value in mapping.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"{key.ljust(width)}  {rendered}")
    return "\n".join(lines)
