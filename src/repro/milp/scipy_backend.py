"""HiGHS solver backend via :func:`scipy.optimize.milp`.

This stands in for the CPLEX backend the paper used.  HiGHS is an exact
branch-and-cut MILP solver; for pure LPs (e.g. the relaxation used in the
paper's two-step method) it reduces to the HiGHS dual simplex.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import SolverError
from repro.explain import attribute_solution, explain_enabled
from repro.milp.model import Model, hint_vector
from repro.milp.status import Solution, SolveStatus
from repro.obs import counter, get_logger, histogram, span
from repro.obs.solverstats import SolveStats, progress_enabled
from repro.portfolio.cancel import current_cancel_token
from repro.resilience.deadline import current_deadline
from repro.resilience.faults import inject_solver_fault

_log = get_logger("milp.scipy_backend")


def attach_attribution(stats: SolveStats, form, x, metas) -> None:
    """Attribute a feasible solution onto ``stats`` (no-op when disabled).

    Shared by both backends; diagnostics must never break a solve, so
    attribution failures are logged and swallowed.
    """
    if x is None or metas is None or not explain_enabled():
        return
    try:
        stats.attribution = attribute_solution(form, x, metas)
    except Exception:  # pragma: no cover - diagnostics are best-effort
        _log.debug("binding attribution failed", exc_info=True)

#: Map HiGHS/scipy status codes to our :class:`SolveStatus`.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent (checked below)
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class ScipyBackend:
    """Solve models with scipy's HiGHS bindings.

    Parameters
    ----------
    time_limit:
        Wall-clock limit in seconds passed to HiGHS (None = unlimited).
    mip_rel_gap:
        Relative MIP gap at which HiGHS may stop (None = solver default).
    """

    def __init__(self, time_limit: float | None = None, mip_rel_gap: float | None = None):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model: Model, **options) -> Solution:
        """Solve ``model``; per-call ``options`` override constructor values.

        The current :class:`~repro.resilience.Deadline` is honoured: an
        already-expired budget raises before HiGHS is entered, and the
        solver time limit is capped to the remaining budget.

        ``options["warm_start"]`` may carry an incumbent hint (a
        ``{Variable: value}`` mapping, e.g. a previous iteration's
        solution).  HiGHS's scipy entry point has no MIP-start API, so the
        hint cannot seed the search itself; it is validated and recorded
        on :class:`SolveStats` (``warm_started``/``hint_objective``), and
        for pure *feasibility* models (the paper's ``ObjFunc: Null``) a
        still-feasible hint is returned directly without invoking HiGHS.
        """
        deadline = current_deadline()
        deadline.check(f"milp_solve:{model.name}")
        if current_cancel_token().cancelled:
            # A portfolio race was decided before this lane entered the
            # solver; HiGHS itself cannot be interrupted mid-solve, so
            # the entry boundary is this backend's cancellation point.
            return Solution(
                status=SolveStatus.ERROR,
                message="cancelled before solve",
                stats=SolveStats(backend="highs", limit_reason="cancelled"),
            )
        injected = inject_solver_fault(model.name)
        if injected is not None:
            injected.stats = SolveStats(
                backend="highs", limit_reason="fault_injected"
            )
            return injected
        form = model.to_matrix_form()
        n = len(form.variables)
        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL, objective=0.0, values={},
                stats=SolveStats(backend="highs"),
            )

        milp_options: dict = {}
        time_limit = deadline.cap(options.get("time_limit", self.time_limit))
        if time_limit is not None:
            milp_options["time_limit"] = float(time_limit)
        mip_rel_gap = options.get("mip_rel_gap", self.mip_rel_gap)
        if mip_rel_gap is not None:
            milp_options["mip_rel_gap"] = float(mip_rel_gap)
        if progress_enabled():
            # HiGHS's own branch-and-cut log is the live progress line for
            # this backend (incumbent/bound/gap per node batch).
            milp_options["disp"] = True

        constraints = []
        if form.a_matrix.shape[0]:
            row_lower, row_upper = form.row_bounds()
            constraints.append(
                LinearConstraint(form.a_matrix, row_lower, row_upper)
            )

        metas = model.row_metadata() if explain_enabled() else None
        if not form.integrality.any():
            # Pure LP (e.g. the two-step method's relaxation): HiGHS's
            # interior-point method is several times faster than the
            # branch-and-cut entry point on these transportation-like LPs.
            return self._solve_lp(form, time_limit, model.name, metas=metas)

        stats = SolveStats(backend="highs", kind="milp")
        hint = options.get("warm_start")
        if hint:
            x0 = hint_vector(form, hint)
            if x0 is None:
                counter("milp.warm_start_misses").inc()
            else:
                stats.warm_started = True
                stats.hint_objective = float(form.objective @ x0)
                counter("milp.warm_start_hits").inc()
                if not model.has_objective():
                    # Feasibility model: any feasible point is an answer, so
                    # the validated hint short-circuits the solver entirely.
                    with span(
                        "solver", backend="highs", kind="milp",
                        model=model.name, variables=n, warm_shortcut=True,
                    ) as solver_span:
                        stats.incumbent = stats.hint_objective
                        stats.elapsed_s = solver_span.duration_s
                        attach_attribution(stats, form, x0, metas)
                        solver_span.set(status="optimal", **stats.span_attrs())
                    counter("milp.warm_start_shortcuts").inc()
                    values = {
                        var: float(x0[i])
                        for i, var in enumerate(form.variables)
                    }
                    return Solution(
                        status=SolveStatus.OPTIMAL,
                        objective=stats.incumbent,
                        values=values,
                        solve_seconds=stats.elapsed_s,
                        message="warm-start hint accepted (feasibility model)",
                        stats=stats,
                    )
        with span(
            "solver", backend="highs", kind="milp", model=model.name,
            variables=n,
        ) as solver_span:
            try:
                result = milp(
                    c=form.objective,
                    constraints=constraints,
                    integrality=form.integrality,
                    bounds=Bounds(form.lower, form.upper),
                    options=milp_options,
                )
            except Exception as exc:  # scipy raises ValueError on malformed input
                raise SolverError(f"HiGHS backend failure: {exc}") from exc
            elapsed = solver_span.duration_s
            stats.elapsed_s = elapsed
            stats.nodes = int(getattr(result, "mip_node_count", 0) or 0)
            bound = getattr(result, "mip_dual_bound", None)
            if bound is not None and np.isfinite(bound):
                stats.best_bound = float(bound)
            gap = getattr(result, "mip_gap", None)
            if gap is not None and np.isfinite(gap):
                stats.mip_gap = float(gap)
            status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
            if status is SolveStatus.FEASIBLE:
                # HiGHS status 1 = a limit stopped the search; which limit
                # is only in prose, so classify from the configuration.
                stats.limit_reason = (
                    "time_limit" if time_limit is not None else "limit"
                )
            elif status is SolveStatus.OPTIMAL and (
                mip_rel_gap and stats.mip_gap and stats.mip_gap > 0.0
            ):
                stats.limit_reason = "gap_limit"
            if result.x is not None:
                stats.incumbent = float(form.objective @ result.x)
                stats.sample(elapsed, stats.nodes, stats.incumbent, stats.best_bound)
                attach_attribution(stats, form, result.x, metas)
            solver_span.set(status=status.value, **stats.span_attrs())
        counter("milp.highs.milp_solves").inc()
        histogram("milp.highs.solve_seconds").observe(elapsed)
        _log.debug(
            "HiGHS MILP %s: %d vars, status %s in %.3fs",
            model.name, n, result.status, elapsed,
        )

        if status is SolveStatus.FEASIBLE and result.x is None:
            # Limit hit without an incumbent: report as an error distinct
            # from proven infeasibility so callers can retry with more time.
            return Solution(
                status=SolveStatus.ERROR,
                solve_seconds=elapsed,
                message=f"limit reached without incumbent: {result.message}",
                stats=stats,
            )
        if not status.has_solution:
            return Solution(
                status=status, solve_seconds=elapsed, message=result.message,
                stats=stats,
            )

        values = {var: float(result.x[i]) for i, var in enumerate(form.variables)}
        return Solution(
            status=status,
            objective=stats.incumbent,
            values=values,
            solve_seconds=elapsed,
            message=result.message,
            stats=stats,
        )

    def _solve_lp(self, form, time_limit, name="lp", metas=None) -> Solution:
        """Pure-LP fast path through linprog/HiGHS-IPM."""
        from scipy.optimize import linprog

        a_ub, b_ub, a_eq, b_eq = form.ub_eq_split()
        kwargs: dict = {}
        if a_ub is not None:
            kwargs["A_ub"] = a_ub
            kwargs["b_ub"] = b_ub
        if a_eq is not None:
            kwargs["A_eq"] = a_eq
            kwargs["b_eq"] = b_eq
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        stats = SolveStats(backend="highs", kind="lp")
        with span(
            "solver", backend="highs", kind="lp", model=name,
            variables=len(form.variables),
        ) as solver_span:
            result = linprog(
                form.objective,
                bounds=np.column_stack([form.lower, form.upper]),
                method="highs-ipm",
                options=options,
                **kwargs,
            )
            if result.status == 1 or result.x is None and result.status == 0:
                # Iteration/time limit: retry once with dual simplex, which
                # can return a feasible basis where IPM stalls.
                counter("milp.highs.lp_simplex_retries").inc()
                result = linprog(
                    form.objective,
                    bounds=np.column_stack([form.lower, form.upper]),
                    method="highs",
                    options=options,
                    **kwargs,
                )
            elapsed = solver_span.duration_s
            stats.elapsed_s = elapsed
            if result.x is not None:
                stats.lp_objective = float(form.objective @ result.x)
                stats.incumbent = stats.lp_objective
                attach_attribution(stats, form, result.x, metas)
            status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
            solver_span.set(status=status.value, **stats.span_attrs())
        counter("milp.highs.lp_solves").inc()
        histogram("milp.highs.solve_seconds").observe(elapsed)
        if not status.has_solution or result.x is None:
            if status is SolveStatus.FEASIBLE:
                status = SolveStatus.ERROR
                stats.limit_reason = "time_limit"
            return Solution(
                status=status, solve_seconds=elapsed, message=result.message,
                stats=stats,
            )
        values = {var: float(result.x[i]) for i, var in enumerate(form.variables)}
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=stats.lp_objective,
            values=values,
            solve_seconds=elapsed,
            message=result.message,
            stats=stats,
        )
