"""Flow-boundary validator tests."""

from __future__ import annotations

import pytest

from repro.arch import (
    Fabric,
    Floorplan,
    check_capacity,
    check_frozen_ops,
    check_same_schedule,
)
from repro.errors import MappingError


@pytest.fixture
def pair():
    fabric = Fabric(2, 2)
    original = Floorplan(fabric, 2)
    original.bind(0, 0, 0)
    original.bind(1, 0, 1)
    original.bind(2, 1, 0)
    remapped = original.with_bindings({1: 3})
    return original, remapped


class TestSameSchedule:
    def test_accepts_rebinding(self, pair):
        check_same_schedule(*pair)

    def test_rejects_context_change(self, pair):
        original, remapped = pair
        remapped.context_of[1] = 1
        with pytest.raises(MappingError):
            check_same_schedule(original, remapped)

    def test_rejects_op_set_change(self, pair):
        original, remapped = pair
        remapped.context_of[99] = 0
        remapped.pe_of[99] = 2
        with pytest.raises(MappingError):
            check_same_schedule(original, remapped)

    def test_rejects_context_count_change(self, pair):
        original, _ = pair
        other = Floorplan(original.fabric, 3)
        for op, ctx in original.context_of.items():
            other.bind(op, ctx, original.pe_of[op])
        with pytest.raises(MappingError):
            check_same_schedule(original, other)


class TestFrozenOps:
    def test_accepts_respected_freeze(self, pair):
        original, remapped = pair
        check_frozen_ops(original, remapped, {0: 0, 2: 0})

    def test_rejects_moved_frozen_op(self, pair):
        original, remapped = pair
        with pytest.raises(MappingError):
            check_frozen_ops(original, remapped, {1: 1})  # op 1 moved to 3

    def test_rejects_missing_frozen_op(self, pair):
        original, remapped = pair
        with pytest.raises(MappingError):
            check_frozen_ops(original, remapped, {42: 0})


class TestCapacity:
    def test_accepts_legal(self, pair):
        check_capacity(pair[0])

    def test_full_context_is_legal(self):
        fabric = Fabric(2, 2)
        fp = Floorplan(fabric, 1)
        for op in range(4):
            fp.bind(op, 0, op)
        check_capacity(fp)
