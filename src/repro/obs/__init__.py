"""Observability for the CAD flow: spans, metrics, sinks, logging.

The subsystem has four small parts that compose:

* :mod:`repro.obs.spans` — hierarchical :class:`Span` timing via
  ``contextvars`` (``flow > phase2 > algorithm1 > ... > lp_relax``);
* :mod:`repro.obs.metrics` — an always-on process-local
  :class:`MetricsRegistry` of counters/gauges/histograms;
* :mod:`repro.obs.sinks` — pluggable span sinks: :class:`JsonlSink`
  (one-event-per-line traces) and :class:`TreeSink` (human-readable
  timing tree);
* :mod:`repro.obs.logs` — ``repro.*`` stdlib-logging helpers.

Typical library usage::

    from repro.obs import counter, get_logger, span

    _log = get_logger("milp.branch_bound")

    with span("solver", backend="branch_bound") as sp:
        ...
        counter("milp.bb.nodes_explored").inc(nodes)

Typical application usage::

    from repro.obs import JsonlSink, attached, registry

    with JsonlSink("trace.jsonl") as sink:
        with attached(sink):
            run_flow(design, fabric)
        sink.write_metrics(registry().snapshot())
"""

from repro.obs.logs import configure_logging, get_logger, parse_level
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.sinks import (
    CollectorSink,
    JsonlSink,
    TreeSink,
    render_tree,
    replay_records,
)
from repro.obs.solverstats import (
    Algorithm1Stats,
    SolveProgress,
    SolveStats,
    TrajectorySample,
    convergence_rows,
    progress_enabled,
    set_progress,
)
from repro.obs.spans import (
    PATH_SEP,
    Span,
    add_sink,
    attached,
    clear_sinks,
    current_span,
    event,
    remove_sink,
    span,
)
from repro.obs.trace import (
    StageRow,
    TraceError,
    TraceSummary,
    read_trace,
    summarize_records,
    summarize_trace,
)

__all__ = [
    "PATH_SEP",
    "Algorithm1Stats",
    "CollectorSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "SolveProgress",
    "SolveStats",
    "Span",
    "StageRow",
    "TraceError",
    "TraceSummary",
    "TrajectorySample",
    "TreeSink",
    "add_sink",
    "attached",
    "clear_sinks",
    "configure_logging",
    "convergence_rows",
    "counter",
    "current_span",
    "event",
    "gauge",
    "get_logger",
    "histogram",
    "parse_level",
    "progress_enabled",
    "read_trace",
    "registry",
    "remove_sink",
    "render_tree",
    "replay_records",
    "set_progress",
    "span",
    "summarize_records",
    "summarize_trace",
]
