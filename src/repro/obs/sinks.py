"""Span sinks: JSONL trace files and human-readable timing trees.

Every JSONL line is a self-contained JSON object carrying at least
``type``, ``name``, ``duration_s`` and ``parent`` — the invariant offline
tooling (and the test suite) relies on.  Three record types exist:

``span``
    A finished stage: ``path`` is the full ``" > "``-joined location,
    ``parent`` the enclosing path (``null`` at the root), ``t_s`` the
    monotonic start timestamp, ``attrs`` free-form stage attributes.
``event``
    A point in time (``duration_s`` is ``0.0``), e.g. a flow fallback.
``metric``
    One registry instrument, written by :meth:`JsonlSink.write_metrics`
    when a run finishes; ``parent`` is ``null`` and ``duration_s`` ``0.0``.
"""

from __future__ import annotations

import io
import json
import pathlib
import threading
from typing import Iterable, Mapping, Sequence

from repro.obs.spans import PATH_SEP, Span, SpanSink, active_sinks


class JsonlSink:
    """Append spans/events to a file, one JSON object per line.

    Accepts a path (opened lazily, closed by :meth:`close`) or any
    writable text file object (left open for the caller to manage).
    """

    def __init__(self, target: str | pathlib.Path | io.TextIOBase) -> None:
        if isinstance(target, (str, pathlib.Path)):
            self._file: io.TextIOBase = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.lines_written = 0
        # Portfolio lanes emit spans from racing threads; a lock keeps
        # every JSONL line whole (interleaved writes would tear records).
        self._lock = threading.Lock()

    def _write(self, record: Mapping) -> None:
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            self._file.write(line)
            self.lines_written += 1

    def on_span(self, span: Span) -> None:
        self._write(span.to_record())

    def on_event(self, record: dict) -> None:
        self._write(record)

    def on_record(self, record: Mapping) -> None:
        """Append an already-flattened record (see :func:`replay_records`)."""
        self._write(record)

    def write_metrics(self, snapshot: Mapping[str, Mapping]) -> None:
        """Append one ``metric`` line per registry instrument."""
        for name, data in snapshot.items():
            self._write({
                "type": "metric",
                "name": name,
                "parent": None,
                "duration_s": 0.0,
                **data,
            })

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TreeSink:
    """Collect spans in memory and render an aggregated timing tree.

    Spans sharing a path are merged into one node (count + total time), so
    the 25 ``iteration`` spans of an Algorithm 1 run render as one line.
    """

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self.events: list[dict] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span.to_record())

    def on_event(self, record: dict) -> None:
        self.events.append(record)

    def on_record(self, record: dict) -> None:
        """Route a replayed record to the span or event list by its type."""
        if record.get("type") == "span":
            self.spans.append(record)
        else:
            self.events.append(record)

    def render(self) -> str:
        """Indented tree: one line per distinct path, ordered by first visit."""
        return render_tree(self.spans)


class CollectorSink:
    """In-memory span/event collector (list of JSONL-shaped records).

    Doubles as the transport format for process-parallel sweeps: a worker
    attaches a collector, ships ``records`` back to the parent (they are
    plain JSON-ready dicts, hence picklable), and the parent merges them
    into its own sinks with :func:`replay_records`.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def on_span(self, span: Span) -> None:
        self.records.append(span.to_record())

    def on_event(self, record: dict) -> None:
        self.records.append(record)

    def on_record(self, record: dict) -> None:
        self.records.append(record)


def replay_records(
    records: Iterable[Mapping],
    sinks: Sequence[SpanSink] | None = None,
) -> None:
    """Feed already-flattened records into sinks (worker → parent merge).

    ``sinks`` defaults to the currently attached set.  Only sinks exposing
    ``on_record`` participate — the record is no longer a live
    :class:`Span`, so the ``on_span`` protocol does not apply.
    """
    targets = [
        sink
        for sink in (active_sinks() if sinks is None else sinks)
        if hasattr(sink, "on_record")
    ]
    for record in records:
        for sink in targets:
            sink.on_record(record)


def render_tree(spans: list[Mapping]) -> str:
    """Aggregate span records by path and render an indented tree."""
    order: list[str] = []
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in spans:
        path = record["path"]
        if path not in totals:
            order.append(path)
            totals[path] = 0.0
            counts[path] = 0
        totals[path] += record["duration_s"]
        counts[path] += 1
    if not order:
        return "(no spans recorded)"
    # Children finish before their parents, so a stable sort by path depth
    # is not needed; re-order parents before children lexically by path.
    order.sort(key=lambda p: p.split(PATH_SEP))
    width = max(
        len("  " * p.count(PATH_SEP) + p.split(PATH_SEP)[-1]) for p in order
    )
    lines = []
    for path in order:
        depth = path.count(PATH_SEP)
        label = "  " * depth + path.split(PATH_SEP)[-1]
        lines.append(
            f"{label.ljust(width)}  {counts[path]:>5}x  {totals[path]:>10.3f}s"
        )
    return "\n".join(lines)
