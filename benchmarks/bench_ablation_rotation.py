"""Ablation A4: Freeze vs Rotate (the two columns of Table I).

Step 2.1's rotation exists because freezing pins critical-path ops to
(typically hot) PEs in every context; rotating each context's frozen path
among the 8 fabric symmetries reduces that pinned overlap.  This ablation
measures both modes on high-utilisation benchmarks (where Table I shows
the largest Freeze->Rotate improvements, e.g. B22: 1.56 -> 2.06) and
records the frozen-stress overlap that rotation removed.

Run::

    pytest benchmarks/bench_ablation_rotation.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_flow, scaled_entry
from repro.benchgen.synth import build_benchmark

#: High-utilisation entries, where rotation matters most in Table I.
BENCHMARKS = ("B19", "B22")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_freeze_vs_rotate(benchmark, name):
    entry = scaled_entry(name)
    design, fabric = build_benchmark(entry.spec())

    def run_both():
        freeze = bench_flow("freeze").run(design, fabric)
        rotate = bench_flow("rotate").run(design, fabric)
        return freeze, rotate

    freeze, rotate = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert freeze.cpd_preserved and rotate.cpd_preserved
    # Frozen-op overlap: rotation distributes the pinned critical ops.
    def max_frozen_overlap(result):
        per_pe: dict[int, float] = {}
        for op, pe in result.remap.frozen.positions.items():
            per_pe[pe] = per_pe.get(pe, 0.0) + design.ops[op].stress_ns
        return max(per_pe.values(), default=0.0)

    overlap_freeze = max_frozen_overlap(freeze)
    overlap_rotate = max_frozen_overlap(rotate)
    assert overlap_rotate <= overlap_freeze + 1e-9

    # The Table I shape: Rotate's gain is at least competitive with
    # Freeze's (ties allowed; the paper's low-utilisation rows tie too).
    assert rotate.mttf_increase >= freeze.mttf_increase * 0.9

    benchmark.extra_info.update(
        {
            "benchmark": entry.name,
            "freeze_increase": round(freeze.mttf_increase, 3),
            "rotate_increase": round(rotate.mttf_increase, 3),
            "paper_freeze": entry.freeze_ref,
            "paper_rotate": entry.rotate_ref,
            "frozen_overlap_freeze_ns": round(overlap_freeze, 3),
            "frozen_overlap_rotate_ns": round(overlap_rotate, 3),
        }
    )
