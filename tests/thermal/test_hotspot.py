"""Thermal-simulator facade tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging import compute_stress_map
from repro.arch import Fabric
from repro.errors import ThermalError
from repro.thermal import ThermalSimulator


@pytest.fixture
def simulator():
    return ThermalSimulator(Fabric(4, 4))


class TestSimulate:
    def test_report_shapes(self, simulator):
        duty = np.zeros((3, 16))
        duty[0, 0] = 0.5
        report = simulator.simulate(duty)
        assert report.per_context_k.shape == (3, 16)
        assert report.accumulated_k.shape == (16,)

    def test_accumulated_is_context_mean(self, simulator):
        duty = np.zeros((2, 16))
        duty[0, 0] = 0.6
        report = simulator.simulate(duty)
        np.testing.assert_allclose(
            report.accumulated_k, report.per_context_k.mean(axis=0)
        )

    def test_hottest_pe_tracks_duty(self, simulator):
        duty = np.zeros((2, 16))
        duty[0, 9] = 0.9
        duty[1, 9] = 0.9
        report = simulator.simulate(duty)
        assert report.hottest_pe == 9
        assert report.peak_k == report.temperature_of(9)

    def test_shape_validation(self, simulator):
        with pytest.raises(ThermalError):
            simulator.simulate(np.zeros((2, 9)))
        with pytest.raises(ThermalError):
            simulator.simulate(np.zeros(16))

    def test_simulate_average_single_map(self, simulator):
        temps = simulator.simulate_average(np.full(16, 0.3))
        assert temps.shape == (16,)
        assert np.all(temps > 0)


class TestIntegrationWithStress:
    def test_from_stress_map(self, synth_design, synth_floorplan):
        stress = compute_stress_map(synth_design, synth_floorplan)
        simulator = ThermalSimulator(synth_floorplan.fabric)
        report = simulator.simulate(stress.duty_per_context())
        assert report.per_context_k.shape == (
            synth_design.num_contexts,
            synth_floorplan.fabric.num_pes,
        )
        # The busiest corner of the aging-unaware floorplan is the hotspot.
        counts = synth_floorplan.usage_counts()
        busy = int(np.argmax(stress.accumulated_ns))
        assert report.accumulated_k[busy] >= np.median(report.accumulated_k)
