"""Cross-cutting validators for architecture-level objects.

These are used at flow boundaries (after placement, after re-mapping) so
that a buggy optimisation step fails loudly instead of producing a silently
illegal configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arch.context import Floorplan
from repro.errors import MappingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arch.fabric import Fabric
    from repro.hls.allocate import MappedDesign


def check_design_fits(design: "MappedDesign", fabric: "Fabric") -> None:
    """Verify a mapped design is placeable on ``fabric`` at all.

    Run at the :meth:`repro.core.flow.AgingAwareFlow.run` boundary so that
    an inconsistent design/fabric pair raises a typed
    :class:`~repro.errors.MappingError` naming the offending operation or
    context *before* any expensive phase starts, instead of surfacing as an
    assertion (or a silently wrong floorplan) deep inside placement.
    """
    if design.num_contexts < 1:
        raise MappingError(
            f"design {design.name!r} declares {design.num_contexts} contexts"
        )
    known_ops = set(design.ops)
    per_context: dict[int, int] = {}
    for op_id, info in design.ops.items():
        if not 0 <= info.context < design.num_contexts:
            raise MappingError(
                f"op {op_id} of design {design.name!r} is scheduled in "
                f"context {info.context}, outside 0..{design.num_contexts - 1}"
            )
        per_context[info.context] = per_context.get(info.context, 0) + 1
    for context, used in sorted(per_context.items()):
        if used > fabric.num_pes:
            raise MappingError(
                f"design {design.name!r} context {context} needs {used} PEs "
                f"but fabric {fabric.rows}x{fabric.cols} has only "
                f"{fabric.num_pes}"
            )
    for src, dst in design.compute_edges:
        for end in (src, dst):
            if end not in known_ops:
                raise MappingError(
                    f"design {design.name!r} edge ({src}, {dst}) references "
                    f"unknown op {end}"
                )
    for _, dst in design.input_edges:
        if dst not in known_ops:
            raise MappingError(
                f"design {design.name!r} input edge targets unknown op {dst}"
            )
    for src, _ in design.output_edges:
        if src not in known_ops:
            raise MappingError(
                f"design {design.name!r} output edge reads unknown op {src}"
            )


def check_same_schedule(original: Floorplan, remapped: Floorplan) -> None:
    """Verify a re-mapping changed only PE bindings, never the schedule.

    The paper's Phase 2 re-binds operations to new PEs *within* their
    context (Section IV); moving an operation across contexts would change
    the latency.  Raises :class:`MappingError` on any difference.
    """
    if original.num_contexts != remapped.num_contexts:
        raise MappingError(
            f"context count changed: {original.num_contexts} -> "
            f"{remapped.num_contexts}"
        )
    if set(original.ops) != set(remapped.ops):
        raise MappingError("re-mapping added or removed operations")
    moved_context = [
        op
        for op in original.ops
        if original.context_of[op] != remapped.context_of[op]
    ]
    if moved_context:
        raise MappingError(
            f"ops {moved_context[:10]} changed context during re-mapping"
        )


def check_frozen_ops(
    original: Floorplan,
    remapped: Floorplan,
    frozen_positions: dict[int, int],
) -> None:
    """Verify frozen (critical-path) ops sit exactly where they must.

    ``frozen_positions`` maps op id to its required PE index — the original
    PE in *Freeze* mode, or the rotated position in *Rotate* mode.
    """
    for op, required_pe in frozen_positions.items():
        if op not in remapped.pe_of:
            raise MappingError(f"frozen op {op} missing from re-mapped floorplan")
        actual = remapped.pe_of[op]
        if actual != required_pe:
            raise MappingError(
                f"frozen op {op} moved to PE {actual}, required PE {required_pe}"
            )
    check_same_schedule(original, remapped)


def check_capacity(floorplan: Floorplan) -> None:
    """Verify no context exceeds the fabric capacity."""
    for context in range(floorplan.num_contexts):
        used = len(floorplan.ops_in_context(context))
        if used > floorplan.fabric.num_pes:
            raise MappingError(
                f"context {context} binds {used} ops on a "
                f"{floorplan.fabric.num_pes}-PE fabric"
            )
    floorplan.validate()
