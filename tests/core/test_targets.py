"""Step-1 (ST_target lower bound) tests."""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import (
    RemapConfig,
    default_delta_ns,
    stress_target_lower_bound,
)


@pytest.fixture
def inputs(synth_design, synth_floorplan, fabric4):
    stress = compute_stress_map(synth_design, synth_floorplan)
    return synth_design, fabric4, synth_floorplan, stress


class TestBounds:
    def test_result_within_brackets(self, inputs):
        design, fabric, floorplan, stress = inputs
        result = stress_target_lower_bound(
            design, fabric, floorplan, stress, config=RemapConfig(time_limit_s=30)
        )
        assert stress.mean_accumulated_ns - 1e-9 <= result.st_target_ns
        assert result.st_target_ns <= stress.max_accumulated_ns + default_delta_ns(stress)
        assert result.st_low_ns == pytest.approx(stress.mean_accumulated_ns)
        assert result.st_up_ns == pytest.approx(stress.max_accumulated_ns)

    def test_target_is_delay_unaware_feasible(self, inputs):
        """An integral delay-unaware floorplan must exist at the target."""
        design, fabric, floorplan, stress = inputs
        result = stress_target_lower_bound(
            design, fabric, floorplan, stress, config=RemapConfig(time_limit_s=30)
        )
        assert result.stats.get("status") == "ok"

    def test_target_is_meaningfully_below_original_max(self, inputs):
        """The aging-unaware corner packing leaves lots of slack: the
        delay-unaware bound should bite well below the original max."""
        design, fabric, floorplan, stress = inputs
        result = stress_target_lower_bound(
            design, fabric, floorplan, stress, config=RemapConfig(time_limit_s=30)
        )
        assert result.st_target_ns < stress.max_accumulated_ns * 0.95

    def test_deterministic(self, inputs):
        design, fabric, floorplan, stress = inputs
        a = stress_target_lower_bound(
            design, fabric, floorplan, stress, config=RemapConfig(time_limit_s=30)
        )
        b = stress_target_lower_bound(
            design, fabric, floorplan, stress, config=RemapConfig(time_limit_s=30)
        )
        assert a.st_target_ns == pytest.approx(b.st_target_ns)


class TestDelta:
    def test_default_delta_positive(self, inputs):
        *_, stress = inputs
        delta = default_delta_ns(stress)
        assert delta > 0

    def test_default_delta_span_fraction(self, inputs):
        *_, stress = inputs
        span = stress.max_accumulated_ns - stress.mean_accumulated_ns
        delta = default_delta_ns(stress)
        assert delta >= span / 20 - 1e-12

    def test_floor_for_degenerate_span(self):
        import numpy as np

        from repro.aging import StressMap

        uniform = StressMap(
            per_context_ns=np.full((2, 4), 1.0), clock_period_ns=5.0
        )
        assert default_delta_ns(uniform) > 0
