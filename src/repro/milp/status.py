"""Solve statuses and solution objects returned by solver backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import InfeasibleError, ModelError, SolverError
from repro.milp.expr import Variable
from repro.obs.solverstats import SolveStats


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``OPTIMAL``    — proven optimal (or feasible for pure feasibility models).
    ``FEASIBLE``   — a feasible incumbent exists but optimality is unproven
                     (e.g. node/iteration limit hit).
    ``INFEASIBLE`` — proven infeasible.
    ``UNBOUNDED``  — objective unbounded.
    ``ERROR``      — backend failure unrelated to the model's mathematics.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether variable values are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a model.

    Attributes
    ----------
    status:
        The :class:`SolveStatus` of the solve.
    objective:
        Objective value at the returned point (0.0 for feasibility models,
        ``nan`` when no solution exists).
    values:
        Mapping from :class:`Variable` to its value.  Empty when
        ``status.has_solution`` is false.
    solve_seconds:
        Wall-clock time spent inside the backend.
    message:
        Free-form backend diagnostics.
    stats:
        Per-solve convergence telemetry
        (:class:`~repro.obs.solverstats.SolveStats`): nodes explored,
        incumbent/bound trajectory, final MIP gap, LP->ILP pre-mapping
        counts, limit-hit reason.  Populated by both backends; ``None``
        only for solutions constructed outside a backend (e.g. injected
        faults).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Mapping[Variable, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    message: str = ""
    stats: SolveStats | None = None

    def __getitem__(self, var: Variable) -> float:
        if not self.status.has_solution:
            raise ModelError(f"no solution available (status={self.status.value})")
        try:
            return self.values[var]
        except KeyError as exc:
            raise ModelError(f"variable {var.name!r} not in solution") from exc

    def value(self, var: Variable, default: float | None = None) -> float:
        """Value of ``var``; ``default`` if the variable is not in the solution."""
        if var in self.values:
            return self.values[var]
        if default is None:
            raise ModelError(f"variable {var.name!r} not in solution")
        return default

    def require(self) -> "Solution":
        """Return ``self`` if a solution exists; raise a typed error otherwise.

        Proven infeasibility raises :class:`~repro.errors.InfeasibleError`;
        any other solution-less status (unbounded, backend error, limit
        without incumbent) raises :class:`~repro.errors.SolverError`.  Use
        at call sites where a solution is mandatory, so infeasibility is a
        typed outcome rather than a downstream ``KeyError``.
        """
        if self.status.has_solution:
            return self
        detail = f": {self.message}" if self.message else ""
        if self.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"model proven infeasible{detail}")
        raise SolverError(
            f"no solution available (status={self.status.value}){detail}"
        )

    def rounded(self, var: Variable, tol: float = 1e-6) -> int:
        """Integer value of a discrete variable, validating integrality."""
        raw = self[var]
        nearest = round(raw)
        if abs(raw - nearest) > tol:
            raise ModelError(f"variable {var.name!r} has non-integral value {raw}")
        return int(nearest)
