"""Fig. 2(b) regeneration benchmark (experiment F2b in DESIGN.md).

Fig. 2(b) plots the threshold-voltage shift of the limiting PE over time
for the original and the re-mapped floorplan: the re-mapped curve has a
lower slope and crosses the 10% failure threshold later.  This benchmark
computes both curves for a medium-utilisation benchmark and asserts those
shape properties, storing the CSV series as the experiment record.

Run::

    pytest benchmarks/bench_fig2b.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_flow, scaled_entry
from repro.aging import vth_curve
from repro.benchgen.synth import build_benchmark
from repro.report import series_csv


def test_fig2b_vth_curves(benchmark):
    entry = scaled_entry("B13")
    design, fabric = build_benchmark(entry.spec())
    flow = bench_flow("rotate")
    result = flow.run(design, fabric)

    def build_curves():
        horizon = 1.3 * result.remapped.mttf.mttf_s
        return (
            vth_curve(result.original.mttf, "original", horizon_s=horizon),
            vth_curve(result.remapped.mttf, "re-mapped", horizon_s=horizon),
        )

    original, remapped = benchmark.pedantic(build_curves, rounds=1, iterations=1)

    # Shape 1: both curves are monotone increasing.
    assert np.all(np.diff(original.shifts_v) >= -1e-12)
    assert np.all(np.diff(remapped.shifts_v) >= -1e-12)
    # Shape 2: the re-mapped curve never exceeds the original at the same
    # time (lower slope throughout, as drawn in the paper).
    assert np.all(remapped.shifts_v <= original.shifts_v + 1e-12)
    # Shape 3: the re-mapped MTTF (threshold crossing) is later.
    assert remapped.mttf_s >= original.mttf_s
    # Both curves share the same failure threshold line.
    assert remapped.failure_shift_v == original.failure_shift_v

    benchmark.extra_info.update(
        {
            "mttf_increase": round(result.mttf_increase, 3),
            "mttf_before_years": round(result.original.mttf.mttf_years, 2),
            "mttf_after_years": round(result.remapped.mttf.mttf_years, 2),
            "csv": series_csv([original, remapped]),
        }
    )
