"""Integration: a real flow run emits a complete, consistent trace."""

from __future__ import annotations

import json

import pytest

from repro.core import AgingAwareFlow, Algorithm1Config, FlowConfig, RemapConfig
from repro.obs import JsonlSink, attached, registry, summarize_trace


@pytest.fixture(scope="module")
def traced(tmp_path_factory, synth_design, fabric4):
    """One traced flow run shared by every assertion in this module."""
    path = tmp_path_factory.mktemp("obs") / "flow.jsonl"
    flow = AgingAwareFlow(
        FlowConfig(
            algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=30))
        )
    )
    with JsonlSink(path) as sink:
        with attached(sink):
            result = flow.run(synth_design, fabric4)
        sink.write_metrics(registry().snapshot())
    return path, result


def _spans(path):
    return [
        record
        for record in map(json.loads, path.read_text().splitlines())
        if record["type"] == "span"
    ]


class TestTraceContents:
    def test_every_line_has_contract_keys(self, traced):
        path, _ = traced
        for line in path.read_text().splitlines():
            record = json.loads(line)
            for key in ("name", "duration_s", "parent"):
                assert key in record

    def test_trace_covers_flow_stages(self, traced):
        path, _ = traced
        names = {record["name"] for record in _spans(path)}
        for stage in (
            "flow", "phase1", "phase2", "place_baseline", "algorithm1",
            "binary_search", "iteration", "milp_solve", "lp_relax", "thermal",
        ):
            assert stage in names, f"stage {stage!r} missing from trace"

    def test_stage_hierarchy(self, traced):
        path, _ = traced
        parents = {
            record["path"]: record["parent"] for record in _spans(path)
        }
        assert parents["flow"] is None
        assert parents["flow > phase1"] == "flow"
        assert parents["flow > phase2 > algorithm1"] == "flow > phase2"
        milp_solves = [
            p for p in parents if p.endswith("milp_solve")
        ]
        assert milp_solves, "no MILP solve span recorded"

    def test_elapsed_matches_flow_span(self, traced):
        path, result = traced
        (flow_record,) = [
            r for r in _spans(path) if r["name"] == "flow"
        ]
        assert flow_record["duration_s"] == pytest.approx(
            result.elapsed_s, rel=0.05
        )

    def test_remap_elapsed_from_span(self, traced):
        _, result = traced
        assert result.remap.elapsed_s > 0.0
        assert result.remap.elapsed_s <= result.elapsed_s

    def test_summary_total_within_ten_percent_of_elapsed(self, traced):
        path, result = traced
        summary = summarize_trace(path)
        assert summary.total_s == pytest.approx(result.elapsed_s, rel=0.10)

    def test_metrics_recorded(self, traced):
        path, _ = traced
        summary = summarize_trace(path)
        assert summary.metrics.get("thermal.grid_solves", {}).get("value", 0) > 0
        assert "algorithm1.iterations" in summary.metrics


class TestSolverTelemetry:
    """Every solve carries SolveStats; the run carries Algorithm1Stats."""

    def test_solver_spans_carry_stats_attrs(self, traced):
        path, _ = traced
        summary = summarize_trace(path)
        assert summary.solves, "no solver spans in the trace"
        for record in summary.solves:
            attrs = record["attrs"]
            assert "nodes" in attrs
            assert attrs["kind"] in ("milp", "lp")
            assert "status" in attrs

    def test_alg1_stats_event_emitted(self, traced):
        path, result = traced
        summary = summarize_trace(path)
        (run,) = summary.alg1_runs
        assert run["iterations"] == result.remap.alg1.iterations
        assert run["final_st_target_ns"] == pytest.approx(
            result.remap.alg1.final_st_target_ns
        )

    def test_remap_result_carries_alg1_stats(self, traced):
        _, result = traced
        alg1 = result.remap.alg1
        assert alg1.iterations >= 1
        assert len(alg1.verdicts) == alg1.iterations
        assert alg1.st_up_ns >= alg1.st_low_ns > 0.0
        assert alg1.solves > 0

    def test_solutions_expose_solve_stats(self, synth_design, fabric4):
        """API-level check: a direct solve returns populated SolveStats."""
        from repro.milp.model import Model
        from repro.milp.scipy_backend import ScipyBackend

        model = Model("stats_probe")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y >= 1)
        model.set_objective(x + 2 * y, minimize=True)
        solution = model.solve(ScipyBackend())
        stats = solution.stats
        assert stats is not None
        assert stats.backend == "highs"
        assert stats.kind == "milp"
        assert stats.incumbent is not None
        assert stats.elapsed_s > 0.0


class TestUntracedRuns:
    def test_flow_works_without_sinks(self, synth_design, fabric4):
        flow = AgingAwareFlow(
            FlowConfig(
                algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=30))
            )
        )
        result = flow.run(synth_design, fabric4)
        assert result.elapsed_s > 0.0
        assert result.mttf_increase >= 1.0
