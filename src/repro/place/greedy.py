"""Constructive aging-unaware placement.

Contexts are placed one after another, each packing greedily toward the
fabric's north-west corner: every op goes to the free PE minimising

``distance to the centroid of its placed producers  +  corner bias``.

The corner bias reproduces the bounding-box-minimising behaviour of the
commercial flow; because each context is packed independently against the
same corner, the same physical PEs are reused in every context — exactly
the accumulated-stress concentration of the paper's Fig. 2(a) top row.
"""

from __future__ import annotations

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.errors import MappingError
from repro.hls.allocate import MappedDesign


def _dependency_order(design: MappedDesign, context: int) -> list[int]:
    """Ops of one context in topological order of intra-context edges."""
    ops = [op.op_id for op in design.ops_in_context(context)]
    op_set = set(ops)
    preds: dict[int, set[int]] = {op: set() for op in ops}
    succs: dict[int, list[int]] = {op: [] for op in ops}
    for src, dst in design.compute_edges:
        if src in op_set and dst in op_set:
            preds[dst].add(src)
            succs[src].append(dst)
    import heapq

    ready = [op for op in ops if not preds[op]]
    heapq.heapify(ready)
    order: list[int] = []
    remaining = {op: len(preds[op]) for op in ops}
    while ready:
        op = heapq.heappop(ready)
        order.append(op)
        for succ in succs[op]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, succ)
    if len(order) != len(ops):
        raise MappingError(f"context {context} has a combinational cycle")
    return order


def greedy_place(
    design: MappedDesign,
    fabric: Fabric,
    corner_bias: float = 0.35,
) -> Floorplan:
    """Place ``design`` on ``fabric`` with the corner-packing heuristic.

    Parameters
    ----------
    corner_bias:
        Weight of the distance-to-corner term relative to the
        connectivity (centroid) term.  Larger values pack tighter and
        reuse fewer distinct PEs.
    """
    if design.max_context_size() > fabric.num_pes:
        raise MappingError(
            f"design needs {design.max_context_size()} PEs per context but the "
            f"fabric has only {fabric.num_pes}"
        )
    floorplan = Floorplan(fabric, design.num_contexts)
    producers: dict[int, list[int]] = {op: [] for op in design.ops}
    for src, dst in design.compute_edges:
        producers[dst].append(src)
    input_producers: dict[int, list[int]] = {op: [] for op in design.ops}
    for ordinal, dst in design.input_edges:
        input_producers[dst].append(ordinal)

    for context in range(design.num_contexts):
        free = set(range(fabric.num_pes))
        for op_id in _dependency_order(design, context):
            target = _preferred_position(
                op_id, floorplan, fabric, producers, input_producers
            )
            best_pe = None
            best_score = None
            for pe_index in free:
                pe = fabric.pe(pe_index)
                to_target = abs(pe.row - target[0]) + abs(pe.col - target[1])
                to_corner = pe.row + pe.col
                score = (to_target + corner_bias * to_corner, pe_index)
                if best_score is None or score < best_score:
                    best_score = score
                    best_pe = pe_index
            assert best_pe is not None  # capacity checked above
            floorplan.bind(op_id, context, best_pe)
            free.discard(best_pe)
    floorplan.validate()
    return floorplan


def _preferred_position(
    op_id: int,
    floorplan: Floorplan,
    fabric: Fabric,
    producers: dict[int, list[int]],
    input_producers: dict[int, list[int]],
) -> tuple[float, float]:
    """Centroid of the op's placed producers (PEs and input pads).

    Falls back to the corner when the op has no placed producers yet.
    """
    rows: list[float] = []
    cols: list[float] = []
    for producer in producers[op_id]:
        if producer in floorplan.pe_of:
            row, col = floorplan.position_of(producer)
            rows.append(float(row))
            cols.append(float(col))
    for ordinal in input_producers[op_id]:
        pad = fabric.input_pad(ordinal)
        rows.append(pad.row)
        cols.append(pad.col)
    if not rows:
        return (0.0, 0.0)
    return (sum(rows) / len(rows), sum(cols) / len(cols))
