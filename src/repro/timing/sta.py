"""Static timing analysis over placed multi-context designs.

Implements the paper's Eq. (4):

``path delay = sum(PE delays) + sum(wire delays)``

with wire delay = unit wire delay x Manhattan distance between the driver
and load of each *on-path* segment.  Following the paper's worked example
(Fig. 4b: "the delay of path1 is given by 2x3 (PE delay) + 1x1x2 (the wire
delay from PE1 to PE9)" — three PEs, two wires), a path consists only of
the operations chained combinationally within one context: wires from
registers or input pads into the first op, and from the last op to a pad,
are *not* charged to the path (operand registers latch at cycle
boundaries).  The design CPD is the maximum over all contexts (Section
V-B), and the critical paths are the chains achieving it — these are the
ops the re-mapper freezes (or rotates); because every wire of a path runs
between ops of the same context, freezing (or rigidly rotating) the chain
fixes the path delay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.context import Floorplan
from repro.errors import TimingError
from repro.hls.allocate import MappedDesign
from repro.kernels import vectorized
from repro.timing.graph import ContextTimingGraph, Endpoint, build_timing_graphs

#: Two delays within this many ns are considered equal (float guard).
DELAY_EPS = 1e-9


@dataclass(frozen=True)
class TimingPath:
    """One register-to-register combinational path (an op chain).

    Attributes
    ----------
    context:
        The context the chain executes in.
    chain:
        The op ids along the path, in order (length >= 1).  Per the
        paper's path model only the wires *between* these ops carry delay.
    """

    context: int
    chain: tuple[int, ...]

    def wire_segments(self) -> list[tuple[Endpoint, Endpoint]]:
        """(driver, load) endpoint pairs of every wire on the path."""
        return [
            (Endpoint.op(src), Endpoint.op(dst))
            for src, dst in zip(self.chain, self.chain[1:])
        ]

    def pe_delay_ns(self, design: MappedDesign) -> float:
        """Sum of PE delays along the chain (invariant under re-mapping)."""
        return sum(design.ops[op].delay_ns for op in self.chain)

    def wire_length(self, floorplan: Floorplan) -> float:
        """Total Manhattan wire length of the path under a floorplan."""
        total = 0.0
        for a, b in self.wire_segments():
            pa, pb = a.position(floorplan), b.position(floorplan)
            total += abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])
        return total

    def delay_ns(self, design: MappedDesign, floorplan: Floorplan) -> float:
        """Full path delay under a floorplan (Eq. 4)."""
        return self.pe_delay_ns(design) + floorplan.fabric.wire_delay(
            self.wire_length(floorplan)
        )

    def __repr__(self) -> str:
        ops = "->".join(str(op) for op in self.chain)
        return f"TimingPath(ctx{self.context}: {ops})"


@dataclass
class ContextTiming:
    """STA results for one context."""

    context: int
    arrival_ns: dict[int, float]
    cpd_ns: float
    critical_ops: list[int]  # argmax completion ops (path endpoints)


@dataclass
class TimingReport:
    """STA results for a whole design under one floorplan."""

    per_context: list[ContextTiming]
    cpd_ns: float

    def context(self, index: int) -> ContextTiming:
        return self.per_context[index]


def _wire_ns(
    floorplan: Floorplan, a: Endpoint, b: Endpoint
) -> float:
    pa, pb = a.position(floorplan), b.position(floorplan)
    length = abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])
    return floorplan.fabric.wire_delay(length)


def analyze_context(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> ContextTiming:
    """Arrival times and CPD of one context under a floorplan.

    Chains start at time zero (operand registers latch at the cycle
    boundary; register/pad input wires carry no path delay — see module
    docstring) and accumulate PE + intra-context wire delays.

    Under ``REPRO_KERNELS=vector`` (the default) the arrival propagation
    runs on the levelized :mod:`repro.kernels.sta` kernel, bit-identical
    to the scalar loop below; ``REPRO_KERNELS=scalar`` (or a floorplan
    missing one of the graph's ops) falls back to the scalar path.
    """
    if vectorized():
        result = _sta_kernel.arrivals(graph, floorplan)
        if result is not None:
            arrival_ns, cpd_ns, critical_ops = result
            return ContextTiming(
                context=graph.context,
                arrival_ns=arrival_ns,
                cpd_ns=cpd_ns,
                critical_ops=critical_ops,
            )
    return _analyze_context_scalar(graph, floorplan)


def _analyze_context_scalar(
    graph: ContextTimingGraph, floorplan: Floorplan
) -> ContextTiming:
    """The original per-edge Python STA loop (the kernels' reference)."""
    arrival: dict[int, float] = {}
    preds = graph.intra_preds()
    for op in graph.topological_ops():
        start = 0.0
        for pred in preds[op]:
            start = max(
                start,
                arrival[pred]
                + _wire_ns(floorplan, Endpoint.op(pred), Endpoint.op(op)),
            )
        arrival[op] = start + graph.delay_of[op]

    cpd = 0.0
    critical: list[int] = []
    for op in graph.ops:
        completion = arrival[op]
        if completion > cpd + DELAY_EPS:
            cpd = completion
            critical = [op]
        elif completion > cpd - DELAY_EPS:
            critical.append(op)
    return ContextTiming(
        context=graph.context, arrival_ns=arrival, cpd_ns=cpd, critical_ops=critical
    )


def analyze(
    design: MappedDesign,
    floorplan: Floorplan,
    graphs: list[ContextTimingGraph] | None = None,
) -> TimingReport:
    """Full-design STA: per-context CPD and the global CPD.

    Under ``REPRO_KERNELS=vector`` every context's arrivals propagate in
    one fused levelized pass (:func:`repro.kernels.sta.analyze_design`),
    bit-identical per context to :func:`analyze_context`.
    """
    graphs = graphs or build_timing_graphs(design)
    if vectorized():
        results = _sta_kernel.analyze_design(graphs, floorplan)
        if results is not None:
            per_context = [
                ContextTiming(
                    context=graph.context,
                    arrival_ns=arrival_ns,
                    cpd_ns=cpd_ns,
                    critical_ops=critical_ops,
                )
                for graph, (arrival_ns, cpd_ns, critical_ops) in zip(
                    graphs, results
                )
            ]
            cpd = max((ct.cpd_ns for ct in per_context), default=0.0)
            return TimingReport(per_context=per_context, cpd_ns=cpd)
    per_context = [analyze_context(g, floorplan) for g in graphs]
    cpd = max((ct.cpd_ns for ct in per_context), default=0.0)
    return TimingReport(per_context=per_context, cpd_ns=cpd)


def critical_paths(
    graph: ContextTimingGraph,
    floorplan: Floorplan,
    timing: ContextTiming | None = None,
    max_paths: int = 64,
) -> list[TimingPath]:
    """All maximal-delay paths of one context (up to ``max_paths``).

    Backtracks from each critical endpoint along tight edges.  Each
    distinct tight chain yields one :class:`TimingPath`, including the
    tight entry endpoint (register/pad) and exit pad when those wires are
    part of the maximal delay.
    """
    timing = timing or analyze_context(graph, floorplan)
    preds = graph.intra_preds()
    results: list[TimingPath] = []

    def backtrack(op: int, suffix: tuple[int, ...]) -> None:
        if len(results) >= max_paths:
            return
        chain = (op, *suffix)
        target = timing.arrival_ns[op] - graph.delay_of[op]
        if target <= DELAY_EPS:
            results.append(TimingPath(context=graph.context, chain=chain))
            return
        tight_found = False
        for pred in preds[op]:
            pred_arr = timing.arrival_ns[pred] + _wire_ns(
                floorplan, Endpoint.op(pred), Endpoint.op(op)
            )
            if abs(pred_arr - target) <= DELAY_EPS:
                tight_found = True
                backtrack(pred, chain)
        if not tight_found:
            raise TimingError(
                f"context {graph.context}: op {op} start {target:.3f}ns has "
                "no explaining edge"
            )

    for op in timing.critical_ops:
        if abs(timing.arrival_ns[op] - timing.cpd_ns) <= DELAY_EPS:
            backtrack(op, ())
    return results


def all_critical_paths(
    design: MappedDesign,
    floorplan: Floorplan,
    graphs: list[ContextTimingGraph] | None = None,
    report: TimingReport | None = None,
    max_paths_per_context: int = 64,
) -> list[TimingPath]:
    """Critical paths of every context whose CPD equals the global CPD.

    The paper freezes the critical paths *of each context* (Section V-B.1,
    "a set of N_i critical paths in context i"), i.e. each context's own
    longest chains, so re-mapping can never make any context exceed its
    original worst — we follow that definition.
    """
    graphs = graphs or build_timing_graphs(design)
    report = report or analyze(design, floorplan, graphs)
    paths: list[TimingPath] = []
    for graph, timing in zip(graphs, report.per_context):
        if not graph.ops:
            continue
        paths.extend(
            critical_paths(graph, floorplan, timing, max_paths_per_context)
        )
    return paths


# Imported last: repro.kernels.sta itself imports DELAY_EPS from this
# module, so the import must follow the definitions above.
from repro.kernels import sta as _sta_kernel  # noqa: E402
