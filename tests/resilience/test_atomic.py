"""The shared atomic write helper: durability, formatting, scratch hygiene."""

from __future__ import annotations

import json
import os

import pytest

from repro.io.serialize import save_json
from repro.resilience import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"

    def test_replace_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "old content")
        atomic_write_text(path, "new content")
        assert path.read_text() == "new content"

    def test_no_scratch_litter_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "x.txt", "hello")
        assert [p.name for p in tmp_path.iterdir()] == ["x.txt"]

    def test_no_scratch_litter_after_failure(self, tmp_path):
        class Exploding:
            """json can't serialize this; the write must fail cleanly."""

        with pytest.raises(TypeError):
            atomic_write_json(tmp_path / "x.json", {"bad": Exploding()})
        # Destination untouched, scratch removed.
        assert list(tmp_path.iterdir()) == []

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, {"ok": 1})

        class Exploding:
            pass

        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": Exploding()})
        assert json.loads(path.read_text()) == {"ok": 1}

    def test_json_matches_save_json_bytes(self, tmp_path):
        """Both durable-JSON paths must produce identical bytes."""
        document = {"b": [1, 2], "a": {"nested": True}, "pi": 3.125}
        save_json(document, tmp_path / "via_save.json")
        atomic_write_json(tmp_path / "via_atomic.json", document)
        assert (
            (tmp_path / "via_save.json").read_bytes()
            == (tmp_path / "via_atomic.json").read_bytes()
        )

    def test_concurrent_writers_leave_one_complete_version(self, tmp_path):
        # Same-PID sequential writers share a scratch name; distinct
        # content per write must still land whole.
        path = tmp_path / "contested.json"
        for n in range(20):
            atomic_write_json(path, {"version": n, "pad": "x" * 256})
        assert json.loads(path.read_text())["version"] == 19
        assert os.listdir(tmp_path) == ["contested.json"]
