"""Placement cost-function tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch import Fabric
from repro.place import (
    PlacementCost,
    bounding_box,
    bounding_box_area,
    edge_positions,
    wirelength,
)


class TestBoundingBox:
    def test_empty(self):
        assert bounding_box([]) == (0.0, 0.0, 0.0, 0.0)
        assert bounding_box_area([]) == 0.0

    def test_single_point_area_one(self):
        assert bounding_box_area([(2, 3)]) == 1.0

    def test_rectangle(self):
        area = bounding_box_area([(0, 0), (2, 3)])
        assert area == 12.0  # 3 rows x 4 cols

    def test_bounds(self):
        assert bounding_box([(1, 5), (3, 2)]) == (1, 2, 3, 5)


class TestWirelength:
    def test_zero_for_coincident(self):
        assert wirelength([((1, 1), (1, 1))]) == 0.0

    def test_manhattan_sum(self):
        edges = [((0, 0), (1, 2)), ((2, 2), (0, 0))]
        assert wirelength(edges) == 3 + 4

    def test_edge_positions_skips_unplaced(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        resolved = edge_positions([(0, 1), (0, 9)], positions)
        assert len(resolved) == 1


class TestPlacementCost:
    def test_weighted_combination(self):
        fabric = Fabric(4, 4)
        cost = PlacementCost(wl_weight=1.0, bbox_weight=2.0)
        positions = {0: (0.0, 0.0), 1: (0.0, 1.0)}
        edges = [((0.0, 0.0), (0.0, 1.0))]
        # wl = 1, bbox = 1x2 = 2 -> 1 + 4
        assert cost.evaluate(fabric, positions, edges) == pytest.approx(5.0)

    def test_empty_design_costs_nothing(self):
        fabric = Fabric(2, 2)
        assert PlacementCost().evaluate(fabric, {}, []) == 0.0


points = st.tuples(
    st.floats(0, 15, allow_nan=False), st.floats(0, 15, allow_nan=False)
)


class TestProperties:
    @given(pts=st.lists(points, min_size=1, max_size=30))
    def test_area_at_least_one_cell(self, pts):
        assert bounding_box_area(pts) >= 1.0

    @given(pts=st.lists(points, min_size=2, max_size=30))
    def test_area_monotone_under_insertion(self, pts):
        assert bounding_box_area(pts) >= bounding_box_area(pts[:-1])

    @given(a=points, b=points)
    def test_wirelength_symmetry(self, a, b):
        assert wirelength([(a, b)]) == wirelength([(b, a)])
