"""Per-context timing graphs.

A timing path in a multi-context CGRRA runs register-to-register inside one
context (paper Section V-B: "the critical path delay is the longest path
delay among all contexts").  Registers live at PE outputs: a value produced
in an earlier context is read from its producer PE's output register, so
the wire from that *physical location* to the consumer counts toward the
consumer context's path delay; likewise wires from input pads and to
output pads.

This module builds, for each context, the DAG of intra-context
combinational edges plus the set of fixed-at-cycle-start *entry* sources
(earlier-context producers, input pads) and *exit* sinks (output pads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.context import Floorplan
from repro.errors import TimingError
from repro.hls.allocate import MappedDesign
from repro.kernels import vectorized


class EndpointKind(enum.Enum):
    """What a wire endpoint is anchored to."""

    OP = "op"       # a (re-mappable) operation's PE
    IN_PAD = "in"   # primary-input pad (fixed)
    OUT_PAD = "out"  # primary-output pad (fixed)


@dataclass(frozen=True)
class Endpoint:
    """One end of a wire segment: an op or an I/O pad."""

    kind: EndpointKind
    ident: int  # op id, or pad ordinal

    @classmethod
    def op(cls, op_id: int) -> "Endpoint":
        return cls(EndpointKind.OP, op_id)

    @classmethod
    def in_pad(cls, ordinal: int) -> "Endpoint":
        return cls(EndpointKind.IN_PAD, ordinal)

    @classmethod
    def out_pad(cls, ordinal: int) -> "Endpoint":
        return cls(EndpointKind.OUT_PAD, ordinal)

    def position(self, floorplan: Floorplan) -> tuple[float, float]:
        """Physical position of this endpoint under a floorplan."""
        if self.kind is EndpointKind.OP:
            row, col = floorplan.position_of(self.ident)
            return (float(row), float(col))
        if self.kind is EndpointKind.IN_PAD:
            pad = floorplan.fabric.input_pad(self.ident)
        else:
            pad = floorplan.fabric.output_pad(self.ident)
        return (pad.row, pad.col)

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.ident}"


@dataclass
class ContextTimingGraph:
    """The combinational timing structure of one context.

    Attributes
    ----------
    context:
        Context index.
    ops:
        Op ids executing in this context.
    intra_edges:
        ``(src, dst)`` pairs, both in this context (combinational chains).
    entries:
        ``{op_id: [Endpoint, ...]}`` — register/pad sources feeding each op
        at cycle start (earlier-context producers and input pads).
    exits:
        ``{op_id: [Endpoint, ...]}`` — output pads driven by each op.
    delay_of:
        ``{op_id: PE delay in ns}``.
    """

    context: int
    ops: list[int]
    intra_edges: list[tuple[int, int]] = field(default_factory=list)
    entries: dict[int, list[Endpoint]] = field(default_factory=dict)
    exits: dict[int, list[Endpoint]] = field(default_factory=dict)
    delay_of: dict[int, float] = field(default_factory=dict)

    def intra_preds(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {op: [] for op in self.ops}
        for src, dst in self.intra_edges:
            preds[dst].append(src)
        return preds

    def intra_succs(self) -> dict[int, list[int]]:
        succs: dict[int, list[int]] = {op: [] for op in self.ops}
        for src, dst in self.intra_edges:
            succs[src].append(dst)
        return succs

    def topological_ops(self) -> list[int]:
        """Ops in topological order of the intra-context DAG."""
        preds = self.intra_preds()
        remaining = {op: len(p) for op, p in preds.items()}
        succs = self.intra_succs()
        import heapq

        ready = [op for op, count in remaining.items() if count == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            op = heapq.heappop(ready)
            order.append(op)
            for succ in succs[op]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != len(self.ops):
            raise TimingError(f"context {self.context} timing graph is cyclic")
        return order


def build_timing_graphs(design: MappedDesign) -> list[ContextTimingGraph]:
    """One :class:`ContextTimingGraph` per context of the design.

    Positions are *not* baked in: the same graphs serve the original and
    every re-mapped floorplan (paths change delay, not structure, because
    re-mapping never moves ops across contexts).
    """
    graphs = [
        ContextTimingGraph(
            context=c,
            ops=[op.op_id for op in design.ops_in_context(c)],
        )
        for c in range(design.num_contexts)
    ]
    for graph in graphs:
        for op_id in graph.ops:
            graph.entries[op_id] = []
            graph.exits[op_id] = []
            graph.delay_of[op_id] = design.ops[op_id].delay_ns

    for src, dst in design.compute_edges:
        src_ctx = design.ops[src].context
        dst_ctx = design.ops[dst].context
        if src_ctx == dst_ctx:
            graphs[dst_ctx].intra_edges.append((src, dst))
        else:
            # Register read: the wire runs from the producer's physical PE.
            graphs[dst_ctx].entries[dst].append(Endpoint.op(src))
    for ordinal, dst in design.input_edges:
        ctx = design.ops[dst].context
        graphs[ctx].entries[dst].append(Endpoint.in_pad(ordinal))
    for src, ordinal in design.output_edges:
        ctx = design.ops[src].context
        graphs[ctx].exits[src].append(Endpoint.out_pad(ordinal))
    if graphs and vectorized():
        # The kernels' fused lowering is pure structure — it depends only
        # on what this function just built, never on a floorplan — so it
        # is derived here with the graphs rather than lazily inside the
        # first (timed) STA call.
        from repro.kernels import sta as sta_kernel

        sta_kernel.lower_design(graphs)
    return graphs
