"""Solver convergence telemetry (``repro.obs.solverstats``).

The paper's whole contribution is a solver loop — Algorithm 1 relaxes
``ST_target`` by ``Delta`` until the Eq. (3) MILP (via the two-step
LP->ILP relaxation) yields a CPD-preserving floorplan.  This module gives
that loop a flight recorder:

* :class:`SolveStats` — one record per backend solve (nodes explored,
  incumbent/bound trajectory sampled over time, final MIP gap, LP
  relaxation objective, LP->ILP pre-mapping counts, limit-hit reason),
  attached to every :class:`~repro.milp.status.Solution` the backends
  return and mirrored into the ``solver`` span attributes so traces can
  be aggregated offline into a convergence table;
* :class:`Algorithm1Stats` — the outer-loop record (Step 1 binary-search
  effort, the ``ST_target``/``Delta`` relaxation trajectory, per-iteration
  CPD verdicts), attached to
  :class:`~repro.core.algorithm1.RemapResult` and emitted as an
  ``algorithm1.stats`` trace event;
* :class:`SolveProgress` — an opt-in live stderr progress line
  (incumbent/gap/nodes/elapsed) for long branch-and-bound solves,
  activated by ``--solver-progress`` or ``REPRO_SOLVER_PROGRESS=1``.

Everything here is plain data (no solver imports), so the MILP layer and
the trace tooling can both depend on it without cycles.
"""

from __future__ import annotations

import math
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: Environment variable that switches the live progress line on.
PROGRESS_ENV_VAR = "REPRO_SOLVER_PROGRESS"

#: Seconds between live progress updates.
PROGRESS_INTERVAL_S = 1.0

#: Keep at most this many trajectory samples per solve; the recorder
#: thins to every other sample when full, so long solves keep a uniform,
#: bounded history instead of a dense prefix.
MAX_TRAJECTORY_SAMPLES = 256


def relative_gap(incumbent: float | None, bound: float | None) -> float | None:
    """HiGHS-style relative MIP gap ``|inc - bound| / max(1e-9, |inc|)``.

    ``None`` when either side is missing or non-finite (no incumbent yet,
    or an unbounded relaxation).
    """
    if incumbent is None or bound is None:
        return None
    if not (math.isfinite(incumbent) and math.isfinite(bound)):
        return None
    return abs(incumbent - bound) / max(1e-9, abs(incumbent))


@dataclass
class TrajectorySample:
    """One point of a solve's incumbent/bound history."""

    t_s: float
    nodes: int
    incumbent: float | None
    bound: float | None

    def to_dict(self) -> dict:
        return {
            "t_s": round(self.t_s, 6),
            "nodes": self.nodes,
            "incumbent": self.incumbent,
            "bound": self.bound,
        }


@dataclass
class SolveStats:
    """Telemetry of one backend solve, attached to its ``Solution``.

    The supported way to learn what a solve did: the record travels with
    the :class:`~repro.milp.status.Solution`, so concurrent or nested
    solves cannot clobber each other's numbers (mutable backend state such
    as the former ``BranchBoundBackend.last_node_count`` could).
    """

    backend: str = ""
    kind: str = "milp"  # "milp" | "lp"
    nodes: int = 0
    #: Objective of the returned incumbent (backend sense), None when no
    #: incumbent exists.
    incumbent: float | None = None
    #: Best proven dual bound at termination.
    best_bound: float | None = None
    #: Final relative MIP gap (None for LPs / no-incumbent outcomes).
    mip_gap: float | None = None
    #: Objective of the root LP relaxation, when the backend solved one.
    lp_objective: float | None = None
    #: Why the solve stopped early: "" (ran to completion), "node_limit",
    #: "time_limit", "deadline", "gap_limit", "solver_error",
    #: "fault_injected", "cancelled" (a portfolio race was decided
    #: elsewhere), "incomplete" (the prober could not round the LP).
    limit_reason: str = ""
    #: The portfolio lane that produced this solution (set by the racing
    #: executor on the winner; "" for serial solves).
    lane: str = ""
    elapsed_s: float = 0.0
    trajectory: list[TrajectorySample] = field(default_factory=list)
    #: Whether the solve was seeded with a validated incumbent hint.
    warm_started: bool = False
    #: Objective of the accepted hint (hint quality: compare against the
    #: final ``incumbent`` to see how much the search improved on it).
    hint_objective: float | None = None
    # -- LP->ILP pre-mapping (the paper's 0.95 threshold), recorded on the
    # residual-ILP solve of the two-step method ------------------------------
    fix_threshold: float | None = None
    groups_total: int | None = None
    groups_fixed: int | None = None
    vars_fixed: int | None = None
    #: Binary variables that survived the pre-mapping into the ILP.
    vars_free: int | None = None
    #: Binding/slack attribution of a feasible solve
    #: (:func:`repro.explain.attribute_solution` output): per-family slack
    #: histograms, top-k binding rows in domain terms, saturated PEs and
    #: wire-length-critical paths.  ``None`` when diagnostics are off or
    #: the solve produced no solution.
    attribution: dict | None = None

    # -- recording helpers ---------------------------------------------------
    def sample(
        self,
        t_s: float,
        nodes: int,
        incumbent: float | None,
        bound: float | None,
    ) -> None:
        """Append a trajectory point, thinning once the buffer is full."""
        self.trajectory.append(TrajectorySample(t_s, nodes, incumbent, bound))
        if len(self.trajectory) > MAX_TRAJECTORY_SAMPLES:
            del self.trajectory[1::2]

    def record_fixing(
        self,
        groups_total: int,
        groups_fixed: int,
        vars_fixed: int,
        vars_free: int,
        threshold: float,
    ) -> None:
        """Attach the LP->ILP pre-mapping outcome to this (ILP) solve."""
        self.groups_total = groups_total
        self.groups_fixed = groups_fixed
        self.vars_fixed = vars_fixed
        self.vars_free = vars_free
        self.fix_threshold = threshold

    # -- views ---------------------------------------------------------------
    @property
    def gap_percent(self) -> float | None:
        return None if self.mip_gap is None else 100.0 * self.mip_gap

    def span_attrs(self) -> dict:
        """Compact attribute dict for the enclosing ``solver`` span.

        These attributes are what ``trace summarize`` aggregates into the
        per-solve convergence table, so the keys are part of the trace
        contract (docs/observability.md).
        """
        attrs: dict[str, Any] = {
            "nodes": self.nodes,
            "kind": self.kind,
        }
        if self.incumbent is not None:
            attrs["incumbent"] = self.incumbent
        if self.best_bound is not None:
            attrs["bound"] = self.best_bound
        if self.mip_gap is not None:
            attrs["gap"] = self.mip_gap
        if self.limit_reason:
            attrs["limit_reason"] = self.limit_reason
        if self.lane:
            attrs["lane"] = self.lane
        if self.warm_started:
            attrs["warm_started"] = True
            if self.hint_objective is not None:
                attrs["hint_objective"] = self.hint_objective
        if self.groups_total is not None:
            attrs["groups_fixed"] = self.groups_fixed
            attrs["groups_total"] = self.groups_total
            attrs["vars_free"] = self.vars_free
        if self.attribution is not None:
            # Mirror only the compact summary; the full attribution dict
            # travels on the Solution's stats.
            from repro.explain.attribution import attribution_brief

            attrs["attribution"] = attribution_brief(self.attribution)
        return attrs

    def to_dict(self) -> dict:
        """JSON-ready form (iteration logs, BENCH records)."""
        data: dict[str, Any] = {
            "backend": self.backend,
            "kind": self.kind,
            "nodes": self.nodes,
            "incumbent": self.incumbent,
            "best_bound": self.best_bound,
            "mip_gap": self.mip_gap,
            "lp_objective": self.lp_objective,
            "limit_reason": self.limit_reason,
            "elapsed_s": self.elapsed_s,
            "trajectory": [point.to_dict() for point in self.trajectory],
        }
        if self.lane:
            data["lane"] = self.lane
        if self.warm_started:
            data["warm_started"] = True
            data["hint_objective"] = self.hint_objective
        if self.attribution is not None:
            data["attribution"] = self.attribution
        if self.groups_total is not None:
            data["fixing"] = {
                "threshold": self.fix_threshold,
                "groups_total": self.groups_total,
                "groups_fixed": self.groups_fixed,
                "vars_fixed": self.vars_fixed,
                "vars_free": self.vars_free,
            }
        return data


@dataclass
class Algorithm1Stats:
    """The outer-loop (Algorithm 1) convergence record.

    Attached to :class:`~repro.core.algorithm1.RemapResult.alg1` and
    emitted as the ``algorithm1.stats`` trace event, so both API callers
    and offline trace analysis see the same relaxation history.
    """

    #: Step 1 — delay-unaware binary search for the ST_target lower bound.
    st_low_ns: float = 0.0
    st_up_ns: float = 0.0
    bisection_steps: int = 0
    ilp_bumps: int = 0
    #: The relaxation stepsize Delta actually used.
    delta_ns: float = 0.0
    #: ST_target tried at each Step 2.3 iteration, in order.
    st_trajectory: list[float] = field(default_factory=list)
    #: Per-iteration verdicts ("accepted", "infeasible", "cpd_violation",
    #: "frozen_budget_infeasible"), parallel to ``st_trajectory``.
    verdicts: list[str] = field(default_factory=list)
    final_st_target_ns: float = 0.0
    #: Aggregates over every backend solve of the run.
    solves: int = 0
    total_nodes: int = 0
    max_mip_gap: float | None = None
    #: Trust-but-verify aggregates (:mod:`repro.verify`): independent
    #: certification passes run, passes that found violations, and
    #: cold-rebuild re-solves triggered by a failed certification.
    certifications: int = 0
    cert_failures: int = 0
    cert_cold_rebuilds: int = 0
    #: Portfolio-racing snapshot (``PortfolioBackend.portfolio_snapshot``):
    #: breaker states/transition history, per-lane win counts, and the
    #: bounded race log.  ``None`` for serial (single-backend) runs.
    portfolio: dict | None = None

    @property
    def iterations(self) -> int:
        return len(self.st_trajectory)

    @property
    def relaxations(self) -> int:
        """ST_target += Delta steps taken (iterations that did not accept)."""
        return sum(1 for verdict in self.verdicts if verdict != "accepted")

    def record_iteration(self, st_target_ns: float, verdict: str) -> None:
        self.st_trajectory.append(st_target_ns)
        self.verdicts.append(verdict)

    def absorb_solve(self, stats: Mapping | None) -> None:
        """Fold one solve's :meth:`SolveStats.to_dict` into the aggregates."""
        if not stats:
            return
        self.solves += 1
        self.total_nodes += int(stats.get("nodes") or 0)
        gap = stats.get("mip_gap")
        if gap is not None and (
            self.max_mip_gap is None or gap > self.max_mip_gap
        ):
            self.max_mip_gap = float(gap)

    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "st_low_ns": self.st_low_ns,
            "st_up_ns": self.st_up_ns,
            "bisection_steps": self.bisection_steps,
            "ilp_bumps": self.ilp_bumps,
            "delta_ns": self.delta_ns,
            "iterations": self.iterations,
            "relaxations": self.relaxations,
            "st_trajectory": list(self.st_trajectory),
            "verdicts": list(self.verdicts),
            "final_st_target_ns": self.final_st_target_ns,
            "solves": self.solves,
            "total_nodes": self.total_nodes,
            "max_mip_gap": self.max_mip_gap,
            "certifications": self.certifications,
            "cert_failures": self.cert_failures,
            "cert_cold_rebuilds": self.cert_cold_rebuilds,
        }
        if self.portfolio is not None:
            data["portfolio"] = self.portfolio
        return data


# -- live progress -------------------------------------------------------------

#: Tri-state override: None = consult the environment variable.
_progress_override: bool | None = None


def set_progress(enabled: bool | None) -> None:
    """Force the live progress line on/off; ``None`` restores env control."""
    global _progress_override
    _progress_override = enabled


def progress_enabled() -> bool:
    """Whether long solves should render a live stderr progress line."""
    if _progress_override is not None:
        return _progress_override
    return os.environ.get(PROGRESS_ENV_VAR, "").strip() not in ("", "0", "false")


class SolveProgress:
    """Throttled stderr progress line for an in-flight solve.

    On a TTY the line is rewritten in place (carriage return); on a pipe
    each update is a full line so logs stay readable.  Call
    :meth:`update` as often as convenient — output is rate-limited to
    one render per :data:`PROGRESS_INTERVAL_S`.
    """

    def __init__(
        self,
        label: str,
        stream=None,
        interval_s: float = PROGRESS_INTERVAL_S,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._last_render_s: float | None = None
        self._rendered = False

    def update(
        self,
        elapsed_s: float,
        nodes: int,
        incumbent: float | None,
        bound: float | None,
    ) -> None:
        if (
            self._last_render_s is not None
            and elapsed_s - self._last_render_s < self.interval_s
        ):
            return
        self._last_render_s = elapsed_s
        gap = relative_gap(incumbent, bound)
        parts = [f"[{self.label}]", f"nodes={nodes}"]
        parts.append(
            f"inc={incumbent:.6g}" if incumbent is not None else "inc=-"
        )
        if bound is not None:
            parts.append(f"bound={bound:.6g}")
        if gap is not None:
            parts.append(f"gap={100.0 * gap:.1f}%")
        parts.append(f"{elapsed_s:.1f}s")
        line = " ".join(parts)
        if self._is_tty():
            self.stream.write("\r" + line.ljust(79))
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._rendered = True

    def close(self) -> None:
        """End the in-place line so subsequent output starts clean."""
        if self._rendered and self._is_tty():
            self.stream.write("\n")
            self.stream.flush()

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty()) if callable(isatty) else False


def convergence_rows(
    solver_spans: Sequence[Mapping],
) -> list[list[object]]:
    """Rows of the per-solve convergence table from ``solver`` span records.

    Input records are span dicts (``to_record`` form) whose ``attrs`` carry
    the :meth:`SolveStats.span_attrs` keys; output rows are
    ``[model, backend, kind, status, nodes, incumbent, bound, gap_%, wall_s]``
    formatted for :func:`repro.report.tables.format_table`.
    """
    rows: list[list[object]] = []
    for record in solver_spans:
        attrs = record.get("attrs") or {}
        gap = attrs.get("gap")
        incumbent = attrs.get("incumbent")
        bound = attrs.get("bound")
        rows.append([
            attrs.get("model", "?"),
            attrs.get("backend", "?"),
            attrs.get("kind", "?"),
            str(attrs.get("status", "?")),
            attrs.get("nodes", 0),
            "-" if incumbent is None else f"{incumbent:.6g}",
            "-" if bound is None else f"{bound:.6g}",
            "-" if gap is None else f"{100.0 * float(gap):.2f}",
            round(float(record.get("duration_s", 0.0)), 3),
        ])
    return rows
