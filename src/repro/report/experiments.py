"""Experiment drivers regenerating every table and figure of the paper.

Command-line usage (also installed as ``repro-experiments``)::

    python -m repro.report.experiments table1 [--scale quick|paper] [--only B13 ...]
    python -m repro.report.experiments fig5  [--scale quick|paper]
    python -m repro.report.experiments fig2a
    python -m repro.report.experiments fig2b [--bench B13]

Scales
------
``quick``  caps fabrics at 8x8 via :meth:`Table1Entry.scaled` (minutes on a
laptop); ``paper`` runs the verbatim Table I configurations (hours for the
16x16 entries).  Both exercise the identical code path — only problem size
changes.  EXPERIMENTS.md records measured-vs-published values.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.benchgen.suite import TABLE1, Table1Entry
from repro.benchgen.synth import build_benchmark
from repro.core.algorithm1 import Algorithm1Config
from repro.core.flow import AgingAwareFlow, FlowConfig
from repro.core.remap import RemapConfig
from repro.errors import FlowError, ReproError, SweepError
from repro.obs import (
    CollectorSink,
    attached,
    clear_sinks,
    configure_logging,
    counter,
    event,
    get_logger,
    replay_records,
    span,
)
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import should_inject
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    shielded,
)
from repro.report.figures import ascii_curve, bar_chart, series_csv, stress_grid
from repro.report.paper import (
    BenchmarkMeasurement,
    TABLE_HEADERS,
    class_averages,
    paper_class_averages,
    shape_checks,
)
from repro.report.tables import format_table

#: Fabric cap of the quick profile.
QUICK_MAX_FABRIC = 8

_log = get_logger("report.experiments")


def _log_line(message: str = "") -> None:
    """Library default output channel: the ``repro.*`` logger.

    The drivers accept any ``log`` callable; when none is given, lines go
    through ``repro.report.experiments`` at INFO instead of ``print`` so
    importing callers control the output policy.  The CLI entry point
    passes ``print`` explicitly — terminal output stays on stdout.
    """
    _log.info("%s", message)


#: Seed offset applied on the retry of a transiently-failed sweep entry.
#: Chosen coprime to the suite seeds so a perturbed run never collides
#: with another entry's nominal seed.
RETRY_SEED_STRIDE = 1009

#: Base of the exponential backoff slept before an isolated crash retry
#: (doubles per strike).  Module-level so tests can shrink it.
_CRASH_BACKOFF_BASE_S = 0.5

#: Supervisor polling period while watching in-flight sweep workers.
_POLL_INTERVAL_S = 0.2

#: Exit code of a fault-injected worker crash (any hard death works; a
#: recognisable code makes post-mortems unambiguous).
_CRASH_EXIT_CODE = 86


@dataclass
class ExperimentConfig:
    """How to run a suite experiment."""

    scale: str = "quick"  # "quick" | "paper"
    seed: int = 0
    only: list[str] = field(default_factory=list)
    time_limit_s: float = 180.0
    #: Wall-clock budget per benchmark entry (None = unlimited).
    deadline_s: float | None = None
    #: Path of the per-entry JSONL checkpoint (None = no checkpointing).
    checkpoint: str | None = None
    #: Skip entries already completed in the checkpoint file.
    resume: bool = False
    #: Record permanently-failed entries and continue instead of aborting.
    keep_going: bool = False
    #: Extra attempts (with a perturbed seed) after a transient failure.
    retries: int = 1
    #: Process-pool width for table1/fig5 sweeps (1 = serial in-process).
    jobs: int = 1
    #: Hard wall-clock limit per parallel sweep entry; an overrunning
    #: worker is killed and the entry retried in isolation (None = off).
    entry_timeout_s: float | None = None
    #: Independently certify every accepted MILP solution (repro.verify).
    certify: bool = True

    def suite(self) -> list[Table1Entry]:
        entries = [
            e for e in TABLE1 if not self.only or e.name in self.only
        ]
        if self.scale == "quick":
            entries = [e.scaled(QUICK_MAX_FABRIC) for e in entries]
        elif self.scale != "paper":
            raise ValueError(f"unknown scale {self.scale!r}")
        return entries


def flow_config(
    mode: str,
    time_limit_s: float,
    max_iterations: int = 12,
    certify: bool = True,
) -> FlowConfig:
    """Standard experiment flow configuration for one re-mapping mode."""
    return FlowConfig(
        algorithm1=Algorithm1Config(
            mode=mode,
            max_iterations=max_iterations,
            certify=certify,
            remap=RemapConfig(time_limit_s=time_limit_s),
        )
    )


def measure_benchmark(
    entry: Table1Entry, config: ExperimentConfig, seed: int | None = None
) -> BenchmarkMeasurement:
    """Run Phase 1 once and Phase 2 in both modes for one benchmark.

    Phase 1 (placement + baseline evaluation) is mode-independent, so it
    is shared between the Freeze and Rotate measurements — exactly as in
    the paper, where both columns start from the same Musketeer floorplan.

    ``config.deadline_s`` bounds the whole measurement (Phase 1 shielded,
    as in :meth:`AgingAwareFlow.run`); ``seed`` overrides ``config.seed``
    for perturbed-seed retries.
    """
    from repro.aging.mttf import mttf_increase as compute_increase

    design, fabric = build_benchmark(
        entry.spec(config.seed if seed is None else seed)
    )
    deadline = (
        Deadline.after(config.deadline_s)
        if config.deadline_s is not None
        else None
    )
    increases: dict[str, float] = {}
    with deadline_scope(deadline):
        baseline_flow = AgingAwareFlow(
            flow_config("freeze", config.time_limit_s, certify=config.certify)
        )
        with shielded():
            original = baseline_flow.phase1(design, fabric)
        for mode in ("freeze", "rotate"):
            flow = AgingAwareFlow(
                flow_config(mode, config.time_limit_s, certify=config.certify)
            )
            remapped, remap = flow.phase2(design, fabric, original)
            if remap.final_cpd_ns > remap.original_cpd_ns + 1e-6:
                raise FlowError(
                    f"{entry.name}/{mode}: re-mapped CPD "
                    f"{remap.final_cpd_ns:.6f} ns exceeds original "
                    f"{remap.original_cpd_ns:.6f} ns — "
                    "no-delay-degradation invariant broken"
                )
            increases[mode] = compute_increase(original.mttf, remapped.mttf)
    return BenchmarkMeasurement(
        entry=entry,
        freeze_increase=increases["freeze"],
        rotate_increase=increases["rotate"],
    )


def _measure_entry(
    entry: Table1Entry, config: ExperimentConfig, log=_log_line
) -> tuple[BenchmarkMeasurement | None, dict]:
    """Measure one entry; retry transient failures with a perturbed seed.

    Returns ``(measurement, checkpoint_record)``; ``measurement`` is None
    on permanent failure (``record["status"] == "failed"``).  The record
    is exactly what a checkpoint stores — the caller owns the append, so
    serial and process-parallel sweeps write identical checkpoints.
    """
    attempts = max(1, config.retries + 1)
    last_error: ReproError | None = None
    for attempt in range(attempts):
        seed = config.seed + RETRY_SEED_STRIDE * attempt
        try:
            measurement = measure_benchmark(entry, config, seed=seed)
        except ReproError as exc:
            last_error = exc
            counter("sweep.entry_errors").inc()
            if attempt < attempts - 1:
                counter("sweep.retries").inc()
                event(
                    "sweep.retry",
                    entry=entry.name,
                    attempt=attempt + 1,
                    error=f"{type(exc).__name__}: {exc}",
                )
                log(
                    f"{entry.name}: attempt {attempt + 1} failed "
                    f"({type(exc).__name__}: {exc}); retrying with "
                    f"seed {config.seed + RETRY_SEED_STRIDE * (attempt + 1)}"
                )
            continue
        return measurement, {
            "entry": entry.name,
            "status": "ok",
            "seed": seed,
            "freeze_increase": measurement.freeze_increase,
            "rotate_increase": measurement.rotate_increase,
        }
    counter("sweep.entry_failures").inc()
    event(
        "sweep.entry_failed",
        entry=entry.name,
        error=f"{type(last_error).__name__}: {last_error}",
    )
    return None, {
        "entry": entry.name,
        "status": "failed",
        "error": f"{type(last_error).__name__}: {last_error}",
    }


def _measure_with_retry(
    entry: Table1Entry,
    config: ExperimentConfig,
    checkpoint: SweepCheckpoint | None,
    log=_log_line,
) -> BenchmarkMeasurement:
    """Serial-path wrapper of :func:`_measure_entry`.

    On success the measurement is appended to ``checkpoint`` (when given);
    a permanent failure is recorded there too (``status: "failed"`` — a
    later ``--resume`` run will retry it) and raised as
    :class:`~repro.errors.SweepError`.
    """
    measurement, record = _measure_entry(entry, config, log=log)
    if checkpoint is not None:
        checkpoint.append(record)
    if measurement is None:
        raise SweepError(
            f"{entry.name}: failed after {max(1, config.retries + 1)} "
            f"attempt(s): {record['error']}"
        )
    return measurement


def _sweep_worker(
    entry: Table1Entry,
    config: ExperimentConfig,
    deadline_share_s: float | None,
    inject: str | None = None,
) -> dict:
    """Process-pool body of one sweep entry.

    Runs in a forked worker: inherited sinks are dropped (their file
    handles belong to the parent), spans/events are captured by a local
    collector and shipped back as picklable records, and the checkpoint is
    never touched here — the parent owns all appends.

    ``inject`` is the parent's fault-injection verdict (decided at submit
    time so hit counters stay deterministic — forked workers each start
    from zero): ``"crash"`` dies hard mid-entry, ``"hang"`` wedges as if
    stuck in a native call.
    """
    if inject == "crash":
        os._exit(_CRASH_EXIT_CODE)
    if inject == "hang":
        time.sleep(3600.0)
    clear_sinks()
    collector = CollectorSink()
    worker_config = replace(
        config, checkpoint=None, jobs=1, deadline_s=deadline_share_s
    )
    start = time.perf_counter()
    with attached(collector):
        with span("table1_entry", benchmark=entry.name):
            measurement, record = _measure_entry(
                entry, worker_config, log=_log_line
            )
    return {
        "record": record,
        "ok": measurement is not None,
        "trace_records": collector.records,
        "wall_s": time.perf_counter() - start,
    }


def _wave_share(
    config: ExperimentConfig, n_entries: int, jobs: int
) -> float | None:
    """Per-worker deadline share for a wave of ``n_entries`` entries.

    Entries run in ``ceil(n/jobs)`` sub-waves; a fair share assumes each
    worker processes one entry per sub-wave.  Recomputed per wave so
    retries see the budget that is actually left.
    """
    share = config.deadline_s
    remaining = current_deadline().remaining_s()
    if math.isfinite(remaining):
        wave_share = remaining / math.ceil(n_entries / jobs)
        share = wave_share if share is None else min(share, wave_share)
    return share


def _finish_entry(
    entry: Table1Entry,
    outcome: dict,
    config: ExperimentConfig,
    checkpoint: SweepCheckpoint | None,
    results: dict[str, BenchmarkMeasurement],
    failed: list[str],
    log,
) -> None:
    """Absorb one worker outcome into the sweep state (parent side)."""
    replay_records(outcome["trace_records"])
    record = outcome["record"]
    if checkpoint is not None:
        checkpoint.append(record)
    if outcome["ok"]:
        measurement = BenchmarkMeasurement(
            entry=entry,
            freeze_increase=record["freeze_increase"],
            rotate_increase=record["rotate_increase"],
        )
        results[entry.name] = measurement
        log(
            f"{entry.name}: freeze "
            f"{measurement.freeze_increase:.2f}x "
            f"(paper {entry.freeze_ref:.2f}) rotate "
            f"{measurement.rotate_increase:.2f}x "
            f"(paper {entry.rotate_ref:.2f}) "
            f"[{outcome['wall_s']:.1f}s]"
        )
    elif config.keep_going:
        failed.append(entry.name)
        log(
            f"{entry.name}: FAILED ({record['error']}); "
            "continuing (--keep-going)"
        )
    else:
        raise SweepError(
            f"{entry.name}: failed after "
            f"{max(1, config.retries + 1)} attempt(s): "
            f"{record['error']}"
        )


def _strike_entry(
    entry: Table1Entry,
    kind: str,
    reason: str,
    config: ExperimentConfig,
    checkpoint: SweepCheckpoint | None,
    quarantined: list[str],
    strikes: dict[str, int],
    retry: list[Table1Entry],
    log,
) -> None:
    """Record one fatal worker incident (crash or timeout) for ``entry``.

    First strike: append a ``"failed"`` checkpoint record and queue an
    isolated serial retry.  An entry that kills workers twice — or more
    often than ``config.retries`` allows — is quarantined: recorded as
    ``"quarantined"`` (still resumable; ``completed()`` only honours
    ``"ok"``), reported at sweep end, and never allowed to take the pool
    down again this run.
    """
    strikes[entry.name] = strikes.get(entry.name, 0) + 1
    count = strikes[entry.name]
    if kind == "timeout":
        counter("sweep.entry_timeouts").inc()
        event(
            "sweep.entry_timeout", entry=entry.name, strikes=count,
            error=reason,
        )
    else:
        counter("sweep.worker_crashes").inc()
        event(
            "sweep.worker_crash", entry=entry.name, strikes=count,
            error=reason,
        )
    if count >= 2 or count > config.retries:
        counter("sweep.entries_quarantined").inc()
        event(
            "sweep.quarantined", entry=entry.name, strikes=count,
            error=reason,
        )
        if checkpoint is not None:
            checkpoint.append({
                "entry": entry.name,
                "status": "quarantined",
                "strikes": count,
                "error": reason,
            })
        quarantined.append(entry.name)
        log(
            f"{entry.name}: QUARANTINED after {count} fatal attempt(s) "
            f"({reason}); a --resume run will retry it"
        )
    else:
        if checkpoint is not None:
            checkpoint.append({
                "entry": entry.name, "status": "failed", "error": reason,
            })
        retry.append(entry)
        log(f"{entry.name}: {reason}; will retry in isolation")


def _run_wave(
    wave: list[Table1Entry],
    config: ExperimentConfig,
    checkpoint: SweepCheckpoint | None,
    results: dict[str, BenchmarkMeasurement],
    failed: list[str],
    quarantined: list[str],
    strikes: dict[str, int],
    log,
) -> list[Table1Entry]:
    """Run one wave of entries on a fresh process pool.

    Returns the entries that must run again: struck in-flight entries
    (worker death or entry timeout — the supervisor retries them in
    isolation) plus queued entries a broken pool never started (requeued
    without a strike).  Entries out of strikes are quarantined here.
    """
    from concurrent.futures import ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    jobs = min(config.jobs, len(wave))
    share = _wave_share(config, len(wave), jobs)
    retry: list[Table1Entry] = []
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures: dict = {}
        order: list = []
        for entry in wave:
            # Fault-injection verdicts are taken here, in the parent,
            # so per-point hit counters are process-stable (see
            # repro.resilience.faults.FAULT_POINTS).
            inject = None
            if should_inject("worker_crash"):
                inject = "crash"
            elif should_inject("worker_hang"):
                inject = "hang"
            future = pool.submit(_sweep_worker, entry, config, share, inject)
            futures[future] = entry
            order.append(future)
        pending = set(futures)
        observed: dict = {}  # future -> first-seen-running monotonic time
        timed_out: set = set()
        broken: set = set()
        while pending:
            done, pending = wait(pending, timeout=_POLL_INTERVAL_S)
            now = time.monotonic()
            for future in pending:
                if future not in observed and future.running():
                    observed[future] = now
            if config.entry_timeout_s is not None and not timed_out:
                overdue = {
                    future for future in pending
                    if future in observed
                    and now - observed[future] > config.entry_timeout_s
                }
                if overdue:
                    timed_out |= overdue
                    for future in overdue:
                        log(
                            f"{futures[future].name}: exceeded entry "
                            f"timeout ({config.entry_timeout_s:.1f}s); "
                            "killing pool workers"
                        )
                    # No per-future kill exists: pool workers are
                    # anonymous until they die.  Kill them all; innocent
                    # in-flight entries surface as crash strikes and win
                    # their isolated retry.
                    for proc in list(pool._processes.values()):
                        proc.kill()
            for future in done:
                entry = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    broken.add(future)
                    continue
                _finish_entry(
                    entry, outcome, config, checkpoint, results, failed,
                    log,
                )
        # The pool is dead (workers killed or a worker crashed).  At most
        # ``jobs`` of the broken futures were actually executing: strike
        # the observed-running ones plus the earliest-submitted
        # unobserved ones up to the pool width (FIFO dispatch means those
        # are the likeliest culprits); requeue the rest without a strike.
        unobserved_slots = max(
            0, jobs - sum(1 for f in broken if f in observed)
        )
        for future in (f for f in order if f in broken):
            entry = futures[future]
            if future in observed:
                kind = "timeout" if future in timed_out else "crash"
                reason = (
                    f"entry timeout ({config.entry_timeout_s:.1f}s) "
                    "exceeded; worker killed"
                    if kind == "timeout"
                    else "worker process died mid-entry"
                )
                _strike_entry(
                    entry, kind, reason, config, checkpoint, quarantined,
                    strikes, retry, log,
                )
            elif unobserved_slots > 0:
                unobserved_slots -= 1
                _strike_entry(
                    entry, "crash", "worker process died mid-entry",
                    config, checkpoint, quarantined, strikes, retry, log,
                )
            else:
                retry.append(entry)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return retry


def _sweep_parallel(
    pending: list[Table1Entry],
    config: ExperimentConfig,
    checkpoint: SweepCheckpoint | None,
    results: dict[str, BenchmarkMeasurement],
    failed: list[str],
    quarantined: list[str],
    log=_log_line,
) -> None:
    """Fan pending sweep entries out over a supervised process pool.

    Each entry is measured exactly as in a serial sweep (same seeds, same
    retry ladder), so the measurements are identical — only wall-clock
    interleaving changes.  The parent appends checkpoint records in
    completion order (same fsync guarantees; ``--resume`` composes) and
    replays worker trace records into its own sinks.

    Unlike a bare pool, the supervisor survives worker death: a
    ``BrokenProcessPool`` or per-entry timeout kills at most one wave.
    Struck entries re-run one at a time on a fresh single-worker pool
    (exponential backoff between attempts), entries the broken pool never
    started are requeued unpenalised, and an entry that keeps killing
    workers is quarantined rather than allowed to wedge the sweep.
    """
    queue = list(pending)
    strikes: dict[str, int] = {}
    while queue:
        struck = next(
            (e for e in queue if strikes.get(e.name, 0) > 0), None
        )
        if struck is not None:
            queue.remove(struck)
            wave = [struck]
            backoff = (
                _CRASH_BACKOFF_BASE_S * 2 ** (strikes[struck.name] - 1)
            )
            log(
                f"{struck.name}: backing off {backoff:.1f}s before "
                "isolated retry"
            )
            time.sleep(backoff)
        else:
            wave, queue = queue, []
        queue.extend(
            _run_wave(
                wave, config, checkpoint, results, failed, quarantined,
                strikes, log,
            )
        )


def run_table1(config: ExperimentConfig, log=_log_line) -> list[BenchmarkMeasurement]:
    """Regenerate Table I (measured vs published).

    With ``config.checkpoint`` set, every completed entry is appended to a
    JSONL checkpoint as it finishes (flushed + fsynced, so a kill at any
    point loses at most the in-flight entry).  ``config.resume`` skips
    entries the checkpoint already records as ``ok`` and reconstructs
    their measurements verbatim — the final table is bit-identical to an
    uninterrupted run.  ``config.keep_going`` records a permanently-failed
    entry and moves on instead of aborting the sweep.

    ``config.jobs > 1`` measures the non-restored entries on a process
    pool (:func:`_sweep_parallel`) — per-entry measurements and checkpoint
    records are identical to a serial sweep, and the returned list keeps
    suite order regardless of completion order.
    """
    checkpoint = (
        SweepCheckpoint(Path(config.checkpoint)) if config.checkpoint else None
    )
    done: dict[str, dict] = {}
    if checkpoint is not None:
        if config.resume:
            done = checkpoint.completed()
        else:
            checkpoint.reset()
    suite = config.suite()
    results: dict[str, BenchmarkMeasurement] = {}
    failed: list[str] = []
    quarantined: list[str] = []
    pending: list[Table1Entry] = []
    for entry in suite:
        record = done.get(entry.name)
        if record is not None:
            counter("sweep.entries_resumed").inc()
            results[entry.name] = BenchmarkMeasurement(
                entry=entry,
                freeze_increase=record["freeze_increase"],
                rotate_increase=record["rotate_increase"],
            )
            log(f"{entry.name}: restored from checkpoint")
        else:
            pending.append(entry)
    if config.jobs > 1 and len(pending) > 1:
        _sweep_parallel(
            pending, config, checkpoint, results, failed, quarantined, log
        )
    else:
        for entry in pending:
            with span("table1_entry", benchmark=entry.name) as entry_span:
                try:
                    measurement = _measure_with_retry(
                        entry, config, checkpoint, log=log
                    )
                except SweepError as exc:
                    if not config.keep_going:
                        raise
                    failed.append(entry.name)
                    log(
                        f"{entry.name}: FAILED ({exc}); continuing "
                        "(--keep-going)"
                    )
                    continue
            results[entry.name] = measurement
            log(
                f"{entry.name}: freeze {measurement.freeze_increase:.2f}x "
                f"(paper {entry.freeze_ref:.2f}) rotate "
                f"{measurement.rotate_increase:.2f}x "
                f"(paper {entry.rotate_ref:.2f}) "
                f"[{entry_span.duration_s:.1f}s]"
            )
    measurements = [
        results[entry.name] for entry in suite if entry.name in results
    ]
    if failed:
        log("")
        log(
            f"WARNING: {len(failed)} entr{'y' if len(failed) == 1 else 'ies'} "
            f"failed permanently: {', '.join(failed)}"
        )
    if quarantined:
        log("")
        log(
            f"WARNING: {len(quarantined)} "
            f"entr{'y' if len(quarantined) == 1 else 'ies'} quarantined "
            f"after repeated worker deaths: {', '.join(quarantined)}; "
            "a --resume run will retry them"
        )
    log("")
    if not measurements:
        log("no entries completed; nothing to tabulate")
        return measurements
    log(format_table(TABLE_HEADERS, [m.row() for m in measurements]))
    log("")
    measured_avg = class_averages(measurements)
    published_avg = paper_class_averages()
    rows = []
    for usage, (freeze, rotate) in measured_avg.items():
        p_freeze, p_rotate = published_avg[usage]
        rows.append([usage, freeze, p_freeze, rotate, p_rotate])
    log(format_table(
        ["usage", "freeze avg", "paper", "rotate avg", "paper"], rows
    ))
    log("")
    for check in shape_checks(measurements):
        status = "PASS" if check.holds else "MISS"
        log(f"[{status}] {check.name}: {check.detail}")
    return measurements


def run_fig5(config: ExperimentConfig, log=_log_line) -> None:
    """Regenerate Fig. 5: grouped bars by C/F group and usage class."""
    measurements = run_table1(config, log=lambda *_: None)
    groups: list[str] = []
    series: dict[str, list[float | None]] = {
        "low": [], "medium": [], "high": []
    }
    for entry in config.suite():
        if entry.group not in groups:
            groups.append(entry.group)
    by_key = {
        (m.entry.group, m.entry.usage_class): m.rotate_increase
        for m in measurements
    }
    for group in groups:
        for usage in series:
            series[usage].append(by_key.get((group, usage)))
    log("MTTF increase (x) by fabric group — Fig. 5")
    log(bar_chart(groups, series))


def run_fig2a(log=_log_line) -> None:
    """Regenerate Fig. 2(a): accumulated stress grids before/after."""
    from repro.benchgen.suite import entry as suite_entry

    design, fabric = build_benchmark(suite_entry("B1").spec())
    flow = AgingAwareFlow(flow_config("rotate", 60.0))
    result = flow.run(design, fabric)
    log("Original accumulated stress (ns) — aging-unaware floorplan:")
    log(stress_grid(fabric, result.original.stress.accumulated_ns))
    log(f"max = {result.original.stress.max_accumulated_ns:.2f} ns")
    log("")
    log("Re-mapped accumulated stress (ns) — aging-aware floorplan:")
    log(stress_grid(fabric, result.remapped.stress.accumulated_ns))
    log(f"max = {result.remapped.stress.max_accumulated_ns:.2f} ns")


def run_fig2b(bench: str = "B13", log=_log_line, csv: bool = False) -> None:
    """Regenerate Fig. 2(b): Vth shift vs time, original vs re-mapped."""
    from repro.aging.mttf import vth_curve
    from repro.benchgen.suite import entry as suite_entry

    design, fabric = build_benchmark(suite_entry(bench).scaled(8).spec())
    flow = AgingAwareFlow(flow_config("rotate", 120.0))
    result = flow.run(design, fabric)
    horizon = 1.3 * result.remapped.mttf.mttf_s
    original = vth_curve(result.original.mttf, "original", horizon_s=horizon)
    remapped = vth_curve(result.remapped.mttf, "re-mapped", horizon_s=horizon)
    if csv:
        log(series_csv([original, remapped]))
        return
    log(f"Vth shift vs time — {bench} (Fig. 2b)")
    log(ascii_curve([original, remapped]))
    log(f"MTTF increase: {result.mttf_increase:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment", choices=["table1", "fig5", "fig2a", "fig2b"]
    )
    parser.add_argument("--scale", default="quick", choices=["quick", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", default=[])
    parser.add_argument("--bench", default="B13")
    parser.add_argument("--csv", action="store_true")
    parser.add_argument("--time-limit", type=float, default=180.0)
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per benchmark entry (default: unlimited)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="JSONL checkpoint file for table1/fig5 sweeps "
        "(default: <experiment>-<scale>.checkpoint.jsonl; "
        "pass 'none' to disable)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip entries already completed in the checkpoint",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="record failed entries and continue instead of aborting",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="perturbed-seed retries per transiently-failed entry",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="measure table1/fig5 entries on an N-process pool "
        "(default: 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--entry-timeout", type=float, default=None, metavar="SECONDS",
        help="hard wall-clock limit per parallel sweep entry; an "
        "overrunning worker is killed and the entry retried "
        "(default: no timeout)",
    )
    parser.add_argument(
        "--no-certify", action="store_true",
        help="skip independent certification of accepted MILP solutions",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
    )
    args = parser.parse_args(argv)

    checkpoint = args.checkpoint
    if args.experiment in ("table1", "fig5"):
        if checkpoint is None:
            checkpoint = f"{args.experiment}-{args.scale}.checkpoint.jsonl"
        elif checkpoint.lower() == "none":
            checkpoint = None
    else:
        checkpoint = None
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        only=list(args.only),
        time_limit_s=args.time_limit,
        deadline_s=args.deadline,
        checkpoint=checkpoint,
        resume=args.resume,
        keep_going=args.keep_going,
        retries=args.retries,
        jobs=args.jobs,
        entry_timeout_s=args.entry_timeout,
        certify=not args.no_certify,
    )
    configure_logging(args.log_level)
    # CLI invocation: experiment output belongs on stdout, so the drivers
    # get ``print`` explicitly; library callers default to the repro logger.
    try:
        if args.experiment == "table1":
            run_table1(config, log=print)
        elif args.experiment == "fig5":
            run_fig5(config, log=print)
        elif args.experiment == "fig2a":
            run_fig2a(log=print)
        else:
            run_fig2b(bench=args.bench, log=print, csv=args.csv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
