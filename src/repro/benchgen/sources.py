"""Mini-C kernel sources for the example applications.

These exercise the *full* HLS path (parse -> lower -> schedule -> map)
rather than the direct synthetic generator, and mirror the kind of
synthesizable C kernels the paper's intro motivates (filters, transforms,
integer math).
"""

from __future__ import annotations

from repro.errors import BenchmarkError

FIR8 = """
// 8-tap FIR filter over a sliding window assembled from two samples.
in int s0, s1;
int i;
int window[8];
for (i = 0; i < 8; i++) window[i] = (s0 >> i) + (s1 << (7 - i));
int taps[8];
taps[0] = 3; taps[1] = -1; taps[2] = 4; taps[3] = 1;
taps[4] = -5; taps[5] = 9; taps[6] = 2; taps[7] = -6;
int acc = 0;
for (i = 0; i < 8; i++) acc += taps[i] * window[i];
out int y = acc;
"""

MATVEC4 = """
// 4x4 integer matrix-vector product with a data-dependent clamp.
in int x0, x1, x2, x3;
int i, j;
int v[4];
v[0] = x0; v[1] = x1; v[2] = x2; v[3] = x3;
int m[16];
for (i = 0; i < 16; i++) m[i] = (i * 7) % 11 - 5;
int r[4];
for (i = 0; i < 4; i++) {
    r[i] = 0;
    for (j = 0; j < 4; j++) r[i] += m[i * 4 + j] * v[j];
}
out int y0, y1, y2, y3;
if (r[0] > 100) y0 = 100; else y0 = r[0];
y1 = r[1];
y2 = r[2] ^ r[3];
y3 = r[3];
"""

CHECKSUM = """
// Mixing/checksum kernel: shifts, xors and a conditional fold.
in int data, key;
int h = data ^ key;
int i;
for (i = 0; i < 6; i++) {
    h = (h << 3) ^ (h >> 5);
    h = h + (key >> i);
    if (h < 0) h = -h;
}
out int digest = h & 65535;
"""

SOBEL3 = """
// 3x3 Sobel-like gradient magnitude (L1) on a synthesized patch.
in int p0, p1, p2;
int i;
int patch[9];
for (i = 0; i < 9; i++) patch[i] = (p0 >> i) + (p1 << (i % 3)) - (p2 >> (i % 5));
int gx = patch[2] + 2 * patch[5] + patch[8] - patch[0] - 2 * patch[3] - patch[6];
int gy = patch[0] + 2 * patch[1] + patch[2] - patch[6] - 2 * patch[7] - patch[8];
int ax = gx; if (gx < 0) ax = -gx;
int ay = gy; if (gy < 0) ay = -gy;
out int magnitude = ax + ay;
"""

KERNELS: dict[str, str] = {
    "fir8": FIR8,
    "matvec4": MATVEC4,
    "checksum": CHECKSUM,
    "sobel3": SOBEL3,
}


def kernel_source(name: str) -> str:
    """Mini-C source of a named kernel."""
    try:
        return KERNELS[name]
    except KeyError as exc:
        raise BenchmarkError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from exc
