"""The B1-B27 benchmark suite of Table I.

Each entry reproduces one row-cell of the paper's Table I: the number of
contexts, the fabric size, the used-PE count and the fabric-usage class,
together with the published MTTF-increase reference values (Freeze and
Rotate columns) that EXPERIMENTS.md compares against.

The designs themselves are synthesized (seeded) because the paper's C
benchmarks are proprietary; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.synth import SyntheticSpec, build_benchmark
from repro.errors import BenchmarkError

#: Usage-class labels as in Table I's super-columns.
USAGE_CLASSES = ("low", "medium", "high")


@dataclass(frozen=True)
class Table1Entry:
    """One benchmark row-cell of Table I."""

    name: str
    num_contexts: int
    fabric_dim: int
    pe_count: int           # Table I "PE #"
    usage_class: str        # low | medium | high
    freeze_ref: float       # published MTTF increase, Freeze column
    rotate_ref: float       # published MTTF increase, Rotate column

    @property
    def utilization(self) -> float:
        return self.pe_count / (self.num_contexts * self.fabric_dim**2)

    @property
    def group(self) -> str:
        """Fig. 5's x-axis label, e.g. ``C4F8``."""
        return f"C{self.num_contexts}F{self.fabric_dim}"

    def spec(self, seed: int = 0) -> SyntheticSpec:
        """Synthesis spec for this entry."""
        return SyntheticSpec(
            name=self.name,
            num_contexts=self.num_contexts,
            fabric_dim=self.fabric_dim,
            total_ops=self.pe_count,
            num_inputs=max(4, self.fabric_dim),
            num_outputs=max(2, self.fabric_dim // 2),
            seed=seed,
        )

    def scaled(self, max_fabric_dim: int) -> "Table1Entry":
        """A reduced-size variant preserving contexts and utilization.

        Used by the quick benchmark profile: fabrics larger than
        ``max_fabric_dim`` shrink to it, and the op count scales with the
        slot count so the usage class is unchanged.
        """
        if self.fabric_dim <= max_fabric_dim:
            return self
        ratio = (max_fabric_dim / self.fabric_dim) ** 2
        scaled_ops = max(self.num_contexts, round(self.pe_count * ratio))
        scaled_ops = min(scaled_ops, self.num_contexts * max_fabric_dim**2)
        return Table1Entry(
            name=f"{self.name}s",
            num_contexts=self.num_contexts,
            fabric_dim=max_fabric_dim,
            pe_count=scaled_ops,
            usage_class=self.usage_class,
            freeze_ref=self.freeze_ref,
            rotate_ref=self.rotate_ref,
        )


#: Table I, verbatim: 27 benchmarks over {4,8,16} contexts x {4,8,16}^2
#: fabrics x {low, medium, high} usage, with the published MTTF increases.
TABLE1: tuple[Table1Entry, ...] = (
    Table1Entry("B1", 4, 4, 24, "low", 1.94, 1.94),
    Table1Entry("B2", 4, 8, 79, "low", 2.17, 2.17),
    Table1Entry("B3", 4, 16, 192, "low", 2.26, 2.28),
    Table1Entry("B4", 8, 4, 44, "low", 2.77, 2.80),
    Table1Entry("B5", 8, 8, 142, "low", 2.69, 2.89),
    Table1Entry("B6", 8, 16, 534, "low", 2.93, 3.39),
    Table1Entry("B7", 16, 4, 88, "low", 3.76, 3.85),
    Table1Entry("B8", 16, 8, 259, "low", 3.19, 3.79),
    Table1Entry("B9", 16, 16, 1011, "low", 3.35, 3.73),
    Table1Entry("B10", 4, 4, 35, "medium", 1.67, 1.67),
    Table1Entry("B11", 4, 8, 148, "medium", 1.44, 1.82),
    Table1Entry("B12", 4, 16, 451, "medium", 1.54, 1.77),
    Table1Entry("B13", 8, 4, 62, "medium", 2.05, 2.36),
    Table1Entry("B14", 8, 8, 280, "medium", 1.97, 2.84),
    Table1Entry("B15", 8, 16, 1101, "medium", 1.93, 2.97),
    Table1Entry("B16", 16, 4, 147, "medium", 2.89, 3.18),
    Table1Entry("B17", 16, 8, 531, "medium", 2.62, 2.94),
    Table1Entry("B18", 16, 16, 2165, "medium", 2.39, 3.08),
    Table1Entry("B19", 4, 4, 52, "high", 1.18, 1.52),
    Table1Entry("B20", 4, 8, 175, "high", 1.27, 1.70),
    Table1Entry("B21", 4, 16, 554, "high", 1.76, 2.00),
    Table1Entry("B22", 8, 4, 87, "high", 1.56, 2.06),
    Table1Entry("B23", 8, 8, 327, "high", 1.48, 1.98),
    Table1Entry("B24", 8, 16, 1521, "high", 1.59, 2.05),
    Table1Entry("B25", 16, 4, 193, "high", 1.61, 2.06),
    Table1Entry("B26", 16, 8, 737, "high", 1.95, 2.31),
    Table1Entry("B27", 16, 16, 3089, "high", 2.07, 2.44),
)

#: Published super-column averages of Table I ((Freeze, Rotate) per class).
TABLE1_AVERAGES = {
    "low": (2.78, 2.98),
    "medium": (2.06, 2.51),
    "high": (1.61, 2.01),
}

#: The paper's headline number (abstract): average Rotate MTTF increase.
PAPER_HEADLINE_INCREASE = 2.5


def entry(name: str) -> Table1Entry:
    """Look up a benchmark by name (e.g. ``"B13"``)."""
    for item in TABLE1:
        if item.name == name:
            return item
    raise BenchmarkError(f"unknown benchmark {name!r}")


def entries(
    usage_class: str | None = None,
    max_contexts: int | None = None,
    max_fabric_dim: int | None = None,
) -> list[Table1Entry]:
    """Filtered view of the suite."""
    if usage_class is not None and usage_class not in USAGE_CLASSES:
        raise BenchmarkError(f"unknown usage class {usage_class!r}")
    result = []
    for item in TABLE1:
        if usage_class is not None and item.usage_class != usage_class:
            continue
        if max_contexts is not None and item.num_contexts > max_contexts:
            continue
        if max_fabric_dim is not None and item.fabric_dim > max_fabric_dim:
            continue
        result.append(item)
    return result


def load_benchmark(name: str, seed: int = 0):
    """(design, fabric) for a Table I benchmark."""
    return build_benchmark(entry(name).spec(seed))
