"""Fabric-MTTF evaluation tests (including Fig. 2(b) curves)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aging import (
    NbtiModel,
    StressMap,
    compute_mttf,
    mttf_increase,
    vth_curve,
)
from repro.errors import AgingError


def stress_map(per_context):
    return StressMap(
        per_context_ns=np.asarray(per_context, dtype=float),
        clock_period_ns=5.0,
    )


@pytest.fixture
def uneven():
    """4 PEs, 2 contexts: PE0 heavily stressed, PE3 idle."""
    return stress_map([
        [3.0, 1.0, 0.5, 0.0],
        [3.0, 0.0, 0.5, 0.0],
    ])


class TestComputeMttf:
    def test_limiting_pe_is_busiest_at_uniform_temp(self, uneven):
        temps = np.full(4, 350.0)
        report = compute_mttf(uneven, temps)
        assert report.limiting_pe == 0
        assert report.mttf_s == report.per_pe_mttf_s[0]
        assert math.isinf(report.per_pe_mttf_s[3])

    def test_temperature_can_shift_limiter(self, uneven):
        temps = np.array([320.0, 390.0, 320.0, 320.0])
        report = compute_mttf(uneven, temps)
        # PE1 has 6x less stress but is 70K hotter — it fails first.
        assert report.limiting_pe == 1

    def test_shape_validation(self, uneven):
        with pytest.raises(AgingError):
            compute_mttf(uneven, np.full(5, 350.0))

    def test_all_idle_rejected(self):
        idle = stress_map([[0.0, 0.0], [0.0, 0.0]])
        with pytest.raises(AgingError):
            compute_mttf(idle, np.full(2, 350.0))

    def test_mttf_years_conversion(self, uneven):
        report = compute_mttf(uneven, np.full(4, 350.0))
        assert report.mttf_years == pytest.approx(
            report.mttf_s / (365.25 * 24 * 3600), rel=1e-12
        )


class TestMttfIncrease:
    def test_levelling_increases_mttf(self, uneven):
        temps = np.full(4, 350.0)
        original = compute_mttf(uneven, temps)
        levelled = stress_map([
            [2.0, 2.0, 2.0, 2.0],
            [0.0, 0.0, 0.0, 0.0],
        ])
        remapped = compute_mttf(levelled, temps)
        increase = mttf_increase(original, remapped)
        # max accumulated stress 6 -> 2 at equal temperature: 3x.
        assert increase == pytest.approx(3.0, rel=1e-9)

    def test_identity_is_one(self, uneven):
        temps = np.full(4, 350.0)
        report = compute_mttf(uneven, temps)
        assert mttf_increase(report, report) == pytest.approx(1.0)


class TestVthCurve:
    def test_curve_crosses_failure_at_mttf(self, uneven):
        model = NbtiModel()
        report = compute_mttf(uneven, np.full(4, 350.0), model)
        curve = vth_curve(report, "orig", model, num_points=200)
        # Find the first sample beyond the failure threshold.
        crossing = np.argmax(curve.shifts_v >= curve.failure_shift_v)
        crossing_time = curve.times_s[crossing]
        assert crossing_time == pytest.approx(report.mttf_s, rel=0.05)

    def test_common_horizon(self, uneven):
        report = compute_mttf(uneven, np.full(4, 350.0))
        curve = vth_curve(report, "x", horizon_s=1e9, num_points=16)
        assert curve.times_s[-1] == pytest.approx(1e9)
        assert len(curve.shifts_v) == 16

    def test_lower_slope_for_levelled_map(self, uneven):
        """The Fig. 2(b) shape: re-mapped curve sits below the original."""
        temps = np.full(4, 350.0)
        original = compute_mttf(uneven, temps)
        levelled = stress_map([
            [2.0, 2.0, 2.0, 2.0],
            [0.0, 0.0, 0.0, 0.0],
        ])
        remapped = compute_mttf(levelled, temps)
        horizon = original.mttf_s * 1.5
        c_orig = vth_curve(original, "o", horizon_s=horizon)
        c_new = vth_curve(remapped, "n", horizon_s=horizon)
        assert np.all(c_new.shifts_v[1:] < c_orig.shifts_v[1:])
