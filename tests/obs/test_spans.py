"""Span nesting, timing-tree shape and sink dispatch."""

from __future__ import annotations

import time

import pytest

from repro.obs import (
    PATH_SEP,
    TreeSink,
    attached,
    current_span,
    event,
    span,
)
from repro.obs.spans import active_sinks


class TestNesting:
    def test_root_span_path(self):
        with span("flow") as sp:
            assert sp.path == "flow"
            assert sp.parent_path is None

    def test_nested_paths(self):
        with span("flow"):
            with span("phase2"):
                with span("algorithm1") as sp:
                    assert sp.path == PATH_SEP.join(
                        ["flow", "phase2", "algorithm1"]
                    )
                    assert sp.parent_path == PATH_SEP.join(["flow", "phase2"])

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_sibling_spans_share_parent(self):
        sink = TreeSink()
        with attached(sink):
            with span("flow"):
                with span("phase1"):
                    pass
                with span("phase2"):
                    pass
        paths = [record["path"] for record in sink.spans]
        assert paths == ["flow > phase1", "flow > phase2", "flow"]

    def test_stack_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert current_span() is None

    def test_exception_marks_span(self):
        sink = TreeSink()
        with attached(sink):
            with pytest.raises(ValueError):
                with span("solve"):
                    raise ValueError("infeasible")
        assert sink.spans[0]["attrs"]["error"] == "ValueError"


class TestTiming:
    def test_duration_measures_elapsed_time(self):
        with span("sleepy") as sp:
            time.sleep(0.02)
        assert sp.duration_s >= 0.02

    def test_duration_is_live_while_open(self):
        with span("live") as sp:
            time.sleep(0.01)
            in_flight = sp.duration_s
            assert in_flight >= 0.01
        assert sp.duration_s >= in_flight

    def test_child_durations_bounded_by_parent(self):
        sink = TreeSink()
        with attached(sink):
            with span("parent"):
                with span("child"):
                    time.sleep(0.01)
        by_name = {r["name"]: r for r in sink.spans}
        assert by_name["child"]["duration_s"] <= by_name["parent"]["duration_s"]


class TestAttrsAndEvents:
    def test_set_attrs(self):
        with span("s", mode="rotate") as sp:
            sp.set(iterations=3)
        assert sp.attrs == {"mode": "rotate", "iterations": 3}

    def test_event_carries_parent_and_duration(self):
        sink = TreeSink()
        with attached(sink):
            with span("flow"):
                event("fallback", reason="mttf")
        (record,) = sink.events
        assert record["name"] == "fallback"
        assert record["parent"] == "flow"
        assert record["duration_s"] == 0.0
        assert record["attrs"] == {"reason": "mttf"}

    def test_event_without_sink_is_dropped(self):
        event("nobody-listening")  # must not raise

    def test_to_record_keys(self):
        with span("x") as sp:
            pass
        record = sp.to_record()
        for key in ("type", "name", "path", "parent", "t_s", "duration_s", "attrs"):
            assert key in record


class TestSinkManagement:
    def test_attached_is_scoped(self):
        sink = TreeSink()
        before = len(active_sinks())
        with attached(sink):
            assert sink in active_sinks()
        assert sink not in active_sinks()
        assert len(active_sinks()) == before

    def test_no_sink_no_records(self):
        sink = TreeSink()
        with span("unobserved"):
            pass
        assert sink.spans == []
