"""Vectorized certification audit vs the scalar row loop.

The certifier is the trust anchor: its vectorized path must agree with
the scalar ordered-sum audit bit-for-bit — same verdicts, same violation
order, same formatted excess amounts — including on near-tolerance
activities where a reassociated dot product would flip a verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.kernels import kernels_scope
from repro.milp.model import Model
from repro.milp.status import Solution, SolveStatus
from repro.verify import certify_solution


def _solution(values, objective=0.0):
    return Solution(
        status=SolveStatus.OPTIMAL, objective=objective, values=values
    )


def _certify_both(model, solution):
    with kernels_scope("scalar"):
        ref = certify_solution(model, solution)
    with kernels_scope("vector"):
        vec = certify_solution(model, solution)
    return ref, vec


def _assert_identical(ref, vec):
    assert ref.ok == vec.ok
    assert len(ref.violations) == len(vec.violations)
    for a, b in zip(ref.violations, vec.violations):
        assert a.kind == b.kind
        assert a.subject == b.subject
        assert a.detail == b.detail


def _random_model(seed, num_vars=18, num_rows=30):
    """Dense-ish random LP rows with mixed senses and awkward floats."""
    rng = random.Random(seed)
    model = Model(f"fuzz{seed}")
    xs = [model.add_continuous(f"x{i}", lb=-5.0, ub=5.0) for i in range(num_vars)]
    values = {x: rng.uniform(-5.0, 5.0) for x in xs}
    for row in range(num_rows):
        terms = rng.sample(xs, rng.randrange(1, num_vars))
        expr = sum(rng.uniform(-3.0, 3.0) * x for x in terms)
        activity = sum(
            coeff * values[var] for var, coeff in expr.terms.items()
        )
        sense = rng.choice(["<=", ">=", "=="])
        # Mix of satisfied, violated and knife-edge rows.
        offset = rng.choice([-1.0, -1e-9, 0.0, 1e-9, 1.0])
        if sense == "<=":
            constraint = expr <= activity + offset
        elif sense == ">=":
            constraint = expr >= activity + offset
        else:
            constraint = expr == activity + offset
        model.add_constraint(constraint, name=f"row{row}")
    model.set_objective(xs[0], minimize=True)
    return model, values


class TestCertifyEquivalence:
    def test_feasible_point_identical(self):
        model = Model("ok")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y <= 1, name="cap")
        model.set_objective(x + y, minimize=False)
        ref, vec = _certify_both(model, _solution({x: 1.0, y: 0.0}, 1.0))
        _assert_identical(ref, vec)
        assert ref.ok

    def test_violations_identical_in_order_and_text(self):
        model = Model("bad")
        x = model.add_continuous("x", lb=0.0, ub=10.0)
        y = model.add_continuous("y", lb=0.0, ub=10.0)
        model.add_constraint(x + y <= 1, name="le_row")
        model.add_constraint(x - y >= 5, name="ge_row")
        model.add_constraint(x + 2 * y == 3, name="eq_row")
        model.set_objective(x, minimize=True)
        ref, vec = _certify_both(model, _solution({x: 2.0, y: 2.0}))
        _assert_identical(ref, vec)
        assert not ref.ok
        assert len(ref.violations) >= 3

    def test_missing_values_treated_as_zero_in_both(self):
        model = Model("sparse")
        x = model.add_continuous("x", lb=0.0, ub=4.0)
        y = model.add_continuous("y", lb=0.0, ub=4.0)
        model.add_constraint(x + y >= 1, name="need_one")
        model.set_objective(x, minimize=True)
        ref, vec = _certify_both(model, _solution({x: 2.0}))
        _assert_identical(ref, vec)

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzzed_models_identical(self, seed):
        model, values = _random_model(seed)
        ref, vec = _certify_both(model, _solution(values))
        _assert_identical(ref, vec)

    def test_restamp_invalidates_cached_rhs(self):
        # The RHS cache keys on (structure_rev, restamp_rev); a parameter
        # restamp must invalidate it in lockstep with the scalar path.
        model = Model("stamped")
        x = model.add_continuous("x", lb=0.0, ub=10.0)
        model.declare_parameter("cap", 5.0)
        model.add_constraint(x <= 5.0, name="cap_row", parameter="cap")
        model.set_objective(x, minimize=False)
        solution = _solution({x: 4.0})
        ref0, vec0 = _certify_both(model, solution)
        _assert_identical(ref0, vec0)
        assert ref0.ok
        model.set_parameter("cap", 3.0)  # 4.0 now violates the row
        ref1, vec1 = _certify_both(model, solution)
        _assert_identical(ref1, vec1)
        assert not vec1.ok
