"""The async service core: execution, caching, coalescing, retry, resume.

These tests run real solves on tiny kernels (<1s each) through the full
service machinery — admission, journal, crash-isolated pools, artifact
cache — and compare served artifacts against the one-shot pipeline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.obs import registry
from repro.resilience.faults import fault_scope
from repro.service import (
    AdmissionConfig,
    FloorplanRequest,
    FloorplanService,
    JobStore,
    ServiceConfig,
    canonical_json,
    comparable_view,
)
from repro.service.jobs import Job, new_job_id
from repro.service.worker import run_request

REQUEST = {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0}


def metric(name: str) -> float:
    return registry().snapshot().get(name, {}).get("value", 0)


def config(tmp_path, **overrides):
    base = dict(
        state_dir=tmp_path / "state",
        concurrency=2,
        retry_backoff_s=0.01,
        attempt_timeout_s=120.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


async def with_service(cfg, body):
    service = FloorplanService(cfg)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.close()


class TestHappyPath:
    def test_submit_runs_and_journals(self, tmp_path):
        async def body(service):
            job = await service.run(REQUEST, timeout=120)
            assert job.status == "done"
            assert job.attempts == 1
            assert not job.cache_hit
            assert job.summary["benchmark"] == "fir8"
            assert service.store.statuses()[job.job_id] == "ok"
            return job

        job = asyncio.run(with_service(config(tmp_path), body))
        oneshot = run_request(FloorplanRequest.from_dict(REQUEST))
        assert comparable_view(job.document) == comparable_view(oneshot)

    def test_second_request_is_cache_hit(self, tmp_path):
        async def body(service):
            first = await service.run(REQUEST, timeout=120)
            second = await service.run(REQUEST, timeout=120)
            assert second.cache_hit and not first.cache_hit
            assert comparable_view(second.document) == comparable_view(
                first.document
            )

        asyncio.run(with_service(config(tmp_path), body))

    def test_cache_survives_service_restart(self, tmp_path):
        cfg = config(tmp_path)

        async def first(service):
            return await service.run(REQUEST, timeout=120)

        async def second(service):
            return await service.run(REQUEST, timeout=120)

        job1 = asyncio.run(with_service(cfg, first))
        job2 = asyncio.run(with_service(config(tmp_path), second))
        assert job2.cache_hit
        assert comparable_view(job2.document) == comparable_view(job1.document)

    def test_coalescing_identical_inflight(self, tmp_path):
        async def body(service):
            jobs = await asyncio.gather(*(
                service.submit(REQUEST) for _ in range(4)
            ))
            done = await asyncio.gather(*(
                service.wait(j.job_id, timeout=120) for j in jobs
            ))
            assert all(j.status == "done" for j in done)
            assert sum(j.coalesced for j in done) >= 2
            views = {
                canonical_json(comparable_view(j.document)) for j in done
            }
            assert len(views) == 1, "every coalesced job serves one artifact"

        before = metric("service.cache_writes")
        asyncio.run(with_service(config(tmp_path), body))
        assert metric("service.cache_writes") == before + 1

    def test_unknown_job_is_typed_error(self, tmp_path):
        async def body(service):
            with pytest.raises(ServiceError, match="unknown job"):
                service.job("job-0-ffffffff")

        asyncio.run(with_service(config(tmp_path), body))


class TestFailurePaths:
    def test_worker_crash_retries_on_fresh_pool(self, tmp_path):
        async def body(service):
            with fault_scope("service_worker_crash@1"):
                job = await service.run(REQUEST, timeout=120)
            assert job.status == "done"
            assert job.attempts == 2
            return job

        before = metric("service.worker_crashes")
        job = asyncio.run(with_service(config(tmp_path), body))
        assert metric("service.worker_crashes") == before + 1
        oneshot = run_request(FloorplanRequest.from_dict(REQUEST))
        assert comparable_view(job.document) == comparable_view(oneshot)

    def test_repeated_crashes_quarantine_job(self, tmp_path):
        async def body(service):
            with fault_scope("service_worker_crash"):
                job = await service.run(REQUEST, timeout=120)
            assert job.status == "quarantined"
            assert job.attempts == 2
            assert "died" in job.error
            assert service.store.statuses()[job.job_id] == "quarantined"

        before = metric("service.jobs_quarantined")
        asyncio.run(with_service(config(tmp_path, retries=1), body))
        assert metric("service.jobs_quarantined") == before + 1

    def test_flow_error_is_typed_failure(self, tmp_path):
        async def body(service):
            job = await service.run(
                {"kernel": "no-such-kernel", "time_limit_s": 5.0}, timeout=120
            )
            assert job.status == "failed"
            assert "unknown library kernel" in job.error
            assert service.store.statuses()[job.job_id] == "failed"

        asyncio.run(with_service(config(tmp_path, retries=0), body))

    def test_corrupted_cache_write_recomputed_not_served(self, tmp_path):
        async def body(service):
            with fault_scope("service_cache_corrupt@1"):
                first = await service.run(REQUEST, timeout=120)
                second = await service.run(REQUEST, timeout=120)
            # The second request found the corrupted entry, quarantined
            # it and recomputed — served fresh, never wrong.
            assert not second.cache_hit
            assert comparable_view(second.document) == comparable_view(
                first.document
            )
            assert len(service.cache.quarantined()) == 1
            third = await service.run(REQUEST, timeout=120)
            assert third.cache_hit

        before = metric("service.cache_corrupt")
        asyncio.run(with_service(config(tmp_path), body))
        assert metric("service.cache_corrupt") == before + 1

    def test_submit_sheds_when_full(self, tmp_path):
        cfg = config(
            tmp_path,
            admission=AdmissionConfig(max_queue=0, retry_after_s=0.5),
        )

        async def body(service):
            with pytest.raises(AdmissionError) as info:
                await service.submit(REQUEST)
            assert info.value.reason == "queue_full"
            assert info.value.retry_after_s >= 0.5

        asyncio.run(with_service(cfg, body))


class TestDrainAndResume:
    def test_drain_empty_service_is_clean(self, tmp_path):
        async def body(service):
            assert await service.drain(grace_s=1.0)
            with pytest.raises(AdmissionError) as info:
                await service.submit(REQUEST)
            assert info.value.reason == "draining"

        asyncio.run(with_service(config(tmp_path), body))

    def test_drain_waits_for_inflight(self, tmp_path):
        async def body(service):
            job = await service.submit(REQUEST)
            assert await service.drain(grace_s=120.0)
            assert service.job(job.job_id).status == "done"

        asyncio.run(with_service(config(tmp_path), body))

    def test_restart_resumes_accepted_jobs(self, tmp_path):
        cfg = config(tmp_path)
        # Simulate a crash after acceptance: the journal has the job,
        # no service ever ran it.
        store = JobStore(cfg.journal_path)
        orphan = Job(
            job_id=new_job_id(),
            request=FloorplanRequest.from_dict(REQUEST),
        )
        store.record_accepted(orphan)

        async def body(service):
            assert [j.job_id for j in service.resumed] == [orphan.job_id]
            job = await service.wait(orphan.job_id, timeout=120)
            assert job.status == "done"
            assert service.store.statuses()[orphan.job_id] == "ok"
            return job

        job = asyncio.run(with_service(cfg, body))
        oneshot = run_request(FloorplanRequest.from_dict(REQUEST))
        assert comparable_view(job.document) == comparable_view(oneshot)

    def test_resumed_duplicates_complete_exactly_once_each(self, tmp_path):
        cfg = config(tmp_path)
        store = JobStore(cfg.journal_path)
        orphans = [
            Job(job_id=new_job_id(),
                request=FloorplanRequest.from_dict(REQUEST))
            for _ in range(3)
        ]
        for orphan in orphans:
            store.record_accepted(orphan)

        async def body(service):
            jobs = await asyncio.gather(*(
                service.wait(o.job_id, timeout=120) for o in orphans
            ))
            assert all(j.status == "done" for j in jobs)

        asyncio.run(with_service(cfg, body))
        records = list(JobStore(cfg.journal_path).journal.records())
        ok_counts = {}
        for record in records:
            if record["status"] == "ok":
                ok_counts[record["entry"]] = ok_counts.get(record["entry"], 0) + 1
        assert ok_counts == {o.job_id: 1 for o in orphans}
