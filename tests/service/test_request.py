"""Request model: validation, wire format, content-addressed keys."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import FloorplanRequest, canonical_json, content_hash


def make(**overrides):
    base = {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0}
    base.update(overrides)
    return FloorplanRequest.from_dict(base)


class TestValidation:
    def test_kernel_request_valid(self):
        request = make()
        assert request.kernel == "fir8"
        assert request.tenant == "default"

    def test_needs_some_work_description(self):
        with pytest.raises(ServiceError, match="design document"):
            FloorplanRequest.from_dict({})

    def test_design_and_source_conflict(self):
        with pytest.raises(ServiceError, match="both"):
            FloorplanRequest.from_dict({
                "design": {"kind": "mapped_design"},
                "kernel": "k", "source": "in int a; out int y; y = a;",
            })

    def test_design_must_be_mapped_design(self):
        with pytest.raises(ServiceError, match="mapped_design"):
            FloorplanRequest.from_dict({"design": {"kind": "floorplan"}})

    def test_source_needs_kernel_name(self):
        with pytest.raises(ServiceError, match="needs 'kernel'"):
            FloorplanRequest.from_dict({"source": "out int y; y = 1;"})

    @pytest.mark.parametrize("field,value,match", [
        ("mode", "shuffle", "unknown mode"),
        ("fabric", "4by4", "invalid fabric"),
        ("fabric", "0x4", "no PEs"),
        ("time_limit_s", 0, "time_limit_s"),
        ("deadline_s", -1.0, "deadline_s"),
        ("tenant", "", "tenant"),
    ])
    def test_bad_fields_rejected(self, field, value, match):
        with pytest.raises(ServiceError, match=match):
            make(**{field: value})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServiceError, match="unknown request field"):
            FloorplanRequest.from_dict({"kernel": "fir8", "prio": 9})

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            FloorplanRequest.from_dict(["fir8"])

    def test_oversized_request_rejected(self):
        with pytest.raises(ServiceError, match="limit is"):
            make(source="x" * (4 * 1024 * 1024), kernel="big")


class TestWireFormat:
    def test_round_trip(self):
        request = make(tenant="team-a", labels={"run": "nightly"})
        again = FloorplanRequest.from_dict(request.to_dict())
        assert again == request

    def test_defaults_fill_in(self):
        request = FloorplanRequest.from_dict({"kernel": "fir8"})
        assert request.mode == "rotate"
        assert request.fabric == "4x4"
        assert request.time_limit_s == 30.0


class TestCacheKey:
    def test_stable_across_equal_requests(self):
        assert make().cache_key() == make().cache_key()

    def test_tenant_and_labels_do_not_key(self):
        a = make(tenant="a", labels={"x": 1})
        b = make(tenant="b", labels={"y": 2})
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize("overrides", [
        {"kernel": "checksum"},
        {"fabric": "8x8"},
        {"mode": "freeze"},
        {"time_limit_s": 10.0},
        {"deadline_s": 2.0},
    ])
    def test_result_shaping_fields_key(self, overrides):
        assert make().cache_key() != make(**overrides).cache_key()

    def test_deadline_keys_separately_from_unbounded(self):
        # A deadline can degrade the artifact; a degraded artifact must
        # never be served to an unbounded request.
        assert make().cache_key() != make(deadline_s=60.0).cache_key()

    def test_fabric_case_normalised(self):
        assert make(fabric="4X4").cache_key() == make(fabric="4x4").cache_key()


class TestCanonicalJson:
    def test_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_compact(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'
