"""Solver convergence telemetry: SolveStats, Algorithm1Stats, progress."""

from __future__ import annotations

import io

import pytest

from repro.obs.solverstats import (
    MAX_TRAJECTORY_SAMPLES,
    Algorithm1Stats,
    SolveProgress,
    SolveStats,
    convergence_rows,
    progress_enabled,
    relative_gap,
    set_progress,
)


class TestRelativeGap:
    def test_closed_gap_is_zero(self):
        assert relative_gap(10.0, 10.0) == 0.0

    def test_open_gap(self):
        assert relative_gap(10.0, 9.0) == pytest.approx(0.1)

    def test_missing_sides_are_none(self):
        assert relative_gap(None, 1.0) is None
        assert relative_gap(1.0, None) is None
        assert relative_gap(1.0, float("inf")) is None

    def test_zero_incumbent_does_not_divide_by_zero(self):
        assert relative_gap(0.0, 1.0) == pytest.approx(1e9)


class TestSolveStats:
    def test_trajectory_stays_bounded(self):
        stats = SolveStats(backend="branch_bound")
        for i in range(4 * MAX_TRAJECTORY_SAMPLES):
            stats.sample(float(i), i, None, None)
        assert len(stats.trajectory) <= MAX_TRAJECTORY_SAMPLES
        # Thinning keeps the first sample and a sparse uniform history.
        assert stats.trajectory[0].nodes == 0
        assert stats.trajectory[-1].nodes == 4 * MAX_TRAJECTORY_SAMPLES - 1

    def test_span_attrs_contract_keys(self):
        stats = SolveStats(
            backend="highs", kind="milp", nodes=7, incumbent=3.0,
            best_bound=2.5, mip_gap=1 / 6, limit_reason="time_limit",
        )
        stats.record_fixing(
            groups_total=10, groups_fixed=8, vars_fixed=30, vars_free=6,
            threshold=0.95,
        )
        attrs = stats.span_attrs()
        assert attrs["nodes"] == 7
        assert attrs["kind"] == "milp"
        assert attrs["incumbent"] == 3.0
        assert attrs["bound"] == 2.5
        assert attrs["gap"] == pytest.approx(1 / 6)
        assert attrs["limit_reason"] == "time_limit"
        assert attrs["groups_fixed"] == 8
        assert attrs["groups_total"] == 10
        assert attrs["vars_free"] == 6

    def test_span_attrs_omits_unknowns(self):
        attrs = SolveStats(backend="highs").span_attrs()
        assert "incumbent" not in attrs
        assert "limit_reason" not in attrs
        assert "groups_total" not in attrs

    def test_to_dict_fixing_block(self):
        stats = SolveStats(backend="highs")
        assert "fixing" not in stats.to_dict()
        stats.record_fixing(4, 3, 9, 3, threshold=0.95)
        fixing = stats.to_dict()["fixing"]
        assert fixing == {
            "threshold": 0.95, "groups_total": 4, "groups_fixed": 3,
            "vars_fixed": 9, "vars_free": 3,
        }

    def test_gap_percent(self):
        assert SolveStats(mip_gap=0.25).gap_percent == 25.0
        assert SolveStats().gap_percent is None


class TestAlgorithm1Stats:
    def test_iteration_recording(self):
        alg1 = Algorithm1Stats()
        alg1.record_iteration(5.0, "infeasible")
        alg1.record_iteration(5.5, "cpd_violation")
        alg1.record_iteration(6.0, "accepted")
        assert alg1.iterations == 3
        assert alg1.relaxations == 2
        assert alg1.st_trajectory == [5.0, 5.5, 6.0]

    def test_absorb_solve_aggregates(self):
        alg1 = Algorithm1Stats()
        alg1.absorb_solve({"nodes": 5, "mip_gap": 0.1})
        alg1.absorb_solve({"nodes": 3, "mip_gap": None})
        alg1.absorb_solve(None)  # missing stats are ignored
        assert alg1.solves == 2
        assert alg1.total_nodes == 8
        assert alg1.max_mip_gap == pytest.approx(0.1)

    def test_to_dict_round_trip_fields(self):
        alg1 = Algorithm1Stats(st_low_ns=1.0, st_up_ns=9.0, delta_ns=0.5)
        alg1.record_iteration(2.0, "accepted")
        data = alg1.to_dict()
        assert data["st_trajectory"] == [2.0]
        assert data["verdicts"] == ["accepted"]
        assert data["iterations"] == 1
        assert data["relaxations"] == 0


class TestProgress:
    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_PROGRESS", raising=False)
        assert not progress_enabled()
        set_progress(True)
        try:
            assert progress_enabled()
        finally:
            set_progress(None)
        monkeypatch.setenv("REPRO_SOLVER_PROGRESS", "1")
        assert progress_enabled()
        monkeypatch.setenv("REPRO_SOLVER_PROGRESS", "0")
        assert not progress_enabled()

    def test_pipe_rendering_and_throttle(self):
        buf = io.StringIO()
        progress = SolveProgress("bb m", stream=buf, interval_s=1.0)
        progress.update(0.0, 1, None, 4.0)
        progress.update(0.5, 2, 5.0, 4.0)  # throttled away
        progress.update(1.5, 3, 5.0, 4.5)
        progress.close()
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert "nodes=1" in lines[0] and "inc=-" in lines[0]
        assert "nodes=3" in lines[1] and "gap=10.0%" in lines[1]


class TestConvergenceRows:
    def test_rows_from_span_records(self):
        records = [
            {
                "duration_s": 0.25,
                "attrs": {
                    "model": "eq3", "backend": "highs", "kind": "milp",
                    "status": "optimal", "nodes": 12, "incumbent": 3.0,
                    "bound": 3.0, "gap": 0.0,
                },
            },
            {"duration_s": 0.01, "attrs": {"model": "lp", "kind": "lp"}},
        ]
        rows = convergence_rows(records)
        assert rows[0] == [
            "eq3", "highs", "milp", "optimal", 12, "3", "3", "0.00", 0.25,
        ]
        assert rows[1][0] == "lp"
        assert rows[1][5] == "-"  # no incumbent
