"""Critical-path rotation (paper Section V-B.1, Fig. 4a).

Freezing every critical-path op to its original PE protects the CPD but
can pin the most-stressed PEs in *every* context, capping the achievable
MTTF gain.  The paper therefore rotates each context's frozen critical
paths among the 8 symmetries of the square fabric (4 rotations x optional
mirror) so the frozen ops of different contexts overlap as little as
possible.

Rotations and reflections of the square grid are isometries of the
Manhattan metric, so wire lengths *within* a rotated path are preserved
exactly; only wires entering from other contexts or pads change — which is
why Algorithm 1 re-checks the CPD after re-mapping.

Orientation selection follows the paper's randomized rule:

* C <= 8 contexts: all contexts receive **distinct** orientations;
* C > 8: every orientation appears exactly ``C // 8`` times, plus at most
  one extra (i.e. never more than ``C // 8 + 1``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.errors import ArchitectureError, MappingError

#: Number of unique path orientations on a square fabric (paper Fig. 4a).
NUM_ORIENTATIONS = 8

Transform = Callable[[int, int, int], tuple[int, int]]

# The 8 symmetries of an S x S grid, as (row, col, S) -> (row', col').
# Index 0 is the identity (the Freeze behaviour for that context).
_TRANSFORMS: tuple[Transform, ...] = (
    lambda r, c, s: (r, c),                      # identity
    lambda r, c, s: (c, s - 1 - r),              # rotate 90 cw
    lambda r, c, s: (s - 1 - r, s - 1 - c),      # rotate 180
    lambda r, c, s: (s - 1 - c, r),              # rotate 270 cw
    lambda r, c, s: (r, s - 1 - c),              # mirror columns
    lambda r, c, s: (c, r),                      # mirror of 90 (transpose)
    lambda r, c, s: (s - 1 - r, c),              # mirror of 180 (flip rows)
    lambda r, c, s: (s - 1 - c, s - 1 - r),      # mirror of 270 (anti-transpose)
)


def apply_orientation(
    fabric: Fabric, orientation: int, position: tuple[int, int]
) -> tuple[int, int]:
    """Map a grid position through one of the 8 orientations.

    Requires a square fabric: the 90-degree family does not keep a
    rectangular grid on-grid.
    """
    if not fabric.is_square():
        raise ArchitectureError(
            "critical-path rotation requires a square fabric "
            f"(got {fabric.rows}x{fabric.cols})"
        )
    if not 0 <= orientation < NUM_ORIENTATIONS:
        raise ArchitectureError(f"orientation {orientation} outside 0..7")
    row, col = position
    if (row, col) not in fabric:
        raise MappingError(f"position {position} outside the fabric")
    return _TRANSFORMS[orientation](row, col, fabric.rows)


def assign_orientations(
    num_contexts: int, rng: random.Random
) -> list[int]:
    """The paper's randomized orientation-per-context rule (seeded)."""
    if num_contexts < 1:
        raise ArchitectureError("need at least one context")
    if num_contexts <= NUM_ORIENTATIONS:
        return rng.sample(range(NUM_ORIENTATIONS), num_contexts)
    base_repeats = num_contexts // NUM_ORIENTATIONS
    remainder = num_contexts % NUM_ORIENTATIONS
    pool = list(range(NUM_ORIENTATIONS)) * base_repeats
    pool.extend(rng.sample(range(NUM_ORIENTATIONS), remainder))
    rng.shuffle(pool)
    return pool


@dataclass
class FrozenPlan:
    """The fixed positions of critical-path ops after (optional) rotation.

    Attributes
    ----------
    positions:
        ``{op_id: PE index}`` required bindings.
    orientation_of_context:
        ``{context: orientation index}`` (all 0 in Freeze mode).
    """

    positions: dict[int, int]
    orientation_of_context: dict[int, int]

    @property
    def frozen_ops(self) -> set[int]:
        return set(self.positions)


def freeze_plan(
    floorplan: Floorplan, critical_ops_by_context: Mapping[int, Sequence[int]]
) -> FrozenPlan:
    """Freeze mode: every critical op keeps its original PE."""
    positions = {}
    for context, ops in critical_ops_by_context.items():
        for op in ops:
            positions[op] = floorplan.pe_of[op]
    orientations = {c: 0 for c in critical_ops_by_context}
    return FrozenPlan(positions=positions, orientation_of_context=orientations)


def _frozen_stress_overlap(
    floorplan: Floorplan,
    critical_ops_by_context: Mapping[int, Sequence[int]],
    orientations: Mapping[int, int],
    stress_of: Mapping[int, float],
) -> float:
    """Max per-PE frozen stress under a candidate orientation assignment.

    This is the overlap objective of Step 2.1: the frozen ops alone define
    a floor on any PE's accumulated stress; rotating contexts apart lowers
    that floor.
    """
    fabric = floorplan.fabric
    per_pe: dict[int, float] = {}
    for context, ops in critical_ops_by_context.items():
        orientation = orientations[context]
        for op in ops:
            row, col = floorplan.position_of(op)
            new_row, new_col = apply_orientation(fabric, orientation, (row, col))
            pe_index = fabric.index_at(new_row, new_col)
            per_pe[pe_index] = per_pe.get(pe_index, 0.0) + stress_of[op]
    return max(per_pe.values(), default=0.0)


def rotate_plan(
    floorplan: Floorplan,
    critical_ops_by_context: Mapping[int, Sequence[int]],
    stress_of: Mapping[int, float],
    rng: random.Random,
    samples: int = 8,
) -> FrozenPlan:
    """Rotate mode: pick constrained-random orientations minimising overlap.

    ``samples`` draws of the paper's randomized rule are evaluated on the
    frozen-stress-overlap objective and the best kept (``samples=1``
    reproduces the paper's single random draw exactly).
    """
    contexts = sorted(critical_ops_by_context)
    best_assignment: dict[int, int] | None = None
    best_overlap = float("inf")
    for _ in range(max(1, samples)):
        drawn = assign_orientations(floorplan.num_contexts, rng)
        assignment = {c: drawn[c] for c in contexts}
        overlap = _frozen_stress_overlap(
            floorplan, critical_ops_by_context, assignment, stress_of
        )
        if overlap < best_overlap:
            best_overlap = overlap
            best_assignment = assignment
    assert best_assignment is not None
    positions: dict[int, int] = {}
    fabric = floorplan.fabric
    for context, ops in critical_ops_by_context.items():
        orientation = best_assignment[context]
        for op in ops:
            row, col = floorplan.position_of(op)
            new_row, new_col = apply_orientation(fabric, orientation, (row, col))
            positions[op] = fabric.index_at(new_row, new_col)
    return FrozenPlan(
        positions=positions, orientation_of_context=dict(best_assignment)
    )
