"""Artifact cache: atomic durability, corruption quarantine, certification.

Satellite 3 of the service PR: property tests that truncate and bit-flip
persisted artifacts on disk and assert the cache quarantines them,
recomputes transparently (a miss — never a wrong or stale answer) and
bumps ``service.cache_corrupt``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import registry
from repro.resilience.faults import fault_scope
from repro.service import ArtifactCache, FloorplanRequest, content_hash
from repro.service.worker import run_request


def metric(name: str) -> float:
    return registry().snapshot().get(name, {}).get("value", 0)


PAYLOAD = {"kind": "flow_result", "summary": {"mttf": 1.25}, "n": 7}
KEY = content_hash(PAYLOAD)


@pytest.fixture()
def cache(tmp_path):
    # certify=False isolates the integrity layer; certification has its
    # own tests below against a real flow_result.
    return ArtifactCache(tmp_path / "cache", certify=False)


class TestRoundTrip:
    def test_put_fetch(self, cache):
        cache.put(KEY, PAYLOAD)
        assert cache.fetch(KEY) == PAYLOAD
        assert KEY in cache
        assert len(cache) == 1

    def test_miss_on_absent_key(self, cache):
        before = metric("service.cache_misses")
        assert cache.fetch("0" * 64) is None
        assert metric("service.cache_misses") == before + 1

    def test_put_overwrites_atomically(self, cache):
        cache.put(KEY, PAYLOAD)
        cache.put(KEY, PAYLOAD)
        assert cache.fetch(KEY) == PAYLOAD
        assert len(cache) == 1

    def test_no_scratch_files_left_behind(self, cache, tmp_path):
        cache.put(KEY, PAYLOAD)
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if ".tmp." in p.name
        ]
        assert leftovers == []


class TestCorruptionQuarantine:
    def assert_quarantined_then_recovers(self, cache):
        """The shared postcondition: miss, quarantine, clean recompute."""
        before = metric("service.cache_corrupt")
        assert cache.fetch(KEY) is None, "corrupted entry must read as a miss"
        assert metric("service.cache_corrupt") == before + 1
        assert not cache.path_of(KEY).exists(), "bad entry must be moved out"
        assert len(cache.quarantined()) >= 1
        # Transparent recompute: a fresh put serves cleanly again.
        cache.put(KEY, PAYLOAD)
        assert cache.fetch(KEY) == PAYLOAD

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=0.99))
    def test_truncation_any_length(self, tmp_path_factory, fraction):
        cache = ArtifactCache(
            tmp_path_factory.mktemp("cache"), certify=False
        )
        path = cache.put(KEY, PAYLOAD)
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * fraction)])
        self.assert_quarantined_then_recovers(cache)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_bit_flip_anywhere(self, tmp_path_factory, data):
        cache = ArtifactCache(
            tmp_path_factory.mktemp("cache"), certify=False
        )
        path = cache.put(KEY, PAYLOAD)
        raw = bytearray(path.read_bytes())
        position = data.draw(st.integers(0, len(raw) - 1))
        bit = data.draw(st.integers(0, 7))
        raw[position] ^= 1 << bit
        if bytes(raw) == path.read_bytes():  # pragma: no cover - impossible
            return
        path.write_bytes(bytes(raw))
        # A flip inside a JSON number/string *value* of the payload still
        # parses — the checksum catches it; flips in structure fail the
        # parse; flips in the stored checksum mismatch the payload.  All
        # must quarantine.  (A flip limited to envelope whitespace cannot
        # happen: canonical JSON has none.)
        self.assert_quarantined_then_recovers(cache)

    def test_wrong_key_envelope_quarantined(self, cache):
        path = cache.put(KEY, PAYLOAD)
        envelope = json.loads(path.read_text())
        other = "f" * 64
        target = cache.path_of(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(envelope))
        assert cache.fetch(other) is None
        assert not target.exists()

    def test_non_envelope_json_quarantined(self, cache):
        path = cache.path_of(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"hello": "world"}')
        before = metric("service.cache_corrupt")
        assert cache.fetch(KEY) is None
        assert metric("service.cache_corrupt") == before + 1

    def test_quarantine_names_never_collide(self, cache):
        for _ in range(3):
            path = cache.put(KEY, PAYLOAD)
            path.write_text("garbage")
            assert cache.fetch(KEY) is None
        names = [p.name for p in cache.quarantined()]
        assert len(names) == len(set(names)) == 3

    def test_write_time_fault_caught_on_read(self, cache):
        with fault_scope("service_cache_corrupt"):
            cache.put(KEY, PAYLOAD)
        self.assert_quarantined_then_recovers(cache)


@pytest.fixture(scope="module")
def flow_document():
    return run_request(FloorplanRequest.from_dict(
        {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0}
    ))


class TestCertification:
    def test_genuine_artifact_certifies(self, tmp_path, flow_document):
        cache = ArtifactCache(tmp_path / "cache", certify=True)
        key = content_hash(flow_document)
        cache.put(key, flow_document)
        before = metric("service.cache_certified")
        assert cache.fetch(key) == flow_document
        assert metric("service.cache_certified") == before + 1

    def test_consistent_but_lying_artifact_rejected(self, tmp_path, flow_document):
        # Tamper with a *claim* and re-checksum: integrity passes, so
        # only independent re-certification can catch it.
        cache = ArtifactCache(tmp_path / "cache", certify=True)
        lying = json.loads(json.dumps(flow_document))
        lying["summary"]["final_cpd_ns"] = (
            float(lying["summary"]["final_cpd_ns"]) + 1.0
        )
        key = content_hash(lying)
        cache.put(key, lying)
        before = metric("service.cache_certify_failures")
        assert cache.fetch(key) is None
        assert metric("service.cache_certify_failures") == before + 1
        assert len(cache.quarantined()) == 1

    def test_non_flow_payload_rejected_not_raised(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache", certify=True)
        cache.put(KEY, PAYLOAD)  # not a certifiable flow_result
        assert cache.fetch(KEY) is None
        assert len(cache.quarantined()) == 1
