"""MILP constraint builders for the re-mapping formulation (paper Eq. 3).

The formulation's variables are the binary assignments ``OP_ijk`` (op j of
context i on PE k).  Four constraint families are built here:

* **assignment** — each op is bound to exactly one candidate PE;
* **exclusivity** — a PE hosts at most one op per context (implicit in any
  legal floorplan; stated explicitly for the solver);
* **stress** — per-PE accumulated stress (movable + frozen contributions)
  must not exceed ``ST_target``;
* **path wire length** — Eq. (5): each monitored path's total Manhattan
  wire length must fit its delay slack.

The paper's Eq. (5) expresses wire length as the Manhattan distance
between driver and load, both of which are selected by binary variables —
a product of binaries if written directly.  We linearise it exactly:
an op's coordinates are the *linear* expressions
``X = sum_k col(k) * x_k`` / ``Y = sum_k row(k) * x_k`` (one-hot over
candidates), and each wire segment gets auxiliary variables
``dx >= +-(X_a - X_b)``, ``dy >= +-(Y_a - Y_b)``; the path constraint
bounds ``sum (dx + dy)`` from above, which forces each ``dx``/``dy`` to
its exact absolute value whenever the bound is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.arch.fabric import Fabric
from repro.errors import BudgetInfeasibleError, ModelError
from repro.hls.allocate import MappedDesign
from repro.milp.expr import LinExpr, Variable, linear_sum
from repro.milp.model import Model
from repro.timing.graph import Endpoint, EndpointKind
from repro.timing.kpaths import MonitoredPath


@dataclass
class CoordinateExprs:
    """Linear coordinate expressions (or constants) for every endpoint."""

    x_of: dict[object, LinExpr] = field(default_factory=dict)
    y_of: dict[object, LinExpr] = field(default_factory=dict)


@dataclass
class RemapVariables:
    """The decision variables of one re-mapping model.

    Attributes
    ----------
    model:
        The MILP under construction.
    assign:
        ``{op_id: [(variable, pe_index), ...]}`` one-hot groups.
    coords:
        Per-endpoint coordinate expressions.
    distance_vars:
        Shared ``(dx, dy)`` auxiliaries per wire segment.
    """

    model: Model
    assign: dict[int, list[tuple[Variable, int]]] = field(default_factory=dict)
    coords: CoordinateExprs = field(default_factory=CoordinateExprs)
    distance_vars: dict[frozenset, tuple[Variable, Variable]] = field(
        default_factory=dict
    )

    def groups(self) -> list[list[Variable]]:
        """Assignment groups for the rounding strategies."""
        return [[var for var, _ in members] for members in self.assign.values()]


def _endpoint_key(endpoint: Endpoint) -> tuple[str, int]:
    return (endpoint.kind.value, endpoint.ident)


def add_assignment_variables(
    model: Model,
    candidates: Mapping[int, Sequence[int]],
    design: MappedDesign,
) -> RemapVariables:
    """Create the one-hot OP_ijk variables and assignment constraints."""
    variables = RemapVariables(model=model)
    for op_id in sorted(candidates):
        context = design.ops[op_id].context
        members: list[tuple[Variable, int]] = []
        for pe_index in candidates[op_id]:
            var = model.add_binary(f"x[{op_id},c{context},pe{pe_index}]")
            members.append((var, pe_index))
        if not members:
            raise ModelError(f"op {op_id} has no candidate PEs")
        variables.assign[op_id] = members
        model.add_constraint(
            linear_sum(var for var, _ in members) == 1,
            name=f"assign[{op_id}]",
            tags={"family": "assignment", "op": op_id, "context": context},
        )
    return variables


def add_exclusivity_constraints(
    variables: RemapVariables,
    design: MappedDesign,
    num_pes: int,
) -> None:
    """At most one movable op per (context, PE) slot.

    Slots occupied by frozen ops must already be excluded from candidate
    sets, so they need no constraint here.
    """
    per_slot: dict[tuple[int, int], list[Variable]] = {}
    for op_id, members in variables.assign.items():
        context = design.ops[op_id].context
        for var, pe_index in members:
            per_slot.setdefault((context, pe_index), []).append(var)
    for (context, pe_index), slot_vars in sorted(per_slot.items()):
        if len(slot_vars) < 2:
            continue  # a single candidate can never conflict
        variables.model.add_constraint(
            linear_sum(slot_vars) <= 1,
            name=f"slot[c{context},pe{pe_index}]",
            tags={"family": "exclusivity", "context": context, "pe": pe_index},
        )


def add_stress_constraints(
    variables: RemapVariables,
    design: MappedDesign,
    num_pes: int,
    st_target_ns: float,
    frozen_stress_ns: Mapping[int, float],
    fabric: Fabric | None = None,
) -> None:
    """Per-PE accumulated stress budget (the first constraint of Eq. 3).

    The rows are registered against the model's ``st_target`` RHS
    parameter, so Algorithm 1's relaxation loop re-stamps them in O(PEs)
    via ``model.set_parameter("st_target", value)`` instead of rebuilding
    the model (the only thing the loop varies is this budget).

    When ``fabric`` is given, rows carry the PE's grid coordinates in
    their domain tags so diagnostics can point at the physical cell.
    """
    per_pe_terms: dict[int, list[LinExpr]] = {}
    for op_id, members in variables.assign.items():
        stress = design.ops[op_id].stress_ns
        for var, pe_index in members:
            per_pe_terms.setdefault(pe_index, []).append(
                LinExpr.from_term(var, stress)
            )
    variables.model.declare_parameter("st_target", st_target_ns)
    for pe_index in range(num_pes):
        frozen = frozen_stress_ns.get(pe_index, 0.0)
        if frozen > st_target_ns + 1e-9:
            exc = BudgetInfeasibleError(
                f"frozen stress {frozen:.3f}ns on PE {pe_index} already "
                f"exceeds ST_target {st_target_ns:.3f}ns"
            )
            exc.pe_index = pe_index
            exc.frozen_ns = frozen
            exc.st_target_ns = st_target_ns
            raise exc
        terms = per_pe_terms.get(pe_index)
        if terms is None:
            continue
        tags: dict[str, object] = {
            "family": "stress",
            "pe": pe_index,
            "frozen_ns": round(frozen, 9),
        }
        if fabric is not None:
            tags["row"] = int(fabric.row_of[pe_index])
            tags["col"] = int(fabric.col_of[pe_index])
        variables.model.add_constraint(
            linear_sum(terms) <= st_target_ns - frozen,
            name=f"stress[pe{pe_index}]",
            parameter="st_target",
            tags=tags,
        )


def build_coordinates(
    variables: RemapVariables,
    design: MappedDesign,
    fabric: Fabric,
    frozen_positions: Mapping[int, int],
    endpoints: set[Endpoint],
) -> None:
    """Coordinate expressions for every endpooint used by path constraints.

    Movable ops get linear one-hot expressions; frozen ops and pads get
    constants.
    """
    coords = variables.coords
    for endpoint in endpoints:
        key = _endpoint_key(endpoint)
        if key in coords.x_of:
            continue
        if endpoint.kind is EndpointKind.OP:
            op_id = endpoint.ident
            if op_id in variables.assign:
                members = variables.assign[op_id]
                coords.x_of[key] = linear_sum(
                    LinExpr.from_term(var, fabric.col_of[pe]) for var, pe in members
                )
                coords.y_of[key] = linear_sum(
                    LinExpr.from_term(var, fabric.row_of[pe]) for var, pe in members
                )
            elif op_id in frozen_positions:
                pe = fabric.pe(frozen_positions[op_id])
                coords.x_of[key] = LinExpr.constant_expr(float(pe.col))
                coords.y_of[key] = LinExpr.constant_expr(float(pe.row))
            else:
                raise ModelError(
                    f"endpoint op {op_id} is neither movable nor frozen"
                )
        else:
            if endpoint.kind is EndpointKind.IN_PAD:
                pad = fabric.input_pad(endpoint.ident)
            else:
                pad = fabric.output_pad(endpoint.ident)
            coords.x_of[key] = LinExpr.constant_expr(pad.col)
            coords.y_of[key] = LinExpr.constant_expr(pad.row)


def _segment_distance(
    variables: RemapVariables,
    fabric: Fabric,
    a: Endpoint,
    b: Endpoint,
) -> LinExpr:
    """Expression bounding the Manhattan distance of one wire segment.

    Constant when both endpoints are fixed; otherwise a shared ``dx + dy``
    pair of auxiliaries with the four absolute-value constraints.
    """
    coords = variables.coords
    key_a, key_b = _endpoint_key(a), _endpoint_key(b)
    x_a, y_a = coords.x_of[key_a], coords.y_of[key_a]
    x_b, y_b = coords.x_of[key_b], coords.y_of[key_b]
    if x_a.is_constant() and x_b.is_constant():
        distance = abs(x_a.constant - x_b.constant) + abs(y_a.constant - y_b.constant)
        return LinExpr.constant_expr(distance)
    pair = frozenset((key_a, key_b))
    if pair in variables.distance_vars:
        dx, dy = variables.distance_vars[pair]
        return LinExpr.from_term(dx) + LinExpr.from_term(dy)
    span = float(fabric.rows + fabric.cols + 2)  # pads sit 1 cell off-grid
    model = variables.model
    tag = f"{key_a[0]}{key_a[1]}_{key_b[0]}{key_b[1]}"
    dx = model.add_continuous(f"dx[{tag}]", 0.0, span)
    dy = model.add_continuous(f"dy[{tag}]", 0.0, span)
    seg_tags = {"family": "distance", "segment": tag}
    model.add_constraint(dx >= x_a - x_b, name=f"absx+[{tag}]", tags=seg_tags)
    model.add_constraint(dx >= x_b - x_a, name=f"absx-[{tag}]", tags=seg_tags)
    model.add_constraint(dy >= y_a - y_b, name=f"absy+[{tag}]", tags=seg_tags)
    model.add_constraint(dy >= y_b - y_a, name=f"absy-[{tag}]", tags=seg_tags)
    variables.distance_vars[pair] = (dx, dy)
    return LinExpr.from_term(dx) + LinExpr.from_term(dy)


def add_path_constraints(
    variables: RemapVariables,
    design: MappedDesign,
    fabric: Fabric,
    paths: Sequence[MonitoredPath],
    cpd_ns: float,
) -> tuple[int, int]:
    """Eq. (5) wire-length slack constraints for the monitored paths.

    Returns ``(constraints added, frozen violations skipped)``.  Paths
    whose wire segments are all between fixed endpoints reduce to
    constants: when such a path violates its slack (possible in Rotate
    mode through a changed entry wire, since rotation only preserves
    intra-context distances), no ST_target value can repair it — it is
    skipped here and left to Algorithm 1's CPD re-check, which will reject
    the floorplan and relax or fall back.
    """
    added = 0
    frozen_violations = 0
    for index, monitored in enumerate(paths):
        path = monitored.path
        pe_delay = path.pe_delay_ns(design)
        slack_ns = cpd_ns - pe_delay
        if slack_ns < -1e-9:
            raise ModelError(
                f"path {index} has PE delay {pe_delay:.3f}ns above the CPD "
                f"{cpd_ns:.3f}ns; it should have been frozen, not constrained"
            )
        max_length = slack_ns / fabric.unit_wire_delay_ns
        total = LinExpr.sum(
            _segment_distance(variables, fabric, a, b)
            for a, b in path.wire_segments()
        )
        if total.is_constant():
            if total.constant > max_length + 1e-9:
                frozen_violations += 1
            continue
        variables.model.add_constraint(
            total <= max_length,
            name=f"path[{index}]",
            tags={
                "family": "path",
                "path": index,
                "context": path.context,
                "ops": list(path.chain),
                "delay_ns": round(monitored.delay_ns, 9),
            },
        )
        added += 1
    return added, frozen_violations


def design_wire_endpoints(design: MappedDesign) -> list[tuple[Endpoint, Endpoint]]:
    """Every physical wire of the design as an endpoint pair.

    Compute-to-compute wires (same or crossing contexts — the register read
    runs from the producer's physical PE either way), pad-to-PE input wires
    and PE-to-pad output wires.
    """
    wires: list[tuple[Endpoint, Endpoint]] = []
    for src, dst in design.compute_edges:
        wires.append((Endpoint.op(src), Endpoint.op(dst)))
    for ordinal, dst in design.input_edges:
        wires.append((Endpoint.in_pad(ordinal), Endpoint.op(dst)))
    for src, ordinal in design.output_edges:
        wires.append((Endpoint.op(src), Endpoint.out_pad(ordinal)))
    return wires


def add_wirelength_objective(
    variables: RemapVariables,
    design: MappedDesign,
    fabric: Fabric,
    frozen_positions: Mapping[int, int],
    known_only: bool = False,
) -> None:
    """Minimise the design's total wire length (robustness objective).

    The paper's Eq. (3) is a pure feasibility model (ObjFunc: Null); with a
    modern solver any feasible point is returned, and the slack on
    *unmonitored* paths lets their wires balloon past the CPD, forcing many
    Algorithm-1 relaxation iterations.  Minimising total wirelength among
    the feasible (stress-levelled, delay-constrained) floorplans removes
    that failure mode without touching any constraint the paper specifies;
    ``RemapConfig.objective = "null"`` restores the paper-pure behaviour
    for the ablation benchmark.
    """
    wires = design_wire_endpoints(design)
    if known_only:
        # Sequential decomposition: ops of not-yet-solved contexts have no
        # position; only score wires whose endpoints are all resolvable.
        def known(endpoint: Endpoint) -> bool:
            if endpoint.kind is not EndpointKind.OP:
                return True
            return (
                endpoint.ident in variables.assign
                or endpoint.ident in frozen_positions
            )

        wires = [(a, b) for a, b in wires if known(a) and known(b)]
    endpoints: set[Endpoint] = set()
    for a, b in wires:
        endpoints.add(a)
        endpoints.add(b)
    build_coordinates(variables, design, fabric, frozen_positions, endpoints)
    # Single-pass accumulation: repeated `+` would copy the growing term
    # dict once per wire (quadratic in design size).
    total = LinExpr.sum(
        _segment_distance(variables, fabric, a, b) for a, b in wires
    )
    variables.model.set_objective(total, minimize=True)


def collect_endpoints(paths: Sequence[MonitoredPath]) -> set[Endpoint]:
    """All wire endpoints referenced by a set of monitored paths."""
    endpoints: set[Endpoint] = set()
    for monitored in paths:
        for a, b in monitored.path.wire_segments():
            endpoints.add(a)
            endpoints.add(b)
    return endpoints
