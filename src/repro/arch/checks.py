"""Cross-cutting validators for architecture-level objects.

These are used at flow boundaries (after placement, after re-mapping) so
that a buggy optimisation step fails loudly instead of producing a silently
illegal configuration.
"""

from __future__ import annotations

from repro.arch.context import Floorplan
from repro.errors import MappingError


def check_same_schedule(original: Floorplan, remapped: Floorplan) -> None:
    """Verify a re-mapping changed only PE bindings, never the schedule.

    The paper's Phase 2 re-binds operations to new PEs *within* their
    context (Section IV); moving an operation across contexts would change
    the latency.  Raises :class:`MappingError` on any difference.
    """
    if original.num_contexts != remapped.num_contexts:
        raise MappingError(
            f"context count changed: {original.num_contexts} -> "
            f"{remapped.num_contexts}"
        )
    if set(original.ops) != set(remapped.ops):
        raise MappingError("re-mapping added or removed operations")
    moved_context = [
        op
        for op in original.ops
        if original.context_of[op] != remapped.context_of[op]
    ]
    if moved_context:
        raise MappingError(
            f"ops {moved_context[:10]} changed context during re-mapping"
        )


def check_frozen_ops(
    original: Floorplan,
    remapped: Floorplan,
    frozen_positions: dict[int, int],
) -> None:
    """Verify frozen (critical-path) ops sit exactly where they must.

    ``frozen_positions`` maps op id to its required PE index — the original
    PE in *Freeze* mode, or the rotated position in *Rotate* mode.
    """
    for op, required_pe in frozen_positions.items():
        if op not in remapped.pe_of:
            raise MappingError(f"frozen op {op} missing from re-mapped floorplan")
        actual = remapped.pe_of[op]
        if actual != required_pe:
            raise MappingError(
                f"frozen op {op} moved to PE {actual}, required PE {required_pe}"
            )
    check_same_schedule(original, remapped)


def check_capacity(floorplan: Floorplan) -> None:
    """Verify no context exceeds the fabric capacity."""
    for context in range(floorplan.num_contexts):
        used = len(floorplan.ops_in_context(context))
        if used > floorplan.fabric.num_pes:
            raise MappingError(
                f"context {context} binds {used} ops on a "
                f"{floorplan.fabric.num_pes}-PE fabric"
            )
    floorplan.validate()
