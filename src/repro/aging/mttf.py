"""MTTF computation for multi-context floorplans (paper Section III).

The fabric fails when its first PE fails.  For each PE we combine

* its long-term duty cycle (accumulated stress time / schedule duration,
  from the :class:`~repro.aging.stress.StressMap`) and
* its steady-state accumulated temperature (from the thermal simulator)

through the inverted Eq. (1) failure condition.  The fabric MTTF is the
minimum over PEs.  The paper identifies the PE with the maximum
accumulated temperature and evaluates Eq. (1) there; taking the minimum
over all PEs generalises that heuristic (the two coincide whenever the
hottest PE is also the most stressed, which the corner-packed baseline
produces) and can only make the reported *improvement* more conservative.

Also provides the Vth-vs-time curves of Fig. 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aging.nbti import NbtiModel
from repro.aging.stress import StressMap
from repro.errors import AgingError
from repro.units import seconds_to_years


@dataclass
class MttfReport:
    """Lifetime evaluation of one floorplan.

    Attributes
    ----------
    per_pe_mttf_s:
        MTTF of each PE in seconds (inf for unused PEs).
    mttf_s:
        Fabric MTTF = min over PEs.
    limiting_pe:
        Index of the PE that fails first.
    duty:
        Long-term duty cycle per PE.
    temperature_k:
        Accumulated temperature per PE used in the evaluation.
    """

    per_pe_mttf_s: np.ndarray
    mttf_s: float
    limiting_pe: int
    duty: np.ndarray
    temperature_k: np.ndarray

    @property
    def mttf_years(self) -> float:
        return seconds_to_years(self.mttf_s)


def compute_mttf(
    stress: StressMap,
    temperature_k: np.ndarray,
    model: NbtiModel | None = None,
) -> MttfReport:
    """Fabric MTTF from a stress map and a per-PE temperature map."""
    model = model or NbtiModel()
    temperature_k = np.asarray(temperature_k, dtype=float)
    if temperature_k.shape != (stress.num_pes,):
        raise AgingError(
            f"temperature map shape {temperature_k.shape} != ({stress.num_pes},)"
        )
    duty = stress.average_duty()
    per_pe = np.array(
        [
            model.time_to_failure_s(float(d), float(t))
            for d, t in zip(duty, temperature_k)
        ]
    )
    if np.all(np.isinf(per_pe)):
        raise AgingError("no PE is ever stressed; MTTF undefined")
    limiting = int(np.argmin(per_pe))
    return MttfReport(
        per_pe_mttf_s=per_pe,
        mttf_s=float(per_pe[limiting]),
        limiting_pe=limiting,
        duty=duty,
        temperature_k=temperature_k,
    )


def mttf_increase(original: MttfReport, remapped: MttfReport) -> float:
    """The paper's headline metric: MTTF(new) / MTTF(original)."""
    if original.mttf_s <= 0:
        raise AgingError("original MTTF must be positive")
    return remapped.mttf_s / original.mttf_s


@dataclass
class VthCurve:
    """A Vth-shift-vs-time series for one floorplan (Fig. 2b).

    ``times_s`` and ``shifts_v`` are parallel arrays; ``mttf_s`` marks
    where the shift crosses the failure threshold.
    """

    label: str
    times_s: np.ndarray
    shifts_v: np.ndarray
    mttf_s: float
    failure_shift_v: float


def vth_curve(
    report: MttfReport,
    label: str,
    model: NbtiModel | None = None,
    num_points: int = 64,
    horizon_s: float | None = None,
) -> VthCurve:
    """Vth shift of the limiting PE over time (the Fig. 2(b) curves).

    ``horizon_s`` defaults to 1.5x the MTTF so the failure crossing is
    visible; pass a common horizon to overlay original/re-mapped curves.
    """
    model = model or NbtiModel()
    pe = report.limiting_pe
    duty = float(report.duty[pe])
    temperature = float(report.temperature_k[pe])
    horizon = horizon_s if horizon_s is not None else 1.5 * report.mttf_s
    times = np.linspace(0.0, horizon, num_points)
    shifts = np.array(
        [model.vth_shift_at(float(t), duty, temperature) for t in times]
    )
    return VthCurve(
        label=label,
        times_s=times,
        shifts_v=shifts,
        mttf_s=report.mttf_s,
        failure_shift_v=model.failure_shift_v,
    )
