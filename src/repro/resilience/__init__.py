"""Resilient execution layer: deadlines, fault injection, degradation.

Four small parts (docs/robustness.md has the full story):

* :mod:`repro.resilience.deadline` — a single wall-clock budget threaded
  through the whole flow via a contextvar, raising a typed
  :class:`~repro.errors.DeadlineExceededError` at iteration boundaries;
* :mod:`repro.resilience.degrade` — Phase 2's graceful-degradation ladder
  (proven → incumbent → greedy stress-levelling → original floorplan);
* :mod:`repro.resilience.faults` — deterministic named-point fault
  injection (``REPRO_FAULTS`` env var or :func:`fault_scope`) used to
  prove every recovery path actually recovers;
* :mod:`repro.resilience.checkpoint` — per-entry JSONL journals making
  experiment sweeps crash-isolated and resumable;
* :mod:`repro.resilience.atomic` — the shared crash-safe
  ``write-tmp → fsync → rename`` helper every durable JSON write uses.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.resilience.checkpoint import CheckpointError, SweepCheckpoint
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    shielded,
)
from repro.resilience.degrade import (
    DEGRADATION_LEVELS,
    greedy_stress_level_remap,
    worse_level,
)
from repro.resilience.faults import (
    ENV_VAR,
    FAULT_POINTS,
    FaultConfigError,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_scope,
    inject_solver_fault,
    should_inject,
)

__all__ = [
    "DEGRADATION_LEVELS",
    "ENV_VAR",
    "FAULT_POINTS",
    "CheckpointError",
    "Deadline",
    "FaultConfigError",
    "FaultPlan",
    "FaultSpec",
    "SweepCheckpoint",
    "active_plan",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "current_deadline",
    "deadline_scope",
    "fault_scope",
    "greedy_stress_level_remap",
    "inject_solver_fault",
    "shielded",
    "should_inject",
    "worse_level",
]
