"""Physical constants and unit conventions used across the library.

Internal unit conventions
-------------------------
* time       — nanoseconds (ns) for circuit delays, seconds (s) for lifetimes
* frequency  — hertz (Hz)
* length     — PE-grid units (the pitch between adjacent PE centres is 1.0)
* temperature— kelvin (K)
* voltage    — volts (V)
* energy     — electron-volts (eV) for activation energies

The paper characterises the Renesas STP PE as: ALU delay 0.87 ns and DMU
delay 3.14 ns, with an HLS target clock of 200 MHz (5 ns period).  Stress
rate of a functional unit is its delay divided by the clock period
(Section III of the paper).
"""

from __future__ import annotations

# --- Fundamental constants -------------------------------------------------

#: Boltzmann constant in eV/K (used in the NBTI Arrhenius factor).
BOLTZMANN_EV_PER_K: float = 8.617333262e-5

#: Absolute zero offset for Celsius conversions.
CELSIUS_OFFSET: float = 273.15

# --- Paper-calibrated device characterisation ------------------------------

#: Delay through the ALU portion of a PE, in ns (paper Section III).
ALU_DELAY_NS: float = 0.87

#: Delay through the DMU portion of a PE, in ns (paper Section III).
DMU_DELAY_NS: float = 3.14

#: HLS target clock frequency (paper Section VI): 200 MHz.
TARGET_CLOCK_HZ: float = 200e6

#: Clock period corresponding to :data:`TARGET_CLOCK_HZ`, in ns.
CLOCK_PERIOD_NS: float = 1e9 / TARGET_CLOCK_HZ

# --- NBTI model constants (paper Eq. 1 and cited literature) ---------------

#: Fabrication-dependent time exponent ``n`` in Eq. (1); 0.25 is the standard
#: reaction-diffusion value used by the NBTI literature the paper cites.
NBTI_TIME_EXPONENT: float = 0.25

#: Activation energy ``Ea`` in eV.
NBTI_ACTIVATION_ENERGY_EV: float = 0.49

#: Technology-dependent prefactor ``A_NBTI``.  Only MTTF *ratios* are
#: reported, which cancel this constant; the absolute value is calibrated so
#: a PE at 100 % duty and 358.15 K (85 C junction) fails — reaches the 10 %
#: Vth shift — after 5 years.  See ``repro.aging.nbti.calibrate_prefactor``,
#: which reproduces this number from those reference conditions.
NBTI_PREFACTOR: float = 7008.303596313481

#: Reference conditions behind :data:`NBTI_PREFACTOR`.
NBTI_REFERENCE_TEMP_K: float = 358.15
NBTI_REFERENCE_MTTF_YEARS: float = 5.0

#: Fresh threshold voltage ``Vth0`` in volts.
VTH0_V: float = 0.4

#: Fractional Vth increase considered a failure (paper cites 10 % [3]).
VTH_FAILURE_FRACTION: float = 0.10

# --- Interconnect model -----------------------------------------------------

#: Delay of one grid unit of buffered wire, in ns.  The paper determines this
#: proportionality constant by simulation; we calibrate it so that a wire
#: spanning one PE pitch costs roughly half an ALU delay, which makes wire
#: delay a first-order but not dominant term, as in the paper's example
#: (unit wire delay 1 vs PE delay 2 in Fig. 4).
UNIT_WIRE_DELAY_NS: float = 0.435

# --- Helpers ----------------------------------------------------------------


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to kelvin."""
    return celsius + CELSIUS_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from kelvin to Celsius."""
    return kelvin - CELSIUS_OFFSET


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to (Julian) years."""
    return seconds / (365.25 * 24 * 3600.0)


def years_to_seconds(years: float) -> float:
    """Convert (Julian) years to seconds."""
    return years * 365.25 * 24 * 3600.0
