"""Extension: multi-configuration rotation sets.

The related work the paper builds on ([3], [4], [8]) mitigates aging by
*periodically swapping between several configurations*, each stressing
different resources.  The paper itself produces one aging-aware floorplan;
this module composes its machinery into that classic scheme: a set of K
floorplans, every one individually CPD-safe (same frozen critical paths,
same path constraints), whose *cumulative* stress across the rotation
period is levelled jointly.

Configuration ``i`` is solved with the stress already committed by
configurations ``0..i-1`` added to each PE's budget baseline, and the set
budget grows as ``(i+1) * ST_single`` — so later configurations are pushed
onto PEs the earlier ones spared.  With K configurations the worst PE's
*time-averaged* duty approaches the fabric mean, which is the best any
levelling scheme can do; the marginal gain therefore shrinks with K
(the ablation benchmark measures this saturation).

The deployment model matches [8]: the runtime swaps configurations slowly
(hours), so thermal steady state applies per configuration and the NBTI
stress accumulates as the time-average across the set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aging.mttf import MttfReport, compute_mttf
from repro.aging.stress import StressMap, compute_stress_map
from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.core.algorithm1 import Algorithm1Config, CPD_EPS
from repro.core.remap import (
    GreedyContext,
    default_candidates,
    frozen_stress_by_pe,
    solve_remap,
)
from repro.core.rotation import freeze_plan, rotate_plan
from repro.core.targets import default_delta_ns, stress_target_lower_bound
from repro.errors import BudgetInfeasibleError, FlowError
from repro.hls.allocate import MappedDesign
from repro.thermal.hotspot import ThermalSimulator
from repro.timing.graph import build_timing_graphs
from repro.timing.kpaths import filter_paths
from repro.timing.sta import all_critical_paths, analyze


@dataclass
class RotationSet:
    """K aging-aware floorplans plus their joint lifetime evaluation."""

    floorplans: list[Floorplan]
    combined_stress: StressMap            # time-averaged over the set
    mttf: MttfReport
    per_config_max_ns: list[float]
    cumulative_max_ns: float
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.floorplans)


def combined_stress_map(
    design: MappedDesign, floorplans: list[Floorplan]
) -> StressMap:
    """Time-averaged stress map across a rotation set.

    Each configuration is resident for an equal share of the period, so
    the average per-context stress is the mean over configurations.
    """
    if not floorplans:
        raise FlowError("rotation set is empty")
    maps = [compute_stress_map(design, fp) for fp in floorplans]
    mean = np.mean([m.per_context_ns for m in maps], axis=0)
    return StressMap(per_context_ns=mean, clock_period_ns=design.clock_period_ns)


def build_rotation_set(
    design: MappedDesign,
    fabric: Fabric,
    original: Floorplan,
    k: int = 2,
    config: Algorithm1Config | None = None,
) -> RotationSet:
    """Generate K jointly-levelled, individually CPD-safe floorplans.

    Every configuration freezes the same critical paths as the single-
    floorplan flow (in Freeze positions — rotation of frozen paths across
    *configurations* is redundant here, because the movable mass already
    migrates), monitors the same paths, and is verified against the
    original CPD before being admitted.
    """
    if k < 1:
        raise FlowError(f"rotation set size must be >= 1, got {k}")
    config = config or Algorithm1Config()
    backend = config.remap.make_backend()
    import random

    rng = random.Random(config.seed)

    graphs = build_timing_graphs(design)
    report = analyze(design, original, graphs)
    cpd = report.cpd_ns

    critical_by_context: dict[int, list[int]] = {}
    for path in all_critical_paths(design, original, graphs, report):
        bucket = critical_by_context.setdefault(path.context, [])
        for op in path.chain:
            if op not in bucket:
                bucket.append(op)
    if config.mode == "rotate" and fabric.is_square():
        stress_of = {op: info.stress_ns for op, info in design.ops.items()}
        frozen = rotate_plan(
            original, critical_by_context, stress_of, rng,
            samples=config.rotation_samples,
        )
    else:
        frozen = freeze_plan(original, critical_by_context)

    monitored = filter_paths(
        design, original,
        retention=config.retention, max_paths=config.max_paths,
        graphs=graphs, report=report,
    ).non_critical

    original_stress = compute_stress_map(design, original)
    step1 = stress_target_lower_bound(
        design, fabric, original, original_stress,
        config=config.remap, delta_ns=config.delta_ns, backend=backend,
    )
    st_single = step1.st_target_ns
    delta = (
        config.delta_ns if config.delta_ns is not None
        else default_delta_ns(original_stress)
    )
    candidates = default_candidates(
        design, original, frozen, fabric, config.remap.resolved_window(fabric)
    )

    floorplans: list[Floorplan] = []
    per_config_max: list[float] = []
    carryover = np.zeros(fabric.num_pes)
    stats: dict = {"configs": [], "st_single_ns": st_single}

    for index in range(k):
        target = st_single * (index + 1)
        accepted: Floorplan | None = None
        attempts = 0
        while accepted is None and attempts < config.max_iterations:
            attempts += 1
            # The budget baseline of configuration `index` is the stress
            # committed by configurations 0..index-1 (carryover) plus this
            # configuration's own frozen ops (added inside the builder).
            try:
                model, variables, _ = _build_with_baseline(
                    design, fabric, frozen, candidates, monitored, cpd,
                    target, carryover, config,
                )
            except BudgetInfeasibleError:
                target += delta
                continue
            baseline = frozen_stress_by_pe(design, frozen)
            for pe in range(fabric.num_pes):
                baseline[pe] = baseline.get(pe, 0.0) + float(carryover[pe])
            greedy_ctx = GreedyContext(
                design=design,
                fabric=fabric,
                frozen_positions=frozen.positions,
                st_target_ns=target,
                frozen_stress_ns=baseline,
            )
            outcome = solve_remap(
                model, variables, config.remap, backend, greedy_ctx
            )
            if not outcome.feasible:
                target += delta
                continue
            candidate = outcome.floorplan(original, frozen)
            if analyze(design, candidate, graphs).cpd_ns <= cpd + CPD_EPS:
                accepted = candidate
            else:
                target += delta
        if accepted is None:
            # Could not extend the set; fall back to repeating the last
            # configuration (or the original when none exists yet).
            accepted = floorplans[-1] if floorplans else original
            stats["configs"].append({"index": index, "fell_back": True})
        else:
            stats["configs"].append(
                {"index": index, "fell_back": False, "attempts": attempts,
                 "set_target_ns": target}
            )
        floorplans.append(accepted)
        carryover += compute_stress_map(design, accepted).accumulated_ns
        per_config_max.append(
            float(compute_stress_map(design, accepted).max_accumulated_ns)
        )

    combined = combined_stress_map(design, floorplans)
    simulator = ThermalSimulator(fabric)
    thermal = simulator.simulate(combined.duty_per_context())
    mttf = compute_mttf(combined, thermal.accumulated_k)
    return RotationSet(
        floorplans=floorplans,
        combined_stress=combined,
        mttf=mttf,
        per_config_max_ns=per_config_max,
        cumulative_max_ns=float(carryover.max()),
        stats=stats,
    )


def _build_with_baseline(
    design, fabric, frozen, candidates, monitored, cpd,
    target, carryover, config,
):
    """build_remap_model with an extra per-PE committed-stress baseline."""
    from repro.core.constraints import (
        add_assignment_variables,
        add_exclusivity_constraints,
        add_path_constraints,
        add_stress_constraints,
        add_wirelength_objective,
        build_coordinates,
        collect_endpoints,
    )
    from repro.milp.model import Model

    model = Model("rotation_set")
    variables = add_assignment_variables(model, candidates, design)
    add_exclusivity_constraints(variables, design, fabric.num_pes)
    baseline = frozen_stress_by_pe(design, frozen)
    for pe in range(fabric.num_pes):
        baseline[pe] = baseline.get(pe, 0.0) + float(carryover[pe])
    add_stress_constraints(
        variables, design, fabric.num_pes, target, baseline, fabric=fabric
    )
    endpoints = collect_endpoints(monitored)
    build_coordinates(variables, design, fabric, frozen.positions, endpoints)
    add_path_constraints(variables, design, fabric, monitored, cpd)
    if config.remap.objective == "wirelength":
        add_wirelength_objective(variables, design, fabric, frozen.positions)
    return model, variables, {}
