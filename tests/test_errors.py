"""Exception-hierarchy tests: catchability contracts at API boundaries."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        leaf_types = [
            errors.ModelError,
            errors.SolverError,
            errors.InfeasibleError,
            errors.BudgetInfeasibleError,
            errors.ArchitectureError,
            errors.MappingError,
            errors.HLSError,
            errors.LexerError,
            errors.ParseError,
            errors.TypeCheckError,
            errors.SchedulingError,
            errors.TimingError,
            errors.ThermalError,
            errors.AgingError,
            errors.FlowError,
            errors.BenchmarkError,
        ]
        for leaf in leaf_types:
            assert issubclass(leaf, errors.ReproError)

    def test_budget_infeasible_is_model_error(self):
        """Algorithm 1 catches BudgetInfeasibleError specifically; generic
        ModelError handlers must also see it."""
        assert issubclass(errors.BudgetInfeasibleError, errors.ModelError)

    def test_mapping_is_architecture_error(self):
        assert issubclass(errors.MappingError, errors.ArchitectureError)

    def test_frontend_errors_are_hls_errors(self):
        for leaf in (errors.LexerError, errors.ParseError,
                     errors.TypeCheckError, errors.SchedulingError):
            assert issubclass(leaf, errors.HLSError)

    def test_serialization_error_importable(self):
        from repro.io import SerializationError

        assert issubclass(SerializationError, errors.ReproError)


class TestPositionalErrors:
    def test_lexer_error_carries_position(self):
        error = errors.LexerError("bad char", 3, 7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_position_optional(self):
        plain = errors.ParseError("something broke")
        assert "line" not in str(plain)
        located = errors.ParseError("something broke", 2, 5)
        assert "line 2" in str(located)


class TestBoundaryCatchability:
    def test_one_handler_catches_frontend_failures(self):
        from repro.hls import compile_source

        broken_sources = [
            "int $x = 1;",              # lexer
            "int x = ;",                # parser
            "out int y = missing;",     # typecheck
            "in int n; int i; int s=0; for (i=0;i<n;i++) s+=1; out int y=s;",
        ]
        for source in broken_sources:
            with pytest.raises(errors.ReproError):
                compile_source(source, "broken")
