"""Kill-and-restart: exactly-once completion across real process deaths.

Satellite 4 of the service PR: a ``repro serve`` subprocess is killed
mid-burst — gracefully (SIGTERM: drain within grace) and hard (SIGKILL:
no goodbye at all) — then restarted on the same state directory.  Every
accepted job must reach ``ok`` exactly once, and every artifact must be
bit-identical to the one-shot pipeline.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.service import (
    ArtifactCache,
    FloorplanRequest,
    JobStore,
    ServiceClient,
    comparable_view,
)
from repro.service.worker import run_request

REQUESTS = [
    {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "time_limit_s": 5.0},
    {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0},
    {"kernel": "checksum", "fabric": "4x4", "time_limit_s": 5.0},
    {"kernel": "fir8", "fabric": "4x4", "time_limit_s": 5.0,
     "tenant": "team-b"},
    {"kernel": "checksum", "fabric": "4x4", "time_limit_s": 5.0,
     "tenant": "team-b"},
]


def start_serve(state_dir: pathlib.Path, drain_grace: float) -> subprocess.Popen:
    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--port", "0",
            "--concurrency", "2", "--drain-grace", str(drain_grace),
        ],
        env=env, cwd=str(root),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_endpoint(
    state_dir: pathlib.Path, pid: int, timeout_s: float = 30.0
) -> ServiceClient:
    """Wait until *this* incarnation (matched by pid) is reachable."""
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            document = json.loads(endpoint.read_text())
            if document.get("pid") == pid:
                client = ServiceClient(
                    document["host"], document["port"], timeout_s=60
                )
                if client.health().get("ok"):
                    return client
        except Exception:
            pass
        time.sleep(0.1)
    raise AssertionError(f"service pid={pid} never became reachable")


def wait_until_journal_settled(
    state_dir: pathlib.Path, job_ids: list[str], timeout_s: float = 120.0
) -> dict[str, str]:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        statuses = JobStore(state_dir / "jobs.jsonl").statuses()
        if all(statuses.get(job_id) == "ok" for job_id in job_ids):
            return statuses
        time.sleep(0.25)
    raise AssertionError(
        f"jobs never all completed; journal: "
        f"{JobStore(state_dir / 'jobs.jsonl').statuses()}"
    )


def orphaned_workers(state_dir: pathlib.Path) -> list[int]:
    """PIDs of reparented (ppid 1) processes serving *this* state dir.

    Workers forked by a SIGKILLed service keep its cmdline; with the
    ``die_with_parent`` pool initializer the kernel reaps them, so any
    survivor is a leak.
    """
    needle = str(state_dir)
    leaked = []
    for entry in pathlib.Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) == os.getpid():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes().replace(b"\0", b" ")
            stat_fields = (entry / "stat").read_text().rsplit(") ", 1)[1]
        except OSError:
            continue
        ppid = int(stat_fields.split()[1])
        if needle.encode() in cmdline and ppid == 1:
            leaked.append(int(entry.name))
    return leaked


def assert_exactly_once_and_bit_identical(state_dir: pathlib.Path) -> None:
    store = JobStore(state_dir / "jobs.jsonl")
    ok_counts: dict[str, int] = {}
    accepted: dict[str, dict] = {}
    for record in store.journal.records():
        if record["status"] == "ok":
            ok_counts[record["entry"]] = ok_counts.get(record["entry"], 0) + 1
        elif record["status"] == "accepted":
            accepted[record["entry"]] = record["request"]
    assert accepted, "burst produced no accepted jobs"
    assert ok_counts == {job_id: 1 for job_id in accepted}, (
        "every accepted job must complete exactly once"
    )
    # Served artifacts == one-shot pipeline, for every unique request.
    cache = ArtifactCache(state_dir / "cache", certify=False)
    unique: dict[str, FloorplanRequest] = {}
    for request_dict in accepted.values():
        request = FloorplanRequest.from_dict(request_dict)
        unique[request.cache_key()] = request
    for key, request in unique.items():
        served = cache.fetch(key)
        assert served is not None, f"artifact {key[:12]} missing from cache"
        assert comparable_view(served) == comparable_view(
            run_request(request)
        ), f"served artifact for {request.kernel} differs from one-shot run"


@pytest.mark.slow
class TestKillRestart:
    def test_sigterm_drains_and_journals_everything(self, tmp_path):
        state = tmp_path / "state"
        proc = start_serve(state, drain_grace=90.0)
        try:
            client = wait_for_endpoint(state, proc.pid)
            job_ids = [
                client.submit(request)["job_id"] for request in REQUESTS
            ]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # A generous grace: the drain finished every accepted job before
        # exit — no restart needed.
        statuses = JobStore(state / "jobs.jsonl").statuses()
        assert all(statuses[job_id] == "ok" for job_id in job_ids)
        assert_exactly_once_and_bit_identical(state)

    def test_sigkill_then_restart_completes_exactly_once(self, tmp_path):
        state = tmp_path / "state"
        proc = start_serve(state, drain_grace=5.0)
        job_ids = []
        try:
            client = wait_for_endpoint(state, proc.pid)
            job_ids = [
                client.submit(request)["job_id"] for request in REQUESTS
            ]
            proc.kill()  # SIGKILL: no drain, no goodbye
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # PR_SET_PDEATHSIG reaps in-flight workers with the dead parent;
        # give the kernel a beat, then require zero orphans.
        if sys.platform.startswith("linux"):
            deadline = time.monotonic() + 10.0
            while orphaned_workers(state) and time.monotonic() < deadline:
                time.sleep(0.2)
            assert orphaned_workers(state) == [], (
                "workers outlived the SIGKILLed service"
            )
        statuses = JobStore(state / "jobs.jsonl").statuses()
        assert any(statuses.get(j) == "accepted" for j in job_ids) or all(
            statuses.get(j) == "ok" for j in job_ids
        )
        # Restart on the same state: the journal is the worklist.
        proc = start_serve(state, drain_grace=90.0)
        try:
            wait_for_endpoint(state, proc.pid)
            wait_until_journal_settled(state, job_ids)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert_exactly_once_and_bit_identical(state)
