"""Offline trace analysis: torn tails, degradation events, convergence data."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import (
    JsonlSink,
    TraceError,
    attached,
    event,
    read_trace,
    span,
    summarize_records,
    summarize_trace,
)


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def _span_record(name, parent=None, duration=0.1, **attrs):
    path = name if parent is None else f"{parent} > {name}"
    return {
        "type": "span", "name": name, "path": path, "parent": parent,
        "t_s": 0.0, "duration_s": duration, "attrs": attrs,
    }


def _event_record(name, parent=None, **attrs):
    return {
        "type": "event", "name": name,
        "path": name if parent is None else f"{parent} > {name}",
        "parent": parent, "t_s": 0.0, "duration_s": 0.0, "attrs": attrs,
    }


class TestTornTail:
    def test_torn_final_line_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, [_span_record("flow")])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "cut-off-mid-wr')
        # Capture on the emitting logger directly: the suite may have run
        # configure_logging (CLI tests), which caplog's root handler
        # would otherwise race with.
        captured: list[logging.LogRecord] = []

        class _Capture(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                captured.append(record)

        logger = logging.getLogger("repro.obs.trace")
        handler = _Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            records = read_trace(path)
        finally:
            logger.removeHandler(handler)
        assert len(records) == 1
        assert records[0]["name"] == "flow"
        assert any("torn" in record.getMessage() for record in captured)

    def test_torn_tail_can_be_made_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "span", "name": "cut')
        with pytest.raises(TraceError):
            read_trace(path, tolerate_torn_tail=False)

    def test_corruption_before_the_tail_still_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "{not json}\n"
            + json.dumps(_span_record("flow")) + "\n"
        )
        with pytest.raises(TraceError):
            read_trace(path)

    def test_summarize_trace_of_crashed_run(self, tmp_path):
        """The end-to-end path: a killed run's trace still summarizes."""
        path = tmp_path / "crashed.jsonl"
        _write_trace(path, [
            _span_record("solver", parent="flow", nodes=3, kind="milp"),
            _span_record("flow"),
        ])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "ev')
        summary = summarize_trace(path)
        assert summary.records == 2
        assert len(summary.solves) == 1


class TestResilienceEventsRoundTrip:
    """PR2's degradation-ladder and fault-injection events survive the
    write -> read_trace -> summarize pipeline and surface as degradations."""

    def test_fault_injected_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink, attached(sink):
            with span("flow"):
                event("fault.injected", target="milp", model="eq3_ctx0")
        summary = summarize_trace(path)
        (degradation,) = summary.degradations
        assert degradation["name"] == "fault.injected"
        assert degradation["attrs"]["target"] == "milp"
        assert degradation["parent"] == "flow"

    def test_degradation_ladder_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink, attached(sink):
            with span("flow"):
                event("algorithm1.degraded", level="incumbent", iteration=3)
                event("deadline.expired", stage="milp_solve", budget_s=5.0)
                event("flow.fallback", reason="no_feasible_remap")
        summary = summarize_trace(path)
        names = [d["name"] for d in summary.degradations]
        assert names == [
            "algorithm1.degraded", "deadline.expired", "flow.fallback",
        ]
        # Every degradation is also a plain event (superset relation).
        assert len(summary.events) == 3

    def test_non_degradation_events_stay_out(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink, attached(sink):
            event("algorithm1.stats", benchmark="B1", iterations=2)
        summary = summarize_trace(path)
        assert summary.degradations == []
        assert len(summary.alg1_runs) == 1


class TestConvergenceCollection:
    def test_solver_spans_collected_in_order(self):
        records = [
            _span_record("flow"),
            _span_record("solver", parent="flow", nodes=1, kind="lp"),
            _span_record("solver", parent="flow", nodes=9, kind="milp"),
            _span_record("other", parent="flow"),
        ]
        summary = summarize_records(records)
        assert [s["attrs"]["nodes"] for s in summary.solves] == [1, 9]

    def test_alg1_stats_event_attrs_extracted(self):
        records = [
            _event_record(
                "algorithm1.stats", parent="flow",
                benchmark="B4", iterations=3, verdicts=["accepted"],
            ),
        ]
        summary = summarize_records(records)
        (run,) = summary.alg1_runs
        assert run["benchmark"] == "B4"
        assert run["verdicts"] == ["accepted"]
        # alg1 stats events are informational, not degradations.
        assert summary.degradations == []


class TestExplainCollection:
    def test_explain_event_attrs_extracted(self):
        records = [
            _event_record(
                "algorithm1.explain", parent="flow",
                benchmark="B4", cause="iteration", iteration=2,
                result="relaxed_st", st_target_ns=3.5,
            ),
            _event_record(
                "algorithm1.explain", parent="flow",
                benchmark="B4", cause="terminal",
                terminal_cause="st_ceiling_exhausted",
            ),
        ]
        summary = summarize_records(records)
        assert [e["cause"] for e in summary.explains] == ["iteration", "terminal"]
        assert summary.explains[0]["result"] == "relaxed_st"
        # explain events are informational, not degradations.
        assert summary.degradations == []

    def test_to_dict_round_trips_through_json(self):
        records = [
            _span_record("flow", duration=1.5),
            _span_record("solver", parent="flow", nodes=3, kind="milp"),
            _event_record(
                "algorithm1.explain", parent="flow",
                cause="iteration", iteration=1, result="frozen_budget_infeasible",
            ),
        ]
        payload = summarize_records(records).to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["kind"] == "trace_summary"
        assert decoded["records"] == 3
        assert decoded["total_s"] == pytest.approx(1.5)
        assert [s["path"] for s in decoded["stages"]] == [
            "flow", "flow > solver",
        ]
        (explain,) = decoded["explains"]
        assert explain["result"] == "frozen_budget_infeasible"
        assert len(decoded["solves"]) == 1


class TestSweepVerdicts:
    """Per-entry verdict column: ok / retried / cert-failed / failed /
    quarantined, worst signal wins."""

    def test_clean_entries_are_ok(self):
        records = [
            _span_record("table1_entry", benchmark="B1"),
            _span_record("table1_entry", benchmark="B2"),
        ]
        summary = summarize_records(records)
        assert summary.sweep_entries == {"B1": "ok", "B2": "ok"}

    def test_worst_signal_wins(self):
        records = [
            _span_record("table1_entry", benchmark="B1"),
            _event_record("sweep.retry", entry="B1", attempt=1),
            _span_record("table1_entry", benchmark="B2"),
            _event_record("sweep.worker_crash", entry="B2", strikes=1),
            _event_record("sweep.quarantined", entry="B2", strikes=2),
            _event_record("certification.failed", benchmark="B3"),
            _span_record("table1_entry", benchmark="B3"),
            _event_record("sweep.entry_timeout", entry="B4", strikes=1),
        ]
        summary = summarize_records(records)
        assert summary.sweep_entries == {
            "B1": "retried",
            "B2": "quarantined",
            "B3": "cert-failed",
            "B4": "retried",
        }
        # verdict_table sorts worst-first.
        assert [row[0] for row in summary.verdict_table()] == [
            "B2", "B3", "B1", "B4",
        ]

    def test_new_supervisor_events_are_degradations(self):
        from repro.obs.trace import DEGRADATION_EVENTS

        assert {
            "sweep.worker_crash",
            "sweep.entry_timeout",
            "sweep.quarantined",
            "certification.failed",
            "certification.cold_rebuild",
        } <= DEGRADATION_EVENTS
