"""Fig. 5 regeneration benchmark (experiment F5 in DESIGN.md).

Fig. 5 groups the Table I results by fabric configuration (C{4,8,16} x
F{4,8,16}) with one bar per usage class, and its headline observation is:
*the lower the fabric utilisation, the higher the MTTF increase*.  This
benchmark measures one low/medium/high triple on a fixed fabric group and
asserts that ordering, then renders the mini bar chart into extra_info.

Run::

    pytest benchmarks/bench_fig5.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_flow, scaled_entry
from repro.benchgen.synth import build_benchmark
from repro.report import bar_chart

#: One C4 group triple (low, medium, high) — B1/B10/B19 in Table I.
GROUP = ("B1", "B10", "B19")


@pytest.fixture(scope="module")
def group_results():
    flow = bench_flow("rotate")
    results = {}
    for name in GROUP:
        entry = scaled_entry(name)
        design, fabric = build_benchmark(entry.spec())
        results[entry.usage_class] = flow.run(design, fabric)
    return results


def test_fig5_utilization_trend(benchmark, group_results):
    def collect():
        return {
            usage: result.mttf_increase
            for usage, result in group_results.items()
        }

    increases = benchmark.pedantic(collect, rounds=1, iterations=1)

    # The Fig. 5 shape: low-utilisation benchmarks gain the most.  We allow
    # low ~= medium (the paper's C4F4 column has 1.94 vs 1.67 vs 1.52).
    assert increases["low"] >= increases["high"]
    assert increases["medium"] >= increases["high"] * 0.9
    for usage, value in increases.items():
        assert value >= 1.0, f"{usage} must never degrade"

    chart = bar_chart(
        ["C4F4"],
        {usage: [increases[usage]] for usage in ("low", "medium", "high")},
    )
    benchmark.extra_info.update(
        {
            "increases": {k: round(v, 3) for k, v in increases.items()},
            "chart": chart,
        }
    )


def test_fig5_cpd_preserved_across_group(benchmark, group_results):
    def check():
        return all(r.cpd_preserved for r in group_results.values())

    assert benchmark.pedantic(check, rounds=1, iterations=1)
