"""Binding/slack attribution of a feasible solution against the CSR.

Pure numpy over the already-compiled matrix form — no solver calls, no
imports from the rest of the library (both MILP backends import this
module, so it must stay a leaf).  Senses are compared through their
string values (``"<="``/``">="``/``"=="``) to avoid importing the enum.

The result is a JSON-safe dict answering the questions Algorithm 1's
operator actually asks after a feasible solve: *which constraint
families are tight, which PEs have no stress headroom left, which
monitored paths are wire-length-critical*.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: A row is "binding" when its slack is at most this.
BINDING_TOL = 1e-6

#: Histogram bucket edges for per-family slack distributions.
_HIST_EDGES = (0.0, 1e-6, 1e-3, 1e-2, 1e-1, 1.0, float("inf"))


def _sense_str(sense: object) -> str:
    return getattr(sense, "value", sense)  # Sense enum or plain string


def _sense_array(senses: Sequence[object]) -> np.ndarray:
    return np.asarray([_sense_str(s) for s in senses])


def row_slacks(
    a_matrix, senses: Sequence[object], rhs: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Signed slack per row: >= 0 satisfied, < 0 violated.

    LE rows: ``rhs - activity``; GE rows: ``activity - rhs``; EQ rows:
    ``-|activity - rhs|`` (an equality is always binding when satisfied).
    """
    activity = a_matrix @ x if a_matrix.shape[0] else np.zeros(0)
    rhs = np.asarray(rhs, float)
    sense_arr = _sense_array(senses)
    return np.where(
        sense_arr == "<=",
        rhs - activity,
        np.where(sense_arr == ">=", activity - rhs, -np.abs(activity - rhs)),
    )


def attribute_solution(
    form,
    x: np.ndarray,
    metas: Sequence,
    top_k: int = 10,
    tol: float = BINDING_TOL,
) -> dict:
    """Attribute a feasible solution ``x`` to its binding constraints.

    ``form`` is a :class:`~repro.milp.model.MatrixForm` (duck-typed:
    ``a_matrix``, ``senses``, ``rhs``); ``metas`` the matching
    :meth:`~repro.milp.model.Model.row_metadata` tuple.  Returns a
    JSON-safe dict with per-family slack histograms, the ``top_k``
    tightest binding inequality rows in domain terms, and the derived
    ``saturated_pes`` / ``tight_paths`` shortlists.
    """
    m = form.a_matrix.shape[0]
    if m == 0 or len(metas) != m:
        return {"rows": m, "binding": 0, "families": {}, "top_binding": []}
    sense_arr = _sense_array(form.senses)
    activity = form.a_matrix @ np.asarray(x, float)
    rhs = np.asarray(form.rhs, float)
    slack = np.where(
        sense_arr == "<=",
        rhs - activity,
        np.where(sense_arr == ">=", activity - rhs, -np.abs(activity - rhs)),
    )
    eq_mask = sense_arr == "=="
    binding = slack <= tol
    labels = _bucket_labels(slack)
    families: dict[str, dict] = {}
    for i, meta in enumerate(metas):
        family = str(meta.tags.get("family", "untagged"))
        bucket = families.setdefault(
            family,
            {"rows": 0, "binding": 0, "min_slack": float("inf"), "histogram": {}},
        )
        bucket["rows"] += 1
        if binding[i]:
            bucket["binding"] += 1
        if slack[i] < bucket["min_slack"]:
            bucket["min_slack"] = float(slack[i])
        edge = labels[i]
        bucket["histogram"][edge] = bucket["histogram"].get(edge, 0) + 1
    for bucket in families.values():
        if bucket["min_slack"] == float("inf"):
            bucket["min_slack"] = 0.0
    # Equalities are binding by construction; rank only inequality rows.
    candidates = np.flatnonzero(binding & ~eq_mask)
    order = candidates[np.argsort(slack[candidates])][:top_k]
    top_binding = [
        {
            "row": int(i),
            "name": metas[i].name,
            "family": str(metas[i].tags.get("family", "untagged")),
            "sense": metas[i].sense,
            "rhs": float(metas[i].rhs),
            "slack": float(slack[i]),
            "tags": dict(metas[i].tags),
        }
        for i in order
    ]
    saturated_pes = sorted(
        {
            int(metas[i].tags["pe"])
            for i in np.flatnonzero(binding)
            if metas[i].tags.get("family") == "stress" and "pe" in metas[i].tags
        }
    )
    tight_paths = [
        {
            "path": int(metas[i].tags.get("path", -1)),
            "context": metas[i].tags.get("context"),
            "slack": float(slack[i]),
        }
        for i in candidates[np.argsort(slack[candidates])]
        if metas[i].tags.get("family") == "path"
    ][:top_k]
    return {
        "rows": int(m),
        "binding": int(binding.sum()),
        "families": families,
        "top_binding": top_binding,
        "saturated_pes": saturated_pes,
        "tight_paths": tight_paths,
    }


#: Bucket display labels, index-aligned with the gaps between edges.
_HIST_LABELS = tuple(
    f"[{lo:g},{hi:g})" if hi != float("inf") else f">={lo:g}"
    for lo, hi in zip(_HIST_EDGES, _HIST_EDGES[1:])
)


def _bucket_label(slack: float) -> str:
    if slack < 0:
        return "<0"
    return _HIST_LABELS[
        int(np.searchsorted(_HIST_EDGES[1:-1], slack, side="right"))
    ]


def _bucket_labels(slack: np.ndarray) -> list[str]:
    """Vectorized :func:`_bucket_label` over a slack vector."""
    indices = np.searchsorted(_HIST_EDGES[1:-1], slack, side="right")
    return [
        "<0" if value < 0 else _HIST_LABELS[index]
        for value, index in zip(slack, indices)
    ]


def attribution_brief(attribution: Mapping | None) -> dict | None:
    """Compact mirror for solver span attrs (keeps trace lines small)."""
    if not attribution:
        return None
    return {
        "binding": attribution.get("binding", 0),
        "families": {
            family: bucket.get("binding", 0)
            for family, bucket in attribution.get("families", {}).items()
        },
        "top": [row["name"] for row in attribution.get("top_binding", [])[:5]],
        "saturated_pes": attribution.get("saturated_pes", [])[:8],
    }
