"""Algorithm 1 (the outer re-mapping loop) tests."""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.arch import check_frozen_ops, check_same_schedule
from repro.core import Algorithm1Config, RemapConfig, run_algorithm1
from repro.errors import FlowError
from repro.timing import analyze


def config(mode="rotate", **kw):
    return Algorithm1Config(
        mode=mode, remap=RemapConfig(time_limit_s=30), **kw
    )


class TestInvariants:
    @pytest.fixture(scope="class")
    def result(self, synth_design, synth_floorplan, fabric4):
        return run_algorithm1(
            synth_design, fabric4, synth_floorplan, config()
        )

    def test_cpd_never_increases(self, result, synth_design, fabric4):
        """The paper's headline guarantee."""
        report = analyze(synth_design, result.floorplan)
        assert report.cpd_ns <= result.original_cpd_ns + 1e-6
        assert result.final_cpd_ns <= result.original_cpd_ns + 1e-6

    def test_schedule_unchanged(self, result, synth_floorplan):
        check_same_schedule(synth_floorplan, result.floorplan)

    def test_frozen_ops_respected(self, result, synth_floorplan):
        if not result.fell_back:
            check_frozen_ops(
                synth_floorplan, result.floorplan, result.frozen.positions
            )

    def test_stress_reduced_or_equal(
        self, result, synth_design, synth_floorplan
    ):
        before = compute_stress_map(synth_design, synth_floorplan)
        after = compute_stress_map(synth_design, result.floorplan)
        assert after.max_accumulated_ns <= before.max_accumulated_ns + 1e-9
        assert after.total_ns == pytest.approx(before.total_ns)

    def test_converged(self, result):
        assert not result.fell_back
        assert result.iterations >= 1

    def test_frozen_set_covers_critical_paths(
        self, result, synth_design, synth_floorplan
    ):
        from repro.timing import all_critical_paths

        critical = all_critical_paths(synth_design, synth_floorplan)
        critical_ops = {op for p in critical for op in p.chain}
        assert critical_ops == result.frozen.frozen_ops


class TestModes:
    def test_freeze_keeps_critical_ops_in_place(
        self, synth_design, synth_floorplan, fabric4
    ):
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config("freeze")
        )
        for op, pe in result.frozen.positions.items():
            assert pe == synth_floorplan.pe_of[op]
        assert set(result.frozen.orientation_of_context.values()) <= {0}

    def test_rotate_at_least_as_good_as_freeze(
        self, synth_design, synth_floorplan, fabric4
    ):
        from repro.aging import compute_stress_map

        freeze = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config("freeze")
        )
        rotate = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config("rotate")
        )
        st_freeze = compute_stress_map(synth_design, freeze.floorplan)
        st_rotate = compute_stress_map(synth_design, rotate.floorplan)
        # Rotation frees pinned hot PEs; levelled max should not be worse
        # beyond one stress quantum.
        assert (
            st_rotate.max_accumulated_ns
            <= st_freeze.max_accumulated_ns + 3.14 + 1e-9
        )

    def test_unknown_mode_rejected(self, synth_design, synth_floorplan, fabric4):
        with pytest.raises(FlowError):
            run_algorithm1(
                synth_design,
                fabric4,
                synth_floorplan,
                Algorithm1Config(mode="wiggle"),
            )


class TestFallback:
    def test_impossible_budget_falls_back(
        self, synth_design, synth_floorplan, fabric4
    ):
        """With zero iterations allowed the flow returns the original."""
        tight = config()
        tight.max_iterations = 0
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, tight
        )
        assert result.fell_back
        assert result.floorplan == synth_floorplan
        assert result.final_cpd_ns == pytest.approx(result.original_cpd_ns)

    def test_iteration_log_recorded(self, synth_design, synth_floorplan, fabric4):
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config()
        )
        log = result.stats["iterations"]
        assert len(log) == result.iterations
        assert log[-1]["result"] == "accepted"


class TestDeterminism:
    def test_same_seed_same_floorplan(self, synth_design, synth_floorplan, fabric4):
        a = run_algorithm1(synth_design, fabric4, synth_floorplan, config(seed=9))
        b = run_algorithm1(synth_design, fabric4, synth_floorplan, config(seed=9))
        assert a.floorplan == b.floorplan


class TestCertification:
    """Trust-but-verify wiring: accepted MILP results are independently
    certified by default; a certification failure triggers exactly one
    cold-rebuild re-solve before the degradation ladder takes over."""

    def _bad_certificate(self):
        from repro.verify.certifier import Certificate, Violation

        cert = Certificate()
        cert.violations.append(
            Violation(
                kind="row_infeasible", subject="row[0]",
                detail="injected certification failure",
            )
        )
        return cert

    def test_accepted_result_is_certified_by_default(
        self, synth_design, synth_floorplan, fabric4
    ):
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config()
        )
        assert result.certified is True
        assert result.alg1.certifications >= 1
        assert result.alg1.cert_failures == 0

    def test_certify_opt_out(self, synth_design, synth_floorplan, fabric4):
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config(certify=False)
        )
        assert result.certified is None
        assert result.alg1.certifications == 0

    def test_cert_failure_triggers_one_cold_rebuild(
        self, monkeypatch, synth_design, synth_floorplan, fabric4
    ):
        import repro.verify.certifier as certifier

        real = certifier.certify_remap
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                return self._bad_certificate()
            return real(*args, **kwargs)

        monkeypatch.setattr(certifier, "certify_remap", flaky)
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config()
        )
        assert result.certified is True
        assert result.alg1.cert_cold_rebuilds == 1
        assert result.alg1.cert_failures >= 1
        assert result.alg1.certifications >= 2

    def test_persistent_cert_failure_degrades(
        self, monkeypatch, synth_design, synth_floorplan, fabric4
    ):
        import repro.verify.certifier as certifier

        monkeypatch.setattr(
            certifier, "certify_remap",
            lambda *args, **kwargs: self._bad_certificate(),
        )
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config()
        )
        # The MILP result is never trusted; the ladder serves a
        # non-certified floorplan instead of a corrupt "optimal" one.
        assert result.certified is not True
        assert result.degradation != "none"
        assert result.alg1.cert_failures >= 1
