#!/usr/bin/env python
"""Talk to a running floorplanning service (``repro serve``).

Start a service in one shell::

    PYTHONPATH=src python -m repro.cli serve --state-dir /tmp/fps

then run this client against its state directory::

    PYTHONPATH=src python examples/service_client.py /tmp/fps

It discovers the endpoint from ``<state-dir>/endpoint.json``, submits a
kernel, polls the job to completion, re-submits the identical request to
demonstrate the artifact cache, and prints the service's health metrics.

Usage::

    python examples/service_client.py STATE_DIR [KERNEL] [MODE]
"""

from __future__ import annotations

import sys

from repro.service import ServiceClient

REQUEST_DEFAULTS = {"fabric": "4x4", "time_limit_s": 15.0, "tenant": "example"}


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    state_dir = argv[0]
    request = dict(
        REQUEST_DEFAULTS,
        kernel=argv[1] if len(argv) > 1 else "fir8",
        mode=argv[2] if len(argv) > 2 else "rotate",
    )

    client = ServiceClient.from_state_dir(state_dir)
    print(f"service at {client.host}:{client.port} "
          f"ready={client.ready()}")

    # Submit asynchronously, then poll — the pattern for long solves.
    view = client.submit_retry(request)
    print(f"accepted: job={view['job_id']} status={view['status']}")
    final = client.wait_job(view["job_id"], timeout_s=600)
    summary = final["summary"]
    print(
        f"done in {final['attempts']} attempt(s): "
        f"MTTF x{summary['mttf_increase']:.3f}, "
        f"CPD {summary['original_cpd_ns']:.3f} -> "
        f"{summary['final_cpd_ns']:.3f} ns"
    )

    # The same request again: served from the persistent artifact cache
    # (re-certified before being returned), no solver run.
    again = client.submit_retry(request, wait=True)
    print(f"resubmitted: cache_hit={again['cache_hit']} "
          f"status={again['status']}")

    metrics = client.metrics()
    cache = metrics["service"]["cache"]
    hits = metrics["metrics"].get("service.cache_hits", {}).get("value", 0)
    print(f"cache: {cache['entries']} entrie(s), {hits:.0f} hit(s), "
          f"{cache['quarantined']} quarantined")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
