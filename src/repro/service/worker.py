"""The service's job-execution body (runs inside forked worker processes).

:func:`execute_request` is deliberately the same pipeline as the one-shot
CLI (``repro flow`` for kernel requests, ``repro remap``'s configuration
for pre-mapped designs): same HLS schedule capacity, same
:class:`~repro.core.flow.FlowConfig`, same certification default.  The
service's contract — a served artifact is bit-identical to the one-shot
CLI's — holds *because* this module shares that code path rather than
approximating it.

The parent decides fault injection at dispatch time (forked workers each
restart hit counters from zero, so a worker-side ``should_inject`` would
make ``service_worker_crash@N`` nondeterministic); the verdict rides in
as the ``inject`` flag, exactly like the sweep supervisor's workers.
"""

from __future__ import annotations

import os
import time

from repro.errors import ReproError
from repro.obs import CollectorSink, attached, clear_sinks, span
from repro.service.request import FloorplanRequest

#: Exit code of a fault-injected worker crash (mirrors the sweep
#: supervisor's recognisable hard-death code).
CRASH_EXIT_CODE = 86


def die_with_parent() -> None:
    """Pool initializer: tie the worker's lifetime to the service's.

    A SIGTERM drain kills pools explicitly, but SIGKILL can't be caught —
    without this, workers forked before a ``kill -9`` would outlive the
    dead service as idle orphans.  On Linux, ``PR_SET_PDEATHSIG`` makes
    the kernel deliver SIGKILL to the worker when the parent dies; the
    ``getppid`` check closes the race where the parent died between the
    fork and the prctl (the worker is already reparented, so the death
    signal would never arrive).
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, 9)  # SIGKILL
        if os.getppid() == 1:
            os._exit(CRASH_EXIT_CODE)
    except Exception:  # pragma: no cover - non-Linux platforms
        pass


def materialize(request: FloorplanRequest):
    """Build the ``(design, fabric)`` pair a request describes.

    Kernel/source requests replicate ``repro flow``: compile the mini-C,
    schedule with ``capacity=fabric.num_pes``, technology-map.  Design
    requests decode the mapped-design document directly.
    """
    from repro.arch.fabric import Fabric
    from repro.benchgen.sources import KERNELS, kernel_source
    from repro.hls.allocate import tech_map
    from repro.hls.lower import compile_source
    from repro.hls.schedule import schedule_dfg
    from repro.io.serialize import design_from_dict

    rows, cols = (int(part) for part in request.fabric.lower().split("x"))
    fabric = Fabric(rows, cols)
    if request.design is not None:
        return design_from_dict(request.design), fabric
    source = request.source
    name = request.kernel
    if source is None:
        if name not in KERNELS:
            raise ReproError(
                f"unknown library kernel {name!r} (known: {sorted(KERNELS)})"
            )
        source = kernel_source(name)
    dfg = compile_source(source, name)
    design = tech_map(schedule_dfg(dfg, capacity=fabric.num_pes))
    return design, fabric


def run_request(request: FloorplanRequest) -> dict:
    """Synchronously run one request to a ``flow_result`` document.

    This *is* the one-shot CLI pipeline; tests compare service-served
    artifacts against this function's output for bit-identity.
    """
    from repro.core.algorithm1 import Algorithm1Config
    from repro.core.flow import AgingAwareFlow, FlowConfig
    from repro.core.remap import RemapConfig
    from repro.io.serialize import flow_summary_to_dict
    from repro.resilience.deadline import Deadline

    design, fabric = materialize(request)
    config = FlowConfig(
        algorithm1=Algorithm1Config(
            mode=request.mode,
            remap=RemapConfig(time_limit_s=request.time_limit_s),
        )
    )
    deadline = (
        Deadline.after(request.deadline_s)
        if request.deadline_s is not None
        else None
    )
    result = AgingAwareFlow(config).run(design, fabric, deadline=deadline)
    return flow_summary_to_dict(result)


#: Wall-clock measurement fields — the only nondeterminism in a
#: ``flow_result``; everything else (MTTF, CPD, floorplans, per-context
#: mappings) is bit-stable across runs.
VOLATILE_FIELDS = frozenset({
    "elapsed_s", "wall_s", "solve_s", "ilp_s", "lp_s", "t_s",
    "duration_s", "total_s",
})


def comparable_view(document):
    """``document`` with wall-clock fields removed, recursively.

    Two runs of the same request agree on this view exactly; it is the
    service's bit-identity contract (tests compare served artifacts
    against one-shot runs through it).
    """
    if isinstance(document, dict):
        return {
            key: comparable_view(value)
            for key, value in document.items()
            if key not in VOLATILE_FIELDS
        }
    if isinstance(document, list):
        return [comparable_view(item) for item in document]
    return document


def execute_request(request_dict: dict, inject: str | None = None) -> dict:
    """Process-pool body of one service job.

    Runs in a forked worker: inherited sinks are dropped (their file
    handles belong to the parent), spans/events are captured by a local
    collector and shipped back as picklable records.  Returns
    ``{"ok", "document" | "error", "trace_records", "wall_s"}`` — a
    :class:`ReproError` comes back as a typed error payload, anything
    else propagates (and surfaces parent-side as a job failure).
    """
    if inject == "crash":
        os._exit(CRASH_EXIT_CODE)
    if inject == "hang":  # pragma: no cover - exercised via kill paths
        time.sleep(3600.0)
    clear_sinks()
    collector = CollectorSink()
    request = FloorplanRequest.from_dict(request_dict)
    start = time.perf_counter()
    with attached(collector):
        with span("service_job", key=request.cache_key()[:12]):
            try:
                document = run_request(request)
            except ReproError as exc:
                return {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_type": type(exc).__name__,
                    "trace_records": collector.records,
                    "wall_s": time.perf_counter() - start,
                }
    return {
        "ok": True,
        "document": document,
        "trace_records": collector.records,
        "wall_s": time.perf_counter() - start,
    }
