"""Fault-injection harness: plan parsing, determinism, injection sites."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.milp.model import Model
from repro.milp.scipy_backend import ScipyBackend
from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.status import SolveStatus
from repro.resilience import (
    ENV_VAR,
    FAULT_POINTS,
    FaultConfigError,
    FaultPlan,
    fault_scope,
    should_inject,
)
from repro.resilience.faults import active_plan


class TestPlanParsing:
    def test_single_point(self):
        plan = FaultPlan.parse("solver_crash")
        assert plan.should_fire("solver_crash")
        assert not plan.should_fire("annealing_nan")

    def test_multiple_points(self):
        plan = FaultPlan.parse("solver_crash, annealing_nan")
        assert plan.should_fire("solver_crash")
        assert plan.should_fire("annealing_nan")

    def test_at_index_fires_only_on_that_hit(self):
        plan = FaultPlan.parse("thermal_divergence@2")
        assert not plan.should_fire("thermal_divergence")  # hit 1
        assert plan.should_fire("thermal_divergence")  # hit 2
        assert not plan.should_fire("thermal_divergence")  # hit 3
        assert plan.hits("thermal_divergence") == 3
        assert plan.fired("thermal_divergence") == 1

    def test_unknown_point_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault point"):
            FaultPlan.parse("warp_core_breach")

    def test_bad_index_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.parse("solver_crash@x")
        with pytest.raises(FaultConfigError):
            FaultPlan.parse("solver_crash@0")

    def test_empty_plan(self):
        plan = FaultPlan.parse("")
        assert not plan.specs

    def test_catalogue_is_stable(self):
        # docs/robustness.md and the CI matrix enumerate these names.
        assert FAULT_POINTS == (
            "solver_crash",
            "solver_timeout",
            "infeasible_model",
            "thermal_divergence",
            "annealing_nan",
            "worker_crash",
            "worker_hang",
            "lane_crash",
            "lane_hang",
            "lane_wrong_answer",
            "service_worker_crash",
            "service_cache_corrupt",
            "service_slow_client",
        )


class TestActivation:
    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_plan() is None
        assert not should_inject("solver_crash")

    def test_env_var_arms_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "solver_crash")
        plan = active_plan()
        assert plan is not None
        assert should_inject("solver_crash")

    def test_env_hit_counters_persist_across_calls(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "solver_crash@2")
        assert not should_inject("solver_crash")  # hit 1
        assert should_inject("solver_crash")  # hit 2 — same cached plan

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "solver_crash")
        with fault_scope("annealing_nan") as plan:
            assert active_plan() is plan
            assert not should_inject("solver_crash")
        assert should_inject("solver_crash")

    def test_scope_restores_on_exit(self):
        with fault_scope("solver_crash"):
            pass
        assert not should_inject("solver_crash")


def _tiny_model() -> Model:
    model = Model("tiny")
    x = model.add_binary("x")
    model.add_constraint(x >= 0)
    model.set_objective(x)
    return model


@pytest.mark.parametrize(
    "backend_factory", [ScipyBackend, BranchBoundBackend],
    ids=["highs", "branch_bound"],
)
class TestSolverInjectionSites:
    def test_solver_crash_raises(self, backend_factory):
        with fault_scope("solver_crash"):
            with pytest.raises(SolverError, match="fault injection"):
                _tiny_model().solve(backend_factory())

    def test_solver_timeout_returns_error_solution(self, backend_factory):
        with fault_scope("solver_timeout"):
            solution = _tiny_model().solve(backend_factory())
        assert solution.status is SolveStatus.ERROR
        assert not solution.status.has_solution

    def test_infeasible_model_returns_infeasible(self, backend_factory):
        with fault_scope("infeasible_model"):
            solution = _tiny_model().solve(backend_factory())
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unarmed_solve_is_clean(self, backend_factory):
        solution = _tiny_model().solve(backend_factory())
        assert solution.status is SolveStatus.OPTIMAL


class TestThermalInjection:
    def test_thermal_divergence_raises_thermal_error(self, fabric4):
        import numpy as np

        from repro.errors import ThermalError
        from repro.thermal.hotspot import ThermalSimulator

        simulator = ThermalSimulator(fabric4)
        duty = np.full((2, fabric4.num_pes), 0.5)
        with fault_scope("thermal_divergence"):
            with pytest.raises(ThermalError, match="diverged"):
                simulator.simulate(duty)
        # Unarmed, the same input is fine.
        report = simulator.simulate(duty)
        assert np.isfinite(report.accumulated_k).all()


class TestAnnealingInjection:
    def test_nan_cost_aborts_gracefully(self, synth_design, fabric4):
        from repro.place.annealing import AnnealingConfig, anneal_placement
        from repro.place.baseline import place_baseline

        floorplan = place_baseline(synth_design, fabric4)
        with fault_scope("annealing_nan"):
            result = anneal_placement(
                synth_design, floorplan, AnnealingConfig(moves_per_op=4)
            )
        result.validate()  # abort left a structurally valid floorplan
