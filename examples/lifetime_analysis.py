#!/usr/bin/env python
"""Lifetime analysis: Vth-degradation curves and MTTF sensitivity.

Reproduces the Fig. 2(b) view for one benchmark — the threshold-voltage
shift of the limiting PE over time, before and after aging-aware
re-mapping — then sweeps the NBTI model parameters to show how MTTF
(and, crucially, the *ratio*, which is what the paper reports) responds.

Usage::

    python examples/lifetime_analysis.py [benchmark]   # default B13
"""

from __future__ import annotations

import sys

from repro import NbtiModel, compute_mttf, mttf_increase, vth_curve
from repro.benchgen import entry
from repro.benchgen.synth import build_benchmark
from repro.core import AgingAwareFlow, Algorithm1Config, FlowConfig, RemapConfig
from repro.report import ascii_curve, format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "B13"
    bench = entry(name).scaled(8)
    design, fabric = build_benchmark(bench.spec())
    print(f"benchmark {bench.name}: {design.num_ops} ops, "
          f"{design.num_contexts} contexts, fabric {fabric.rows}x{fabric.cols}")

    flow = AgingAwareFlow(
        FlowConfig(algorithm1=Algorithm1Config(remap=RemapConfig(time_limit_s=60)))
    )
    result = flow.run(design, fabric)
    print(f"MTTF increase: {result.mttf_increase:.2f}x "
          f"(CPD preserved: {result.cpd_preserved})")

    # -- Fig. 2(b): Vth shift vs time -------------------------------------------
    horizon = 1.3 * result.remapped.mttf.mttf_s
    original = vth_curve(result.original.mttf, "original", horizon_s=horizon)
    remapped = vth_curve(result.remapped.mttf, "re-mapped", horizon_s=horizon)
    print()
    print("Vth shift vs time (Fig. 2b) — '=' is the 10% failure threshold:")
    print(ascii_curve([original, remapped]))

    # -- Sensitivity: how model constants move the *ratio* ------------------------
    print()
    rows = []
    for label, model in (
        ("baseline (n=0.25, Ea=0.49)", NbtiModel()),
        ("n = 0.20", NbtiModel(time_exponent=0.20)),
        ("n = 0.30", NbtiModel(time_exponent=0.30)),
        ("Ea = 0.40 eV", NbtiModel(activation_energy_ev=0.40)),
        ("Ea = 0.60 eV", NbtiModel(activation_energy_ev=0.60)),
        ("failure at 15% shift", NbtiModel(failure_fraction=0.15)),
    ):
        before = compute_mttf(
            result.original.stress, result.original.thermal.accumulated_k, model
        )
        after = compute_mttf(
            result.remapped.stress, result.remapped.thermal.accumulated_k, model
        )
        rows.append([
            label,
            before.mttf_years,
            after.mttf_years,
            mttf_increase(before, after),
        ])
    print(format_table(
        ["NBTI variant", "MTTF before (y)", "MTTF after (y)", "increase (x)"],
        rows,
    ))
    print()
    print("Note how the stress-time levelling survives every variant: the")
    print("increase is driven by the duty ratio and the temperature relief,")
    print("not by the absolute calibration of Eq. (1).")


if __name__ == "__main__":
    main()
