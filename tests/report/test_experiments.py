"""Experiment-driver tests (configuration logic only — the heavy runs
live in benchmarks/ and the CLI)."""

from __future__ import annotations

import pytest

from repro.report.experiments import (
    ExperimentConfig,
    QUICK_MAX_FABRIC,
    flow_config,
)


class TestExperimentConfig:
    def test_quick_suite_caps_fabrics(self):
        config = ExperimentConfig(scale="quick")
        suite = config.suite()
        assert len(suite) == 27
        assert all(e.fabric_dim <= QUICK_MAX_FABRIC for e in suite)

    def test_paper_suite_is_verbatim(self):
        config = ExperimentConfig(scale="paper")
        suite = config.suite()
        assert {e.fabric_dim for e in suite} == {4, 8, 16}
        assert suite[-1].pe_count == 3089

    def test_only_filter(self):
        config = ExperimentConfig(scale="paper", only=["B5", "B9"])
        assert [e.name for e in config.suite()] == ["B5", "B9"]

    def test_only_filter_applies_before_scaling(self):
        config = ExperimentConfig(scale="quick", only=["B27"])
        (entry,) = config.suite()
        assert entry.name == "B27s"
        assert entry.fabric_dim == QUICK_MAX_FABRIC

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="galactic").suite()


class TestFlowConfig:
    def test_mode_threading(self):
        config = flow_config("freeze", 42.0)
        assert config.algorithm1.mode == "freeze"
        assert config.algorithm1.remap.time_limit_s == 42.0

    def test_default_mode_rotate(self):
        assert flow_config("rotate", 10.0).algorithm1.mode == "rotate"


class TestCliParsing:
    def test_main_rejects_unknown_experiment(self, capsys):
        from repro.report.experiments import main

        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_main_fig2a_runs(self, capsys):
        """fig2a is the cheapest experiment; run it through the CLI."""
        pytest.importorskip("scipy")
        from repro.report.experiments import main

        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Original accumulated stress" in out
        assert "Re-mapped accumulated stress" in out
