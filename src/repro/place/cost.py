"""Placement cost functions: bounding box, wirelength, timing proxy.

The paper describes Musketeer's objective as "minimiz[ing] the bounding box
area of the used PEs while meeting the specified timing constraints"
(Phase 1).  These cost terms reproduce that objective; the important
emergent behaviour is that *every context independently packs into the same
compact corner region*, concentrating stress on the same PEs — the
pathology the aging-aware re-mapper corrects.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.arch.fabric import Fabric


def bounding_box(positions: Iterable[tuple[float, float]]) -> tuple[float, float, float, float]:
    """(min_row, min_col, max_row, max_col) of a set of positions."""
    rows: list[float] = []
    cols: list[float] = []
    for row, col in positions:
        rows.append(row)
        cols.append(col)
    if not rows:
        return (0.0, 0.0, 0.0, 0.0)
    return (min(rows), min(cols), max(rows), max(cols))


def bounding_box_area(positions: Iterable[tuple[float, float]]) -> float:
    """Area (in PE cells) of the bounding box enclosing ``positions``.

    Empty input has zero area; a single PE occupies one cell.
    """
    positions = list(positions)
    if not positions:
        return 0.0
    min_r, min_c, max_r, max_c = bounding_box(positions)
    return (max_r - min_r + 1.0) * (max_c - min_c + 1.0)


def wirelength(
    edges: Sequence[tuple[tuple[float, float], tuple[float, float]]],
) -> float:
    """Total Manhattan wirelength over point-to-point edges."""
    return sum(
        abs(a[0] - b[0]) + abs(a[1] - b[1])
        for a, b in edges
    )


def edge_positions(
    edges: Sequence[tuple[int, int]],
    position_of: Mapping[int, tuple[float, float]],
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Resolve (src, dst) id pairs to coordinate pairs, skipping unplaced."""
    resolved = []
    for src, dst in edges:
        if src in position_of and dst in position_of:
            resolved.append((position_of[src], position_of[dst]))
    return resolved


class PlacementCost:
    """Weighted aging-unaware placement cost.

    ``cost = wl_weight * wirelength + bbox_weight * bounding_box_area``

    Wirelength doubles as the timing proxy during annealing: with linear
    buffered-wire delay, shrinking the longest wires and shrinking total
    wirelength are strongly correlated.  A full STA pass validates CPD
    after placement (see :mod:`repro.timing`).
    """

    def __init__(self, wl_weight: float = 1.0, bbox_weight: float = 2.0) -> None:
        self.wl_weight = wl_weight
        self.bbox_weight = bbox_weight

    def evaluate(
        self,
        fabric: Fabric,
        op_positions: Mapping[int, tuple[float, float]],
        edges: Sequence[tuple[tuple[float, float], tuple[float, float]]],
    ) -> float:
        """Total cost of one context's placement."""
        wl = wirelength(edges)
        area = bounding_box_area(op_positions.values()) if op_positions else 0.0
        return self.wl_weight * wl + self.bbox_weight * area
