"""Lowering caches: lowered once per structure, counted in the metrics."""

from __future__ import annotations

from repro.aging.stress import compute_stress_map
from repro.benchgen import SyntheticSpec, build_benchmark
from repro.kernels import kernels_scope
from repro.obs import registry
from repro.place import place_baseline
from repro.timing import analyze, build_timing_graphs

SPEC = SyntheticSpec(
    name="cache", num_contexts=3, fabric_dim=5, total_ops=45, seed=9
)


def _fresh():
    design, fabric = build_benchmark(SPEC)
    floorplan = place_baseline(design, fabric)
    return design, fabric, floorplan


def _metric(name):
    snapshot = registry().snapshot()
    return snapshot.get(name, {}).get("value", 0)


class TestStaLoweringCache:
    def test_design_lowered_at_graph_build_then_hit(self):
        design, _, floorplan = _fresh()
        registry().reset()
        with kernels_scope("vector"):
            # build_timing_graphs derives the fused lowering eagerly (it
            # is pure structure), so analyze() calls only ever hit.
            graphs = build_timing_graphs(design)
            assert _metric("kernels.sta.lowerings") == len(graphs)
            assert _metric("kernels.sta.cache_hits") == 0
            first = analyze(design, floorplan, graphs)
            assert _metric("kernels.sta.cache_hits") == 1
            second = analyze(design, floorplan, graphs)
        assert _metric("kernels.sta.lowerings") == len(graphs)  # no re-lower
        assert _metric("kernels.sta.cache_hits") == 2
        assert first.cpd_ns == second.cpd_ns

    def test_scalar_mode_builds_graphs_without_lowering(self):
        design, _, floorplan = _fresh()
        registry().reset()
        with kernels_scope("scalar"):
            graphs = build_timing_graphs(design)
        assert _metric("kernels.sta.lowerings") == 0
        with kernels_scope("vector"):
            analyze(design, floorplan, graphs)
        # The first vector analyze lowers on demand instead.
        assert _metric("kernels.sta.lowerings") == len(graphs)
        assert _metric("kernels.sta.cache_hits") == 0

    def test_rebuilt_graphs_relower(self):
        design, _, floorplan = _fresh()
        with kernels_scope("vector"):
            analyze(design, floorplan, build_timing_graphs(design))
            registry().reset()
            analyze(design, floorplan, build_timing_graphs(design))
        # Fresh graph objects carry no cached lowering: full re-lower at
        # build, then the analyze call hits the new cache entry.
        assert _metric("kernels.sta.lowerings") == design.num_contexts
        assert _metric("kernels.sta.cache_hits") == 1

    def test_results_stable_across_cache_hits(self):
        design, _, floorplan = _fresh()
        graphs = build_timing_graphs(design)
        with kernels_scope("vector"):
            first = analyze(design, floorplan, graphs)
            second = analyze(design, floorplan, graphs)
        for a, b in zip(first.per_context, second.per_context):
            assert a.arrival_ns == b.arrival_ns
            assert a.critical_ops == b.critical_ops


class TestStressLoweringCache:
    def test_lowered_once_then_hit(self):
        design, _, floorplan = _fresh()
        registry().reset()
        with kernels_scope("vector"):
            first = compute_stress_map(design, floorplan)
            assert _metric("kernels.stress.lowerings") == 1
            second = compute_stress_map(design, floorplan)
        assert _metric("kernels.stress.lowerings") == 1
        assert _metric("kernels.stress.cache_hits") == 1
        assert (first.per_context_ns == second.per_context_ns).all()


class TestKernelTimers:
    def test_kernel_seconds_histograms_observed(self):
        design, fabric, floorplan = _fresh()
        registry().reset()
        with kernels_scope("vector"):
            analyze(design, floorplan)
            compute_stress_map(design, floorplan)
        snapshot = registry().snapshot()
        assert snapshot["kernels.sta.seconds"]["count"] >= 1
        assert snapshot["kernels.stress.seconds"]["count"] >= 1

    def test_scalar_mode_records_no_kernel_metrics(self):
        design, _, floorplan = _fresh()
        registry().reset()
        with kernels_scope("scalar"):
            analyze(design, floorplan)
            compute_stress_map(design, floorplan)
        snapshot = registry().snapshot()
        assert not any(name.startswith("kernels.") for name in snapshot)
