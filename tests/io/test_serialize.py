"""Serialization round-trip and validation tests."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import Fabric, Floorplan
from repro.benchgen import SyntheticSpec, generate_design
from repro.io import (
    SerializationError,
    design_from_dict,
    design_to_dict,
    floorplan_from_dict,
    floorplan_to_dict,
    load_design,
    load_floorplan,
    save_design,
    save_floorplan,
)


class TestDesignRoundTrip:
    def test_dict_round_trip(self, synth_design):
        data = design_to_dict(synth_design)
        clone = design_from_dict(data)
        assert clone.name == synth_design.name
        assert clone.num_contexts == synth_design.num_contexts
        assert set(clone.ops) == set(synth_design.ops)
        assert clone.compute_edges == synth_design.compute_edges
        assert clone.input_edges == synth_design.input_edges
        for op_id, op in synth_design.ops.items():
            restored = clone.ops[op_id]
            assert restored.kind == op.kind
            assert restored.delay_ns == pytest.approx(op.delay_ns)
            assert restored.unit == op.unit

    def test_file_round_trip(self, synth_design, tmp_path):
        path = tmp_path / "design.json"
        save_design(synth_design, path)
        clone = load_design(path)
        assert clone.num_ops == synth_design.num_ops

    def test_json_is_stable(self, synth_design, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        save_design(synth_design, path_a)
        save_design(synth_design, path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_wrong_kind_rejected(self, synth_design):
        data = design_to_dict(synth_design)
        data["kind"] = "floorplan"
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_malformed_ops_rejected(self, synth_design):
        data = design_to_dict(synth_design)
        data["ops"][0]["kind"] = "quantum_flux"
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_invalid_edges_fail_validation(self, synth_design):
        from repro.errors import HLSError

        data = design_to_dict(synth_design)
        data["compute_edges"].append([99999, 0])
        with pytest.raises((SerializationError, HLSError)):
            design_from_dict(data)


class TestFloorplanRoundTrip:
    def test_dict_round_trip(self, synth_floorplan):
        clone = floorplan_from_dict(floorplan_to_dict(synth_floorplan))
        assert clone == synth_floorplan
        assert clone.fabric.unit_wire_delay_ns == pytest.approx(
            synth_floorplan.fabric.unit_wire_delay_ns
        )

    def test_file_round_trip(self, synth_floorplan, tmp_path):
        path = tmp_path / "fp.json"
        save_floorplan(synth_floorplan, path)
        assert load_floorplan(path) == synth_floorplan

    def test_slot_conflicts_rejected_on_load(self, synth_floorplan):
        from repro.errors import MappingError

        data = floorplan_to_dict(synth_floorplan)
        # Duplicate the first binding onto an occupied slot.
        first = dict(data["bindings"][0])
        first["op"] = 99999
        data["bindings"].append(first)
        with pytest.raises((SerializationError, MappingError)):
            floorplan_from_dict(data)

    def test_not_a_document(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(SerializationError):
            load_floorplan(path)

    def test_future_schema_rejected(self, synth_floorplan, tmp_path):
        data = floorplan_to_dict(synth_floorplan)
        data["schema"] = 999
        path = tmp_path / "fp.json"
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError):
            load_floorplan(path)


class TestPropertyRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        contexts=st.integers(2, 6),
        dim=st.sampled_from([3, 4]),
    )
    def test_any_generated_design_round_trips(self, seed, contexts, dim):
        total = max(contexts, contexts * dim * dim // 2)
        design = generate_design(
            SyntheticSpec(
                name=f"rt{seed}", num_contexts=contexts, fabric_dim=dim,
                total_ops=total, seed=seed,
            )
        )
        clone = design_from_dict(design_to_dict(design))
        assert design_to_dict(clone) == design_to_dict(design)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_any_placed_floorplan_round_trips(self, seed):
        import random

        rng = random.Random(seed)
        fabric = Fabric(3, 3)
        floorplan = Floorplan(fabric, 3)
        op = 0
        for context in range(3):
            for pe in rng.sample(range(9), rng.randint(1, 9)):
                floorplan.bind(op, context, pe)
                op += 1
        clone = floorplan_from_dict(floorplan_to_dict(floorplan))
        assert clone == floorplan
