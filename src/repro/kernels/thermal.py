"""Vectorized thermal-grid assembly and batched power maps.

The compact thermal model's Laplacian was assembled with a Python loop
over every PE and its 4-neighbours; this module builds the identical
COO triplets from the fabric's coordinate arrays in a few numpy calls.
The matrix is *identical* (same entries, deduplicated and canonicalised
by the sparse constructor), so the pre-factorised solve downstream is
unaffected by which assembly ran.

Power maps: the per-context power formula is already vectorized over
PEs; :func:`power_map_many` applies it to all contexts at once.  The
expression is elementwise, so per-row results are bit-identical to the
per-context calls.
"""

from __future__ import annotations

import numpy as np

from repro.arch.fabric import Fabric
from repro.kernels import kernel_timer, note_lowering

__all__ = ["laplacian_coo", "power_map_many", "kernel_timer", "note_lowering"]


def laplacian_coo(
    fabric: Fabric, g_lat: float, g_vert: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets ``(rows, cols, data)`` of the grid conduction matrix.

    Diagonal: ``g_vert + g_lat * degree(i)``; off-diagonal ``-g_lat``
    for each 4-neighbour pair, both directions.  Values match the scalar
    assembly exactly (integer neighbour counts, same float products).
    """
    n = fabric.num_pes
    r = fabric.row_of
    c = fabric.col_of
    degree = (
        (r > 0).astype(np.int64)
        + (r < fabric.rows - 1).astype(np.int64)
        + (c > 0).astype(np.int64)
        + (c < fabric.cols - 1).astype(np.int64)
    )
    diag_idx = np.arange(n, dtype=np.int64)
    rows = [diag_idx]
    cols = [diag_idx]
    data = [g_vert + g_lat * degree.astype(float)]
    # The four neighbour directions, as index offsets on the row-major grid.
    for mask, offset in (
        (r > 0, -fabric.cols),  # north
        (r < fabric.rows - 1, fabric.cols),  # south
        (c > 0, -1),  # west
        (c < fabric.cols - 1, 1),  # east
    ):
        i = diag_idx[mask]
        rows.append(i)
        cols.append(i + offset)
        data.append(np.full(i.shape, -g_lat, dtype=float))
    return (
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(data),
    )


def power_map_many(
    model, fabric: Fabric, duties: np.ndarray
) -> np.ndarray:
    """Per-PE power for every context at once (rows = contexts).

    Same validation and elementwise formula as
    :meth:`repro.thermal.power.PowerModel.power_map` applied row-wise.
    """
    from repro.errors import ThermalError

    duties = np.asarray(duties, dtype=float)
    if duties.ndim != 2 or duties.shape[1] != fabric.num_pes:
        raise ThermalError(
            f"duty array shape {duties.shape} incompatible with "
            f"fabric of {fabric.num_pes} PEs"
        )
    if np.any(duties < -1e-9) or np.any(duties > 1.0 + 1e-9):
        raise ThermalError("duty cycles must lie in [0, 1]")
    return model.leakage_w + model.active_w * np.clip(duties, 0.0, 1.0)
