"""Deterministic forced-infeasible probe for exercising IIS extraction.

Total accumulated stress is conserved by re-mapping: every op carries its
stress wherever it goes, so the per-PE loads always sum to the same
total — even under fractional (LP) assignment.  A stress-only model
whose ``ST_target`` sits *below the mean load* ``total / num_pes`` is
therefore infeasible by pigeonhole, at the LP level, regardless of the
assignment chosen.  That makes it the ideal IIS test article: genuinely
infeasible, cheap to probe, and the conflict reads directly in domain
terms (the full set of per-PE stress budgets plus the assignment rows
of the ops that cannot be absorbed).

Used by ``repro explain --probe-infeasible`` and the CI report job.
"""

from __future__ import annotations


def build_infeasible_stress_model(design, fabric, factor: float = 0.9):
    """A stress-only re-mapping model that is provably infeasible.

    All ops are movable with every PE as a candidate; ``ST_target`` is
    set to ``factor`` times the mean per-PE load (``factor < 1``), which
    no assignment — integral or fractional — can satisfy.  Returns
    ``(model, st_target_ns)``.
    """
    from repro.core.constraints import (
        add_assignment_variables,
        add_exclusivity_constraints,
        add_stress_constraints,
    )
    from repro.errors import ModelError
    from repro.milp.model import Model

    if not 0.0 < factor < 1.0:
        raise ModelError(f"probe factor must be in (0, 1), got {factor}")
    total_stress = design.total_stress_ns()
    if total_stress <= 0.0:
        raise ModelError(
            f"design {design.name!r} carries no stress; probe would be feasible"
        )
    st_target_ns = factor * total_stress / fabric.num_pes
    model = Model(f"{design.name}.infeasible_probe")
    candidates = {
        op_id: list(range(fabric.num_pes)) for op_id in sorted(design.ops)
    }
    variables = add_assignment_variables(model, candidates, design)
    add_exclusivity_constraints(variables, design, fabric.num_pes)
    add_stress_constraints(
        variables, design, fabric.num_pes, st_target_ns, {}, fabric=fabric
    )
    return model, st_target_ns
