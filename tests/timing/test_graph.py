"""Per-context timing graph construction tests."""

from __future__ import annotations

import pytest

from repro.arch import OpKind, UnitKind
from repro.errors import TimingError
from repro.hls import MappedDesign, OpInfo
from repro.timing import Endpoint, EndpointKind, build_timing_graphs


def two_context_design():
    """ctx0: op0 -> op1 (chain); ctx1: op2 reads op1's register."""
    design = MappedDesign(name="t", num_contexts=2)
    for op_id, context in ((0, 0), (1, 0), (2, 1)):
        design.ops[op_id] = OpInfo(
            op_id, OpKind.ADD, 32, context, UnitKind.ALU, 0.87, 0.87
        )
    design.compute_edges = [(0, 1), (1, 2)]
    design.input_edges = [(0, 0)]
    design.output_edges = [(2, 0)]
    return design


class TestConstruction:
    def test_intra_vs_cross_context_edges(self):
        graphs = build_timing_graphs(two_context_design())
        assert graphs[0].intra_edges == [(0, 1)]
        assert graphs[1].intra_edges == []
        # Cross-context edge becomes a register entry at the consumer.
        assert graphs[1].entries[2] == [Endpoint.op(1)]

    def test_pad_edges(self):
        graphs = build_timing_graphs(two_context_design())
        assert graphs[0].entries[0] == [Endpoint.in_pad(0)]
        assert graphs[1].exits[2] == [Endpoint.out_pad(0)]

    def test_delays_recorded(self):
        graphs = build_timing_graphs(two_context_design())
        assert graphs[0].delay_of[0] == pytest.approx(0.87)

    def test_topological_order(self):
        graphs = build_timing_graphs(two_context_design())
        assert graphs[0].topological_ops() == [0, 1]

    def test_preds_succs(self):
        graphs = build_timing_graphs(two_context_design())
        assert graphs[0].intra_preds()[1] == [0]
        assert graphs[0].intra_succs()[0] == [1]


class TestEndpoint:
    def test_constructors(self):
        assert Endpoint.op(3).kind is EndpointKind.OP
        assert Endpoint.in_pad(1).kind is EndpointKind.IN_PAD
        assert Endpoint.out_pad(2).kind is EndpointKind.OUT_PAD

    def test_positions(self, fabric4):
        from repro.arch import Floorplan

        fp = Floorplan(fabric4, 1)
        fp.bind(5, 0, 6)  # PE 6 = (1, 2)
        assert Endpoint.op(5).position(fp) == (1.0, 2.0)
        assert Endpoint.in_pad(0).position(fp) == (0.0, -1.0)
        assert Endpoint.out_pad(1).position(fp) == (1.0, 4.0)

    def test_hashable_identity(self):
        assert Endpoint.op(3) == Endpoint.op(3)
        assert Endpoint.op(3) != Endpoint.in_pad(3)
        assert len({Endpoint.op(3), Endpoint.op(3)}) == 1


class TestCycleDetection:
    def test_cyclic_context_rejected(self):
        graphs = build_timing_graphs(two_context_design())
        graphs[0].intra_edges.append((1, 0))
        with pytest.raises(TimingError):
            graphs[0].topological_ops()
