"""Baseline (Musketeer-substitute) placer facade tests."""

from __future__ import annotations

from repro.place import BaselinePlacer, BaselinePlacerConfig, place_baseline
from repro.place.annealing import AnnealingConfig


class TestBaselinePlacer:
    def test_produces_valid_floorplan(self, synth_design, fabric4):
        floorplan = place_baseline(synth_design, fabric4)
        floorplan.validate()
        assert floorplan.num_ops == synth_design.num_ops

    def test_anneal_disabled_matches_greedy(self, synth_design, fabric4):
        from repro.place import greedy_place

        config = BaselinePlacerConfig(anneal=False)
        facade = BaselinePlacer(config).place(synth_design, fabric4)
        direct = greedy_place(synth_design, fabric4, config.corner_bias)
        assert facade == direct

    def test_config_threading(self, synth_design, fabric4):
        config = BaselinePlacerConfig(
            corner_bias=0.9,
            anneal=True,
            annealing=AnnealingConfig(moves_per_op=5, seed=3),
        )
        floorplan = BaselinePlacer(config).place(synth_design, fabric4)
        floorplan.validate()

    def test_reproducible(self, synth_design, fabric4):
        a = place_baseline(synth_design, fabric4)
        b = place_baseline(synth_design, fabric4)
        assert a == b
