"""Incremental-compilation microbenchmark (docs/performance.md).

Algorithm 1's relax loop re-solves the same Eq. (3) model at a sequence
of ``ST_target`` values.  This bench isolates the model-side cost of one
such iteration, on the largest smoke-suite entry:

* **cold** — assemble the expression model from scratch and lower it to
  matrix form, which is what every iteration paid before incremental
  compilation;
* **cached restamp** — re-stamp the ``st_target`` RHS parameter on the
  already-compiled model and re-emit the matrix form, which is what an
  iteration pays now (O(rows) re-stamp, zero expression traversals).

Run::

    pytest benchmarks/bench_lowering.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import RemapConfig
from repro.core.remap import build_remap_model, default_candidates
from repro.core.rotation import freeze_plan
from repro.place import place_baseline
from repro.timing import all_critical_paths, analyze
from repro.timing.graph import build_timing_graphs
from repro.timing.kpaths import filter_paths


@pytest.fixture(scope="module")
def remap_inputs(built_benchmarks):  # noqa: F811
    """Eq. (3) ingredients for the largest smoke entry (most PEs x ops)."""
    entry, design, fabric = max(
        built_benchmarks.values(),
        key=lambda item: (item[2].num_pes, item[0].pe_count),
    )
    original = place_baseline(design, fabric)
    graphs = build_timing_graphs(design)
    report = analyze(design, original, graphs)
    critical = all_critical_paths(design, original, graphs, report)
    by_context: dict[int, list[int]] = {}
    for path in critical:
        bucket = by_context.setdefault(path.context, [])
        for op in path.chain:
            if op not in bucket:
                bucket.append(op)
    frozen = freeze_plan(original, by_context)
    filtered = filter_paths(design, original, graphs=graphs, report=report)
    config = RemapConfig()
    candidates = default_candidates(
        design, original, frozen, fabric, config.resolved_window(fabric)
    )
    st_target = compute_stress_map(design, original).max_accumulated_ns
    return {
        "entry": entry,
        "design": design,
        "fabric": fabric,
        "frozen": frozen,
        "candidates": candidates,
        "monitored": filtered.non_critical,
        "cpd_ns": report.cpd_ns,
        "st_target": st_target,
    }


def _build(inp, st_target):
    model, _, _ = build_remap_model(
        inp["design"], inp["fabric"], inp["frozen"], inp["candidates"],
        inp["monitored"], inp["cpd_ns"], st_target,
    )
    return model


def test_lowering_cold_build(benchmark, remap_inputs):
    """Full assembly + lowering per iteration (pre-incremental cost)."""
    inp = remap_inputs

    def cold():
        return _build(inp, inp["st_target"]).to_matrix_form()

    form = benchmark.pedantic(cold, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        {
            "benchmark": inp["entry"].name,
            "rows": form.a_matrix.shape[0],
            "cols": form.a_matrix.shape[1],
            "nnz": int(form.a_matrix.nnz),
        }
    )


def test_lowering_cached_restamp(benchmark, remap_inputs):
    """Parameter re-stamp + matrix re-emit per iteration (current cost)."""
    inp = remap_inputs
    model = _build(inp, inp["st_target"])
    model.to_matrix_form()  # charge the one-off compile outside the timer
    targets = [inp["st_target"] * 1.05, inp["st_target"] * 1.10]
    state = {"flip": 0}

    def restamp():
        state["flip"] ^= 1
        model.set_parameter("st_target", targets[state["flip"]])
        return model.to_matrix_form()

    form = benchmark.pedantic(
        restamp, rounds=20, iterations=1, warmup_rounds=2
    )
    benchmark.extra_info.update(
        {
            "benchmark": inp["entry"].name,
            "rows": form.a_matrix.shape[0],
            "cols": form.a_matrix.shape[1],
            "nnz": int(form.a_matrix.nnz),
        }
    )
