"""Seeded synthetic benchmark generator.

The paper evaluates on 27 proprietary synthesizable C benchmarks,
characterised in Table I only by (number of contexts, fabric size, number
of used PEs, fabric-usage class).  This generator produces mapped designs
with exactly those characteristics:

* the requested total op count distributed over the requested contexts
  (with mild seeded jitter, capped by fabric capacity);
* a realistic ALU/DMU kind and bitwidth mix (the paper's stress model is
  driven by exactly these: unit delays scaled by width);
* dataflow edges wired like an HLS result — intra-context combinational
  chains bounded by the clock period, register reads from earlier
  contexts, input pads feeding early ops, and output pads driven from the
  last contexts.

Determinism: the same (spec, seed) always produces the identical design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.fabric import Fabric
from repro.arch.opcodes import OpKind, op_delay_ns, unit_of
from repro.errors import BenchmarkError
from repro.hls.allocate import MappedDesign, OpInfo
from repro.units import CLOCK_PERIOD_NS

#: ALU op kinds sampled for synthetic benchmarks (weights roughly matching
#: arithmetic-heavy HLS kernels).
_ALU_POOL = (
    OpKind.ADD, OpKind.ADD, OpKind.SUB, OpKind.AND, OpKind.OR,
    OpKind.XOR, OpKind.SHL, OpKind.SHR, OpKind.LT, OpKind.EQ,
)
_DMU_POOL = (OpKind.MUL, OpKind.MUL, OpKind.SELECT, OpKind.DIV, OpKind.LOAD)

#: Width mix: mostly 32-bit with some short/char datapaths.
_WIDTH_POOL = (32, 32, 32, 16, 16, 8)

#: Fraction of ops drawn from the DMU pool.
_DMU_FRACTION = 0.35

#: Chaining budget for synthetic intra-context chains (as in the scheduler).
_CHAIN_FRACTION = 0.8


@dataclass(frozen=True)
class SyntheticSpec:
    """What to generate."""

    name: str
    num_contexts: int
    fabric_dim: int          # fabric is fabric_dim x fabric_dim
    total_ops: int           # Table I's "PE #": used-PE slots over all contexts
    num_inputs: int = 4
    num_outputs: int = 2
    seed: int = 0

    @property
    def capacity(self) -> int:
        return self.fabric_dim * self.fabric_dim

    @property
    def utilization(self) -> float:
        return self.total_ops / (self.num_contexts * self.capacity)

    def validate(self) -> None:
        if self.num_contexts < 1 or self.fabric_dim < 1:
            raise BenchmarkError(f"{self.name}: non-positive dimensions")
        if self.total_ops < self.num_contexts:
            raise BenchmarkError(
                f"{self.name}: need at least one op per context "
                f"({self.total_ops} ops, {self.num_contexts} contexts)"
            )
        if self.total_ops > self.num_contexts * self.capacity:
            raise BenchmarkError(
                f"{self.name}: {self.total_ops} ops exceed "
                f"{self.num_contexts} x {self.capacity} fabric slots"
            )


def _context_sizes(spec: SyntheticSpec, rng: random.Random) -> list[int]:
    """Distribute total_ops over contexts, one near-full context included.

    The paper selects each benchmark's fabric "based on the context with
    the maximum number of PEs" (Section VI) — i.e. the largest context
    nearly fills the fabric, and the remaining ops spread over the other
    contexts.  Sizes stay within [1, capacity] and sum exactly to
    total_ops.
    """
    capacity = spec.capacity
    total = spec.total_ops
    contexts = spec.num_contexts
    if contexts == 1:
        return [total]
    # The dominant context sizes the fabric: it must exceed the next
    # smaller (half-dimension) fabric's capacity — otherwise that fabric
    # would have been chosen — but may land anywhere up to full capacity.
    # Low-usage benchmarks therefore tend toward a smaller dominant
    # context (bounded by their op budget), leaving the spare room that
    # drives the paper's utilisation trend.
    average = -(-total // contexts)
    low_bound = max(capacity // 4 + 1, average)
    high_bound = min(capacity, total - (contexts - 1))
    # Nominal dominant size ~3/4 of the fabric with mild seeded jitter:
    # large enough that the next-smaller fabric could not host it, small
    # enough that fabric headroom is governed by the *other* contexts'
    # fill — which is what the low/medium/high usage classes vary.
    nominal = round(0.75 * capacity) + rng.randint(
        -max(1, capacity // 16), max(1, capacity // 16)
    )
    dominant = min(max(nominal, low_bound), high_bound)
    remaining = total - dominant
    others = contexts - 1
    base = remaining // others
    sizes = [base] * others
    for i in range(remaining - base * others):
        sizes[i % others] += 1
    # Jitter the small contexts while respecting [1, capacity].
    for _ in range(others * 2):
        a, b = rng.randrange(others), rng.randrange(others)
        if a == b:
            continue
        move = rng.randint(0, max(0, min(sizes[a] - 1, capacity - sizes[b], 2)))
        sizes[a] -= move
        sizes[b] += move
    position = rng.randrange(contexts)
    sizes.insert(position, dominant)
    assert sum(sizes) == total
    assert all(1 <= s <= capacity for s in sizes)
    return sizes


def generate_design(spec: SyntheticSpec) -> MappedDesign:
    """Generate the mapped design for a spec (deterministic in the seed)."""
    spec.validate()
    rng = random.Random((spec.seed, spec.name).__hash__() & 0x7FFFFFFF)
    rng = random.Random(f"{spec.name}:{spec.seed}")  # stable across runs
    sizes = _context_sizes(spec, rng)
    chain_limit = CLOCK_PERIOD_NS * _CHAIN_FRACTION

    design = MappedDesign(name=spec.name, num_contexts=spec.num_contexts)
    next_id = 0
    ops_by_context: list[list[int]] = []
    chain_delay: dict[int, float] = {}

    for context, size in enumerate(sizes):
        context_ops: list[int] = []
        for _ in range(size):
            if rng.random() < _DMU_FRACTION:
                kind = rng.choice(_DMU_POOL)
            else:
                kind = rng.choice(_ALU_POOL)
            width = rng.choice(_WIDTH_POOL)
            delay = op_delay_ns(kind, width)
            op_id = next_id
            next_id += 1
            design.ops[op_id] = OpInfo(
                op_id=op_id,
                kind=kind,
                width=width,
                context=context,
                unit=unit_of(kind),
                delay_ns=delay,
                stress_ns=delay,
            )
            context_ops.append(op_id)
        ops_by_context.append(context_ops)

    # Wire inputs for every op: 1-2 producers from (chainable same-context
    # ops | earlier contexts | input pads).
    for context, context_ops in enumerate(ops_by_context):
        earlier: list[int] = [
            op for ctx_ops in ops_by_context[:context] for op in ctx_ops
        ]
        for position, op_id in enumerate(context_ops):
            info = design.ops[op_id]
            fanin = 1 if info.kind in (OpKind.LOAD,) else rng.choice((1, 2, 2))
            my_chain = 0.0
            for _ in range(fanin):
                # Chainable predecessors: earlier ops of this context whose
                # chain delay still accommodates this op.
                chainable = [
                    p
                    for p in context_ops[:position]
                    if chain_delay[p] + info.delay_ns <= chain_limit
                ]
                roll = rng.random()
                if chainable and roll < 0.45:
                    producer = rng.choice(chainable)
                    design.compute_edges.append((producer, op_id))
                    my_chain = max(my_chain, chain_delay[producer])
                elif earlier and roll < 0.90:
                    producer = rng.choice(earlier[-3 * spec.capacity:])
                    design.compute_edges.append((producer, op_id))
                else:
                    ordinal = rng.randrange(spec.num_inputs)
                    design.input_edges.append((ordinal, op_id))
            chain_delay[op_id] = my_chain + info.delay_ns

    # Outputs: drive pads from distinct ops of the last context(s).
    sinks: list[int] = []
    for context_ops in reversed(ops_by_context):
        sinks.extend(reversed(context_ops))
        if len(sinks) >= spec.num_outputs:
            break
    for ordinal in range(spec.num_outputs):
        design.output_edges.append((sinks[ordinal % len(sinks)], ordinal))

    # De-duplicate edges (rng may pick the same producer twice).
    design.compute_edges = sorted(set(design.compute_edges))
    design.input_edges = sorted(set(design.input_edges))
    design.output_edges = sorted(set(design.output_edges))
    design.validate()
    return design


def build_benchmark(spec: SyntheticSpec) -> tuple[MappedDesign, Fabric]:
    """Design + matching fabric for a spec."""
    return generate_design(spec), Fabric(spec.fabric_dim, spec.fabric_dim)
