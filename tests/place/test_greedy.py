"""Constructive placer tests, including the stress-concentration pathology."""

from __future__ import annotations

import pytest

from repro.arch import Fabric
from repro.benchgen import SyntheticSpec, generate_design
from repro.errors import MappingError
from repro.place import greedy_place


class TestLegality:
    def test_valid_floorplan(self, synth_design, fabric4):
        floorplan = greedy_place(synth_design, fabric4)
        floorplan.validate()
        assert floorplan.num_ops == synth_design.num_ops

    def test_all_ops_in_declared_contexts(self, synth_design, fabric4):
        floorplan = greedy_place(synth_design, fabric4)
        for op, info in synth_design.ops.items():
            assert floorplan.context_of[op] == info.context

    def test_capacity_overflow_rejected(self, synth_design):
        with pytest.raises(MappingError):
            greedy_place(synth_design, Fabric(2, 2))

    def test_deterministic(self, synth_design, fabric4):
        a = greedy_place(synth_design, fabric4)
        b = greedy_place(synth_design, fabric4)
        assert a == b


class TestAgingUnawareBehaviour:
    def test_corner_packing_concentrates_usage(self):
        """Each context packs the same corner -> usage far from level.

        This is the pathology the paper's Fig. 2(a) illustrates and the
        re-mapper corrects: max usage should be near the context count,
        not near the levelled optimum.
        """
        spec = SyntheticSpec(
            name="packed", num_contexts=8, fabric_dim=4, total_ops=40, seed=3
        )
        design = generate_design(spec)
        fabric = Fabric(4, 4)
        floorplan = greedy_place(design, fabric)
        counts = floorplan.usage_counts()
        levelled_max = -(-design.num_ops // fabric.num_pes)  # ceil
        assert max(counts) >= levelled_max + 2
        # The hotspot sits against the west edge (input pads + corner
        # bias pull the packing there), far from the east columns.
        busiest = max(range(fabric.num_pes), key=lambda k: counts[k])
        assert fabric.pe(busiest).col <= 1
        assert sum(counts[k] for k in range(fabric.num_pes)
                   if fabric.pe(k).col >= 3) <= design.num_ops // 4

    def test_higher_bias_packs_tighter(self):
        spec = SyntheticSpec(
            name="bias", num_contexts=4, fabric_dim=4, total_ops=20, seed=1
        )
        design = generate_design(spec)
        fabric = Fabric(4, 4)
        loose = greedy_place(design, fabric, corner_bias=0.01)
        tight = greedy_place(design, fabric, corner_bias=2.0)
        def spread(fp):
            used = [k for k, c in enumerate(fp.usage_counts()) if c]
            rows = [fabric.pe(k).row for k in used]
            cols = [fabric.pe(k).col for k in used]
            return max(rows) + max(cols)
        assert spread(tight) <= spread(loose)

    def test_full_context_fills_fabric(self):
        spec = SyntheticSpec(
            name="full", num_contexts=2, fabric_dim=3, total_ops=18, seed=5
        )
        design = generate_design(spec)
        floorplan = greedy_place(design, Fabric(3, 3))
        assert floorplan.used_pes(0) == set(range(9))
        assert floorplan.used_pes(1) == set(range(9))
