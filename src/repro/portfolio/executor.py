"""The hedged racing executor: first certified answer wins.

:class:`PortfolioBackend` implements the backend ``solve`` protocol by
racing several lanes (see :mod:`repro.portfolio.lanes`) over the same
model.  The design goals, in priority order:

1. **Never accept a wrong answer.**  Every positive result passes the
   PR 5 certifier (:func:`repro.verify.certify_solution`) before it can
   win; an uncertifiable lane result is a *lane* failure, never a flow
   failure, and never emits ``certification.failed``.
2. **Survive lane failures.**  A crashed, hung, timed-out or lying lane
   is struck and charged to its circuit breaker; the race continues on
   the remaining lanes.  Only when *every* lane fails does the solve
   raise, and then the caller's degradation ladder takes over.
3. **Stay deterministic when healthy.**  Racing is hedged, not
   simultaneous: the leader lane starts immediately, every other lane
   waits ``hedge_delay_s`` (released early only when all started lanes
   have terminally failed).  On models the leader solves inside the
   hedge window — all smoke benchmarks — backup lanes never start, so a
   no-fault portfolio run is bit-identical to a serial run on the
   leader backend.

Threading model: one daemon thread per lane, each running in its own
``contextvars.copy_context()`` so spans nest under the ``portfolio``
span and the race's :class:`~repro.portfolio.cancel.CancelToken` plus a
per-lane :class:`~repro.resilience.deadline.Deadline` are visible only
inside that lane.  The model is compiled once parent-side before any
thread starts, so lanes share the lowering cache read-only.  A lane that
ignores cancellation past its grace period is abandoned (daemon threads
die with the process) and recorded as hung.
"""

from __future__ import annotations

import contextvars
import dataclasses
import queue
import threading
import time

from repro.errors import (
    DeadlineExceededError,
    SolverError,
    WarmStartError,
)
from repro.milp.expr import VarType
from repro.milp.model import Model
from repro.milp.status import Solution, SolveStatus
from repro.obs import counter, event, get_logger, span
from repro.obs.solverstats import SolveStats
from repro.portfolio.breaker import (
    ADMIT_RUN,
    ADMIT_SKIP,
    BreakerBoard,
)
from repro.portfolio.cancel import CancelToken, cancel_scope
from repro.portfolio.lanes import (
    DEFAULT_LANES,
    lane_applicable,
    make_lane_backend,
)
from repro.resilience.deadline import Deadline, current_deadline, deadline_scope
from repro.resilience.faults import decide_lane_fault

_log = get_logger("portfolio.executor")

#: Races kept in the in-memory log / ``portfolio_snapshot``.
MAX_RACE_LOG = 20
#: Floor/ceiling of the post-decision grace join for losing lanes.
MIN_GRACE_S = 0.25
MAX_GRACE_S = 2.0
#: A running loser is "overtaken" (a breaker failure, unlike merely
#: losing) when it started no later than the winner and is still running
#: after OVERTAKE_FACTOR x the winner's solve time plus the slack.
OVERTAKE_FACTOR = 2.0
OVERTAKE_SLACK_S = 0.1


@dataclasses.dataclass
class _LaneRun:
    """One lane's participation in one race (mutated across threads)."""

    lane: str
    backend: object
    admit: str
    delay_s: float = 0.0
    fault: str | None = None
    release: threading.Event = dataclasses.field(default_factory=threading.Event)
    thread: threading.Thread | None = None
    #: "waiting" -> "running" -> "done" | "skipped" (set by the lane
    #: thread); the executor owns the post-race classification fields.
    state: str = "waiting"
    started_s: float | None = None
    finished_s: float | None = None
    outcome: str = ""  # "answered" | "crash" | "timeout" | "hang" | "skipped"
    solution: Solution | None = None
    error: BaseException | None = None
    #: The executor's final verdict: "won", "infeasible", "lost",
    #: "skipped", or a FAILURE_KINDS entry.
    verdict: str = ""
    cancelled_at_s: float | None = None

    def row(self) -> dict:
        """JSON-safe per-lane race-record row."""
        status = self.solution.status.value if self.solution else ""
        reason = ""
        if self.solution is not None and self.solution.stats is not None:
            reason = self.solution.stats.limit_reason
        return {
            "lane": self.lane,
            "admit": self.admit,
            "verdict": self.verdict,
            "started_s": None if self.started_s is None else round(self.started_s, 6),
            "finished_s": None if self.finished_s is None else round(self.finished_s, 6),
            "cancelled_at_s": (
                None if self.cancelled_at_s is None else round(self.cancelled_at_s, 6)
            ),
            "status": status,
            "limit_reason": reason,
            "fault": self.fault or "",
        }


class PortfolioBackend:
    """Race solver lanes; return the first *certified* answer.

    Implements the backend protocol (``solve(model, **options)``), so it
    drops into :func:`repro.core.algorithm1.run_algorithm1` and the
    Step-1 bisection unchanged.  One instance carries its circuit
    breakers and race log across every solve of a run, which is how
    breaker demotion persists across Algorithm 1 iterations.
    """

    def __init__(
        self,
        lanes: tuple[str, ...] = DEFAULT_LANES,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
        hedge_delay_s: float = 1.5,
        lane_timeout_s: float | None = None,
        certify: bool = True,
    ) -> None:
        if not lanes:
            raise SolverError("portfolio needs at least one lane")
        self.lane_names = tuple(lanes)
        self.backends = {
            name: make_lane_backend(name, time_limit, mip_rel_gap)
            for name in self.lane_names
        }
        self.board = BreakerBoard(self.lane_names)
        self.hedge_delay_s = float(hedge_delay_s)
        self.lane_timeout_s = lane_timeout_s
        self.certify = certify
        self.solves = 0
        self.winners: dict[str, int] = {}
        self.races: list[dict] = []

    # -- public protocol ------------------------------------------------------
    def solve(self, model: Model, **options) -> Solution:
        outer = current_deadline()
        outer.check(f"portfolio:{model.name}")
        self.solves += 1
        fault = decide_lane_fault()
        # Compile parent-side so racing threads share the cache read-only.
        model.to_matrix_form()
        runs = self._admit(model, fault)
        with span(
            "portfolio",
            model=model.name,
            lanes=",".join(run.lane for run in runs),
            fault=fault or "",
        ):
            if len(runs) == 1:
                return self._finish(model, runs, self._run_inline(model, runs[0], options))
            return self._finish(model, runs, self._race(model, runs, options))

    def portfolio_snapshot(self) -> dict:
        """JSON-safe state for ``Algorithm1Stats.portfolio``."""
        return {
            "schema": 1,
            "lanes": list(self.lane_names),
            "hedge_delay_s": self.hedge_delay_s,
            "solves": self.solves,
            "winners": dict(self.winners),
            "breakers": self.board.snapshot(),
            "races": [dict(race) for race in self.races],
        }

    # -- admission ------------------------------------------------------------
    def _admit(self, model: Model, fault: str | None) -> list[_LaneRun]:
        runs: list[_LaneRun] = []
        skipped: list[str] = []
        for name in self.lane_names:
            backend = self.backends[name]
            if not lane_applicable(name, backend, model):
                continue
            admit = self.board[name].admit()
            if admit == ADMIT_SKIP:
                skipped.append(name)
                continue
            runs.append(_LaneRun(lane=name, backend=backend, admit=admit))
        if not runs:
            # Every applicable lane is quarantined; a solve must still be
            # attempted, so force-probe the configured leader.
            for name in self.lane_names:
                backend = self.backends[name]
                if lane_applicable(name, backend, model):
                    _log.warning(
                        "all lanes quarantined; force-probing %r", name
                    )
                    runs.append(
                        _LaneRun(lane=name, backend=backend, admit=ADMIT_RUN)
                    )
                    break
            if not runs:
                raise SolverError(
                    f"no portfolio lane is applicable to model {model.name!r}"
                )
        # The leader is the first breaker-healthy lane; a demoted (hedged)
        # configured leader hands the slot to the next healthy lane.
        leader = next((run for run in runs if run.admit == ADMIT_RUN), runs[0])
        for run in runs:
            run.delay_s = 0.0 if run is leader else self.hedge_delay_s
        # Lane faults stick to the *configured* leading backend (the
        # first lane name), wherever the breaker has moved it: that is
        # what lets "lane_crash" keep hitting HiGHS after demotion while
        # the backup serves every solve.
        if fault is not None:
            for run in runs:
                if run.lane == self.lane_names[0]:
                    run.fault = fault
                    break
        return runs

    # -- single-lane fast path ------------------------------------------------
    def _run_inline(self, model: Model, run: _LaneRun, options) -> _LaneRun | None:
        """Run the only admitted lane in the calling thread (no race)."""
        token = CancelToken()
        t0 = time.perf_counter()
        self._lane_body(run, model, options, token, t0)
        return self._classify_terminal(model, run, leader=run)

    # -- the race -------------------------------------------------------------
    def _race(self, model: Model, runs: list[_LaneRun], options) -> _LaneRun | None:
        outer = current_deadline()
        token = CancelToken()
        results: queue.Queue = queue.Queue()
        t0 = time.perf_counter()
        leader = next(run for run in runs if run.delay_s == 0.0)
        for run in runs:
            ctx = contextvars.copy_context()
            run.thread = threading.Thread(
                target=ctx.run,
                args=(self._lane_thread, run, model, options, token, t0, results),
                name=f"portfolio-{run.lane}",
                daemon=True,
            )
        for run in runs:
            run.thread.start()

        winner: _LaneRun | None = None
        held_infeasible: list[_LaneRun] = []
        pending = {run.lane: run for run in runs}
        try:
            while pending:
                try:
                    outer.check(f"portfolio:{model.name}")
                except DeadlineExceededError:
                    raise
                try:
                    run = results.get(timeout=0.05)
                except queue.Empty:
                    self._strike_overdue(pending, outer, t0)
                    self._maybe_release(runs, pending)
                    continue
                pending.pop(run.lane, None)
                verdict = self._classify_terminal(model, run, leader)
                if verdict is not None:
                    if verdict.solution is not None and (
                        verdict.solution.status is SolveStatus.INFEASIBLE
                        and run is not leader
                    ):
                        held_infeasible.append(verdict)
                    else:
                        winner = verdict
                        break
                self._maybe_release(runs, pending)
        finally:
            token.cancel()
            for run in runs:
                run.release.set()

        if winner is None and held_infeasible:
            # All lanes resolved; a backup's proven INFEASIBLE is the
            # best (and a sound) answer.
            winner = held_infeasible[0]
            winner.verdict = "infeasible"
        self._reap_losers(runs, winner, t0)
        return winner

    # -- lane threads ---------------------------------------------------------
    def _lane_thread(self, run, model, options, token, t0, results) -> None:
        try:
            self._lane_body(run, model, options, token, t0)
        finally:
            results.put(run)

    def _lane_body(self, run: _LaneRun, model, options, token: CancelToken, t0) -> None:
        if run.delay_s > 0.0:
            run.release.wait(run.delay_s)
        if token.cancelled:
            run.state = "skipped"
            run.outcome = "skipped"
            return
        run.started_s = time.perf_counter() - t0
        run.state = "running"
        try:
            with cancel_scope(token):
                with deadline_scope(self._lane_deadline()):
                    if run.fault == "lane_crash":
                        raise SolverError(
                            f"fault injection: lane crash in {run.lane!r}"
                        )
                    if run.fault == "lane_hang":
                        # A real native hang never returns; the injected
                        # one honours only the cancel token, so the
                        # thread is reclaimed once the race is decided
                        # while staying invisible to the decision logic.
                        token.wait()
                        run.outcome = "hang"
                        return
                    solution = run.backend.solve(model, **options)
                    if (
                        run.fault == "lane_wrong_answer"
                        and solution.status.has_solution
                    ):
                        solution = _corrupt_solution(solution)
            run.solution = solution
            run.outcome = "answered"
        except DeadlineExceededError as exc:
            run.outcome = "timeout"
            run.error = exc
        except Exception as exc:  # noqa: BLE001 - a lane must never kill the race
            run.outcome = "crash"
            run.error = exc
        finally:
            run.finished_s = time.perf_counter() - t0
            if run.state == "running":
                run.state = "done"

    def _lane_deadline(self) -> Deadline | None:
        """Per-lane budget: min(lane timeout, remaining outer budget)."""
        outer = current_deadline()
        remaining = outer.remaining_s()
        budget = self.lane_timeout_s
        if remaining != float("inf"):
            budget = remaining if budget is None else min(budget, remaining)
        if budget is None:
            return None
        return Deadline.after(max(budget, 0.0))

    # -- classification -------------------------------------------------------
    def _classify_terminal(
        self, model: Model, run: _LaneRun, leader: _LaneRun
    ) -> _LaneRun | None:
        """Judge one finished lane.

        Returns ``run`` when it carries an answer the race can end on
        (a certified positive, or a proven INFEASIBLE — the caller holds
        backup INFEASIBLEs until the leader resolves); ``None`` when the
        lane is struck or neutral.
        """
        if run.outcome == "skipped":
            run.verdict = "skipped"
            return None
        if run.outcome == "hang":
            self._fail(run, "hang")
            return None
        if run.outcome == "timeout":
            self._fail(run, "timeout")
            return None
        if run.outcome == "crash":
            if isinstance(run.error, WarmStartError):
                # A malformed hint is a caller bug, not lane weather —
                # surface it instead of letting the race paper over it.
                raise run.error
            self._fail(run, "crash")
            return None
        solution = run.solution
        if solution is None:  # pragma: no cover - defensive
            self._fail(run, "crash")
            return None
        if solution.status.has_solution and (
            solution.values or model.num_variables == 0
        ):
            # An empty values mapping is a *valid* answer on a
            # zero-variable model (every op frozen — Algorithm 1's last
            # rotate iteration does this); only a missing assignment on a
            # model that has variables is a lane failure.
            if self.certify and not self._gate(model, run, solution):
                return None
            run.verdict = "won"
            return run
        if solution.status is SolveStatus.INFEASIBLE:
            run.verdict = "infeasible"
            return run
        reason = solution.stats.limit_reason if solution.stats else ""
        if reason in ("cancelled", "incomplete"):
            run.verdict = "lost"
            return None
        self._fail(run, "timeout" if reason in ("deadline", "time_limit") else "crash")
        return None

    def _gate(self, model: Model, run: _LaneRun, solution: Solution) -> bool:
        """Certify a positive lane answer; a failed gate strikes the lane.

        Uses :func:`repro.verify.certify_solution` directly — the winner
        gate emits ``portfolio.lane_rejected``, never
        ``certification.failed``, because a lying *lane* is a portfolio
        event, not a flow-level certification failure.
        """
        from repro.verify import certify_solution

        certificate = certify_solution(model, solution)
        if certificate.ok:
            return True
        counter("portfolio.lane_rejected").inc()
        event(
            "portfolio.lane_rejected",
            lane=run.lane,
            model=model.name,
            violations=len(certificate.violations),
            first=str(certificate.violations[0]) if certificate.violations else "",
        )
        _log.warning(
            "lane %r returned an uncertifiable solution for %s (%d violations)",
            run.lane, model.name, len(certificate.violations),
        )
        self._fail(run, "rejected")
        return False

    def _fail(self, run: _LaneRun, kind: str) -> None:
        run.verdict = kind
        self.board[run.lane].record_failure(kind)

    # -- supervision ----------------------------------------------------------
    def _strike_overdue(self, pending: dict, outer: Deadline, t0) -> None:
        """Abandon lanes that blew far past their budget without posting.

        Covers the *real*-hang case (a native call that ignores both the
        cancel token and its deadline): the thread cannot be killed, but
        the race must not wait for it forever.
        """
        now = time.perf_counter() - t0
        budget = self.lane_timeout_s
        if budget is None:
            remaining = outer.remaining_s()
            if remaining == float("inf"):
                return
            budget = remaining
        for run in list(pending.values()):
            if run.state != "running" or run.started_s is None:
                continue
            if now - run.started_s > budget + 1.0:
                pending.pop(run.lane, None)
                self._fail(run, "hang")
                _log.warning(
                    "lane %r abandoned after %.3fs (budget %.3fs)",
                    run.lane, now - run.started_s, budget,
                )

    @staticmethod
    def _maybe_release(runs: list[_LaneRun], pending: dict) -> None:
        """Start hedged lanes early once every started lane has failed.

        A lane that is still ``waiting`` with a zero delay is the leader
        whose thread has not been scheduled yet — it counts as active, or
        the first post-spawn poll would release every backup instantly.
        """
        for run in runs:
            if run.lane not in pending:
                continue
            if run.state == "running":
                return
            if run.state == "waiting" and run.delay_s == 0.0:
                return
        for run in runs:
            if run.state == "waiting" and run.lane in pending:
                run.release.set()

    def _reap_losers(self, runs: list[_LaneRun], winner, t0) -> None:
        """Cancel, grace-join and judge the lanes still out on track."""
        decided_at = time.perf_counter() - t0
        winner_elapsed = None
        if winner is not None and winner.started_s is not None:
            winner_elapsed = (winner.finished_s or decided_at) - winner.started_s
        grace = MIN_GRACE_S
        if winner_elapsed is not None:
            grace = min(
                max(MIN_GRACE_S, OVERTAKE_FACTOR * winner_elapsed + OVERTAKE_SLACK_S),
                MAX_GRACE_S,
            )
        for run in runs:
            if run is winner or run.verdict not in ("", "lost"):
                continue
            if run.thread is not None and run.thread.is_alive():
                run.cancelled_at_s = decided_at
                run.thread.join(grace)
                if run.thread.is_alive():
                    # Still running after cancellation + grace: hung (or
                    # overtaken so badly it amounts to the same thing).
                    self._fail(run, self._loser_kind(run, winner, winner_elapsed, t0))
                    continue
            if run.verdict:
                continue
            if run.outcome == "hang":
                self._fail(run, "hang")
            elif run.outcome in ("skipped", ""):
                run.verdict = "skipped"
            elif run.outcome == "crash":
                self._fail(run, "crash")
            elif run.outcome == "timeout":
                self._fail(run, "timeout")
            else:
                run.verdict = "lost"

    @staticmethod
    def _loser_kind(run, winner, winner_elapsed, t0) -> str:
        """Hung vs merely slow: the overtaken rule."""
        if winner is None or winner_elapsed is None or run.started_s is None:
            return "hang"
        started_before_winner = run.started_s <= (winner.started_s or 0.0)
        ran_for = (time.perf_counter() - t0) - run.started_s
        if started_before_winner and ran_for > (
            OVERTAKE_FACTOR * winner_elapsed + OVERTAKE_SLACK_S
        ):
            return "overtaken"
        return "hang"

    # -- bookkeeping ----------------------------------------------------------
    def _finish(
        self, model: Model, runs: list[_LaneRun], winner: _LaneRun | None
    ) -> Solution:
        verdict = "failed"
        margin_s = None
        if winner is not None:
            verdict = winner.verdict if winner.verdict else "won"
            self.board[winner.lane].record_success()
            self.winners[winner.lane] = self.winners.get(winner.lane, 0) + 1
            finishers = sorted(
                (
                    run.finished_s
                    for run in runs
                    if run is not winner and run.finished_s is not None
                    and run.outcome == "answered"
                ),
            )
            if finishers and winner.finished_s is not None:
                margin_s = round(finishers[0] - winner.finished_s, 6)
        race = {
            "model": model.name,
            "winner": winner.lane if winner is not None else "",
            "verdict": verdict,
            "margin_s": margin_s,
            "lanes": [run.row() for run in runs],
        }
        self.races.append(race)
        if len(self.races) > MAX_RACE_LOG:
            del self.races[0]
        event("portfolio.race", **race)
        counter("portfolio.races").inc()
        if winner is None:
            details = "; ".join(
                f"{run.lane}: {run.verdict or run.outcome}"
                f"{f' ({run.error})' if run.error else ''}"
                for run in runs
            )
            raise SolverError(
                f"all portfolio lanes failed for model {model.name!r}: {details}"
            )
        solution = winner.solution
        assert solution is not None
        if solution.stats is None:
            solution.stats = SolveStats(backend=winner.lane)
        solution.stats.lane = winner.lane
        return solution


def _corrupt_solution(solution: Solution) -> Solution:
    """The ``lane_wrong_answer`` fault: a plausible but wrong answer.

    Flips the first binary variable (or bumps the first variable when no
    binary exists), exactly the kind of off-by-one a buggy backend would
    produce — close enough to fool a status check, caught only by the
    certification gate.
    """
    values = dict(solution.values)
    target = None
    for var in values:
        if var.vtype is not VarType.CONTINUOUS:
            target = var
            break
    if target is None and values:
        target = next(iter(values))
    if target is not None:
        if target.vtype is VarType.BINARY:
            values[target] = 1.0 - values[target]
        else:
            values[target] = values[target] + 1.0
    return dataclasses.replace(
        solution,
        values=values,
        message=f"fault injection: corrupted answer ({solution.message})",
    )
