"""Processing-element model.

A CGRRA PE (paper Fig. 1) bundles an ALU and a DMU behind an output
register.  At most one operation executes on a PE per context (clock
cycle); which functional unit it engages — and for how long within the
cycle — determines the PE's stress for that cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.opcodes import OpKind, UnitKind, op_delay_ns, stress_rate, unit_of
from repro.errors import ArchitectureError
from repro.units import ALU_DELAY_NS, CLOCK_PERIOD_NS, DMU_DELAY_NS


@dataclass(frozen=True)
class FunctionalUnit:
    """One datapath unit inside a PE."""

    kind: UnitKind
    delay_ns: float

    @property
    def stress_rate(self) -> float:
        """Duty cycle when active for a full clock: delay / clock period."""
        return self.delay_ns / CLOCK_PERIOD_NS


#: The two units every STP-style PE contains, at reference width.
ALU_UNIT = FunctionalUnit(UnitKind.ALU, ALU_DELAY_NS)
DMU_UNIT = FunctionalUnit(UnitKind.DMU, DMU_DELAY_NS)


@dataclass(frozen=True)
class PECell:
    """A processing element at a fixed grid position.

    Attributes
    ----------
    index:
        Linear index within the fabric (row-major).
    row, col:
        Grid coordinates; the pitch between adjacent PEs is 1.0 length unit.
    """

    index: int
    row: int
    col: int

    @property
    def position(self) -> tuple[int, int]:
        return (self.row, self.col)

    def unit_for(self, kind: OpKind) -> FunctionalUnit:
        """The functional unit this PE uses to execute ``kind``."""
        unit = unit_of(kind)
        if unit is UnitKind.ALU:
            return ALU_UNIT
        if unit is UnitKind.DMU:
            return DMU_UNIT
        raise ArchitectureError(f"pseudo op {kind.value} does not execute on a PE")

    def delay_for(self, kind: OpKind, width: int = 32) -> float:
        """Delay in ns when executing ``kind`` at ``width`` bits."""
        return op_delay_ns(kind, width)

    def stress_for(self, kind: OpKind, width: int = 32) -> float:
        """Stress time contributed by executing ``kind`` for one clock, in ns.

        Per Section III: the unit's active time within the cycle — its delay.
        (Equivalently ``stress_rate * clock_period``.)
        """
        return stress_rate(kind, width) * CLOCK_PERIOD_NS

    def __repr__(self) -> str:
        return f"PE{self.index}@({self.row},{self.col})"
