"""DELAY_EPS float-guard regression: ties at exactly the guard spacing.

The CPD scan is order-dependent: the running ``cpd`` only advances when a
completion exceeds ``cpd + DELAY_EPS``, and ties within ``DELAY_EPS`` all
join the critical set.  A vectorized scan that replaced the sequential
guard with a plain ``max`` would mis-handle completions spaced at exactly
``DELAY_EPS`` — these tests pin the scalar semantics and assert the
vector path reproduces them bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.arch import Fabric, Floorplan, OpKind, UnitKind
from repro.hls import MappedDesign, OpInfo
from repro.kernels import kernels_scope
from repro.timing import analyze
from repro.timing.sta import DELAY_EPS


def _design_with_delays(delays):
    """Independent single-context ops (no edges): completion == own delay."""
    design = MappedDesign(name="eps", num_contexts=1)
    design.clock_period_ns = 100.0
    for op, delay in enumerate(delays):
        design.ops[op] = OpInfo(
            op, OpKind.ADD, 32, 0, UnitKind.ALU, delay, delay
        )
    design.compute_edges = []
    return design


def _placed(design):
    fabric = Fabric(6, 6, unit_wire_delay_ns=1.0)
    floorplan = Floorplan(fabric, 1)
    for op in design.ops:
        floorplan.bind(op, 0, op)
    return floorplan


def _analyze_both(delays):
    design = _design_with_delays(delays)
    floorplan = _placed(design)
    with kernels_scope("scalar"):
        ref = analyze(design, floorplan)
    with kernels_scope("vector"):
        vec = analyze(design, floorplan)
    return ref, vec


class TestDelayEpsTies:
    def test_exact_eps_spacing_matches_scalar(self):
        # 1.0, 1.0 + eps, 1.0 + 2*eps, ...: each step sits exactly on the
        # guard boundary, the worst case for any reimplemented scan.
        delays = [1.0, 1.0 + DELAY_EPS, 1.0 + 2 * DELAY_EPS, 1.0 + 3 * DELAY_EPS]
        ref, vec = _analyze_both(delays)
        assert ref.cpd_ns == vec.cpd_ns
        assert ref.per_context[0].critical_ops == vec.per_context[0].critical_ops
        assert ref.per_context[0].arrival_ns == vec.per_context[0].arrival_ns

    def test_descending_eps_spacing_matches_scalar(self):
        delays = [1.0 + 3 * DELAY_EPS, 1.0 + 2 * DELAY_EPS, 1.0 + DELAY_EPS, 1.0]
        ref, vec = _analyze_both(delays)
        assert ref.cpd_ns == vec.cpd_ns
        assert ref.per_context[0].critical_ops == vec.per_context[0].critical_ops

    def test_tie_within_eps_keeps_both_endpoints(self):
        delays = [2.0, 2.0 + 0.5 * DELAY_EPS, 1.0]
        ref, vec = _analyze_both(delays)
        # Both near-equal completions are critical endpoints...
        assert ref.per_context[0].critical_ops == [0, 1]
        # ...and the vector scan agrees exactly.
        assert vec.per_context[0].critical_ops == [0, 1]
        assert ref.cpd_ns == vec.cpd_ns

    def test_late_small_riser_advances_cpd_identically(self):
        # After a tie at 2.0, a completion just past the guard must take
        # over as the sole critical endpoint in both modes.
        delays = [2.0, 2.0, 2.0 + 2 * DELAY_EPS]
        ref, vec = _analyze_both(delays)
        assert ref.per_context[0].critical_ops == [2]
        assert vec.per_context[0].critical_ops == [2]
        assert ref.cpd_ns == 2.0 + 2 * DELAY_EPS == vec.cpd_ns

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_eps_lattice_matches_scalar(self, seed):
        import random

        rng = random.Random(seed)
        delays = [
            1.0 + rng.randrange(0, 4) * DELAY_EPS for _ in range(24)
        ]
        ref, vec = _analyze_both(delays)
        assert ref.cpd_ns == vec.cpd_ns
        assert ref.per_context[0].critical_ops == vec.per_context[0].critical_ops
