"""Independent certification of solver solutions and re-mapped floorplans.

PR 4 made the solve path fast through aggressive reuse: structure-cached
lowerings, O(rows) RHS restamps, warm-started incumbents.  Nothing in that
path is allowed to *judge itself* — a silent restamp bug would produce
confidently wrong floorplans.  This module is the auditor: a deliberately
simple, reuse-free re-check of everything an accepted result claims.

Two layers, kept independent of the code they audit:

* :func:`certify_solution` re-evaluates every row of the **uncompiled**
  :class:`~repro.milp.model.Model` (the live ``Constraint`` objects, not
  the cached :class:`~repro.milp.model.CompiledModel` lowering) against a
  backend :class:`~repro.milp.status.Solution`, with explicit absolute
  and relative tolerances, plus variable bounds and integrality.  Under
  ``REPRO_KERNELS=vector`` the row audit runs as one verify-owned CSR
  mat-vec (:mod:`repro.kernels.certify`, lowered from the live
  constraints — still zero shared code with the compiled cache);
  ``REPRO_KERNELS=scalar`` keeps the row-by-row ordered sum.
* :func:`certify_floorplan` re-derives the paper's domain invariants from
  first principles: per-PE stress re-accumulated with a plain dict loop
  (not :func:`repro.aging.stress.compute_stress_map`'s vectorised path),
  exactly-one-PE bindings and per-(context, PE) slot exclusivity, frozen
  critical-path pinning, schedule preservation, and a fresh full-STA run
  certifying CPD <= baseline.

Failures are reported as :class:`Violation` records with a stable ``kind``
taxonomy (see the ``KIND_*`` constants) so tests and callers can assert on
*why* certification failed; :meth:`Certificate.raise_if_failed` converts
them into a typed :class:`~repro.errors.CertificationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import CertificationError
from repro.kernels import certify as certify_kernel
from repro.kernels import vectorized
from repro.milp.expr import VarType
from repro.obs import counter, event, get_logger

_log = get_logger("verify.certifier")

#: Absolute feasibility tolerance for re-checked constraint rows.
ABS_TOL = 1e-6
#: Relative feasibility tolerance (scaled by the row's activity magnitude).
REL_TOL = 1e-9
#: Integrality tolerance for binary/integer variables (HiGHS' default scale).
INT_TOL = 1e-5
#: CPD guard band, matching Algorithm 1's acceptance epsilon.
CPD_EPS = 1e-6

# -- violation taxonomy (stable names; asserted on by the fuzz tests) --------
KIND_ROW = "row_infeasible"
KIND_BOUNDS = "bounds"
KIND_INTEGRALITY = "integrality"
KIND_MISSING_VALUE = "missing_value"
KIND_UNASSIGNED = "unassigned"
KIND_SCHEDULE = "schedule_changed"
KIND_SLOT = "slot_conflict"
KIND_FROZEN = "frozen_moved"
KIND_STRESS = "stress_budget"
KIND_CPD = "cpd_degraded"


@dataclass(frozen=True)
class Violation:
    """One certified-invariant breach.

    ``kind`` is one of the ``KIND_*`` constants; ``subject`` names the
    violated object (a constraint row, an op, a PE); ``magnitude`` is the
    non-negative violation amount in the subject's natural unit.
    ``tags`` carries the violated row's domain metadata
    (:class:`~repro.milp.model.RowMeta` tags — constraint family, PE
    coordinates, op/context ids) so errors and ``certification.failed``
    events speak in problem terms instead of bare row indices.
    """

    kind: str
    subject: str
    detail: str
    magnitude: float = 0.0
    tags: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "subject": self.subject,
            "detail": self.detail,
            "magnitude": self.magnitude,
        }
        if self.tags:
            data["tags"] = dict(self.tags)
        return data


@dataclass
class Certificate:
    """Outcome of one certification pass."""

    checks: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> set[str]:
        return {v.kind for v in self.violations}

    def merge(self, other: "Certificate") -> "Certificate":
        self.checks.extend(other.checks)
        self.violations.extend(other.violations)
        return self

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": list(self.checks),
            "violations": [v.to_dict() for v in self.violations],
        }

    def raise_if_failed(self, context: str = "solution") -> None:
        """Raise :class:`CertificationError` carrying every violation."""
        if self.ok:
            return
        head = "; ".join(
            f"{v.kind}[{v.subject}]: {v.detail}" for v in self.violations[:3]
        )
        more = len(self.violations) - 3
        suffix = f" (+{more} more)" if more > 0 else ""
        raise CertificationError(
            f"{context} failed certification: {head}{suffix}",
            violations=tuple(self.violations),
        )


def _row_tolerance(activity: float, rhs: float, abs_tol: float, rel_tol: float) -> float:
    scale = max(1.0, abs(activity), abs(rhs))
    return abs_tol + rel_tol * scale


def _ordered_dot(terms: Mapping, resolved: Mapping) -> float:
    """Row activity as a sequential term-order sum.

    Deliberately *not* ``np.dot``: BLAS may reassociate the
    accumulation, whereas a sequential sum in terms order is exactly
    what the vectorized CSR mat-vec computes per row — keeping the
    scalar and vectorized certification paths bit-identical.
    """
    total = 0.0
    for var, coeff in terms.items():
        total += float(coeff) * resolved.get(var, 0.0)
    return total


def certify_solution(
    model,
    solution,
    abs_tol: float = ABS_TOL,
    rel_tol: float = REL_TOL,
    int_tol: float = INT_TOL,
) -> Certificate:
    """Re-check a backend solution against the *uncompiled* model.

    Walks the live :class:`~repro.milp.constraint.Constraint` objects and
    evaluates each row as an ordered sum over the solution values — a
    second, independent lowering that shares nothing with the
    structure-cached :meth:`~repro.milp.model.Model.compile` path it
    audits (vectorized into one CSR mat-vec under
    ``REPRO_KERNELS=vector``, bit-identical by construction).  Also
    re-checks per-variable bounds and integrality.
    """
    cert = Certificate()
    values = solution.values
    missing: list[str] = []
    resolved: dict = {}
    for var in model.variables:
        value = values.get(var)
        if value is None:
            missing.append(var.name)
            continue
        value = float(value)
        resolved[var] = value
        if value < var.lb - abs_tol or value > var.ub + abs_tol:
            cert.violations.append(
                Violation(
                    kind=KIND_BOUNDS,
                    subject=var.name,
                    detail=(
                        f"value {value:.9g} outside bounds "
                        f"[{var.lb:g}, {var.ub:g}]"
                    ),
                    magnitude=max(var.lb - value, value - var.ub, 0.0),
                )
            )
        if var.vtype is not VarType.CONTINUOUS:
            drift = abs(value - round(value))
            if drift > int_tol:
                cert.violations.append(
                    Violation(
                        kind=KIND_INTEGRALITY,
                        subject=var.name,
                        detail=f"value {value:.9g} is {drift:.3g} from integral",
                        magnitude=drift,
                    )
                )
    for name in missing:
        cert.violations.append(
            Violation(
                kind=KIND_MISSING_VALUE,
                subject=name,
                detail="variable has no value in the solution",
            )
        )
    cert.checks.append(f"bounds+integrality over {len(model.variables)} variables")

    rows = model.row_metadata()
    if vectorized():
        # One verify-owned CSR mat-vec over all rows (repro.kernels.certify
        # lowers the live constraints itself — independence from the
        # compiled-cache path is preserved).  Bit-identical to the scalar
        # loop below: the CSR stores each row in terms order and scipy's
        # mat-vec accumulates it sequentially, exactly like _ordered_dot.
        activities, excess, violated = certify_kernel.audit_rows(
            model, resolved, abs_tol, rel_tol
        )
        for index in violated.tolist():
            meta = rows[index]
            cert.violations.append(
                Violation(
                    kind=KIND_ROW,
                    subject=meta.name,
                    detail=(
                        f"row {meta.index}: activity {activities[index]:.9g} "
                        f"{meta.sense} {meta.rhs:.9g} violated by "
                        f"{excess[index]:.3g}"
                    ),
                    magnitude=float(excess[index]),
                    tags=dict(meta.tags),
                )
            )
        cert.checks.append(f"feasibility over {len(rows)} rows")
        return cert
    for meta, constraint in zip(rows, model.constraints):
        activity = _ordered_dot(constraint.lhs.terms, resolved)
        rhs = meta.rhs
        tol = _row_tolerance(activity, rhs, abs_tol, rel_tol)
        if meta.sense == "<=":
            excess = activity - rhs
        elif meta.sense == ">=":
            excess = rhs - activity
        else:
            excess = abs(activity - rhs)
        if excess > tol:
            cert.violations.append(
                Violation(
                    kind=KIND_ROW,
                    subject=meta.name,
                    detail=(
                        f"row {meta.index}: activity {activity:.9g} "
                        f"{meta.sense} {rhs:.9g} violated by {excess:.3g}"
                    ),
                    magnitude=excess,
                    tags=dict(meta.tags),
                )
            )
    cert.checks.append(f"feasibility over {len(rows)} rows")
    return cert


def certify_floorplan(
    design,
    remapped,
    frozen_positions=None,
    st_target_ns: float | None = None,
    baseline_cpd_ns: float | None = None,
    graphs=None,
    stress_tol_ns: float = ABS_TOL,
) -> Certificate:
    """Re-derive the paper's domain invariants for a re-mapped floorplan.

    Every check is computed from first principles on the binding itself;
    nothing is read back from the MILP, the stress-map cache, or the
    acceptance path being audited.  Checks whose reference input is not
    provided (e.g. ``baseline_cpd_ns``) are skipped.
    """
    cert = Certificate()
    num_pes = remapped.fabric.num_pes

    # Exactly-one-PE bindings, valid PE range, schedule preservation and
    # per-(context, PE) slot exclusivity — one plain pass over the ops.
    occupants: dict[tuple[int, int], int] = {}
    stress_by_pe: dict[int, float] = {}
    for op_id, op in design.ops.items():
        pe_index = remapped.pe_of.get(op_id)
        if pe_index is None:
            cert.violations.append(
                Violation(
                    kind=KIND_UNASSIGNED,
                    subject=f"op{op_id}",
                    detail="op has no PE binding in the remapped floorplan",
                )
            )
            continue
        if not 0 <= pe_index < num_pes:
            cert.violations.append(
                Violation(
                    kind=KIND_BOUNDS,
                    subject=f"op{op_id}",
                    detail=f"bound to PE {pe_index} outside [0, {num_pes})",
                )
            )
            continue
        context = remapped.context_of.get(op_id)
        if context != op.context:
            cert.violations.append(
                Violation(
                    kind=KIND_SCHEDULE,
                    subject=f"op{op_id}",
                    detail=(
                        f"scheduled in context {op.context} but floorplan "
                        f"records context {context}"
                    ),
                )
            )
        slot = (op.context, pe_index)
        other = occupants.get(slot)
        if other is not None:
            cert.violations.append(
                Violation(
                    kind=KIND_SLOT,
                    subject=f"c{op.context},pe{pe_index}",
                    detail=f"ops {other} and {op_id} share the slot",
                    tags={
                        "family": "exclusivity",
                        "context": op.context,
                        "pe": pe_index,
                    },
                )
            )
        else:
            occupants[slot] = op_id
        stress_by_pe[pe_index] = stress_by_pe.get(pe_index, 0.0) + op.stress_ns
    cert.checks.append(
        f"binding/slot/schedule over {len(design.ops)} ops, {num_pes} PEs"
    )

    if frozen_positions:
        for op_id, pe_index in frozen_positions.items():
            actual = remapped.pe_of.get(op_id)
            if actual != pe_index:
                cert.violations.append(
                    Violation(
                        kind=KIND_FROZEN,
                        subject=f"op{op_id}",
                        detail=(
                            f"frozen critical-path op moved: pinned to PE "
                            f"{pe_index}, found on PE {actual}"
                        ),
                    )
                )
        cert.checks.append(f"frozen pinning over {len(frozen_positions)} ops")

    if st_target_ns is not None:
        for pe_index in sorted(stress_by_pe):
            accumulated = stress_by_pe[pe_index]
            if accumulated > st_target_ns + stress_tol_ns:
                cert.violations.append(
                    Violation(
                        kind=KIND_STRESS,
                        subject=f"pe{pe_index}",
                        detail=(
                            f"accumulated stress {accumulated:.6f} ns exceeds "
                            f"ST_target {st_target_ns:.6f} ns"
                        ),
                        magnitude=accumulated - st_target_ns,
                        tags={"family": "stress", "pe": pe_index},
                    )
                )
        cert.checks.append(
            f"stress budget <= {st_target_ns:.6f} ns over {len(stress_by_pe)} PEs"
        )

    if baseline_cpd_ns is not None:
        # Full independent STA on the remapped netlist — the paper's
        # unconditional no-delay-degradation guarantee.
        from repro.timing.sta import analyze

        report = analyze(design, remapped, graphs)
        if report.cpd_ns > baseline_cpd_ns + CPD_EPS:
            cert.violations.append(
                Violation(
                    kind=KIND_CPD,
                    subject="cpd",
                    detail=(
                        f"remapped CPD {report.cpd_ns:.6f} ns exceeds baseline "
                        f"{baseline_cpd_ns:.6f} ns"
                    ),
                    magnitude=report.cpd_ns - baseline_cpd_ns,
                )
            )
        cert.checks.append(
            f"STA CPD {report.cpd_ns:.6f} ns <= baseline {baseline_cpd_ns:.6f} ns"
        )
    return cert


def certify_remap(
    design,
    remapped,
    frozen_positions,
    st_target_ns: float,
    baseline_cpd_ns: float,
    model=None,
    solution=None,
    graphs=None,
) -> Certificate:
    """Full trust-but-verify pass on one accepted Algorithm 1 iteration.

    Domain invariants always run; the row-by-row solution re-check runs
    when the accepting solve produced a backend :class:`Solution` (greedy
    completions and sequential decompositions legitimately have none).
    Emits ``certification.checked`` / ``certification.failed`` events and
    counters either way.
    """
    cert = certify_floorplan(
        design,
        remapped,
        frozen_positions=frozen_positions,
        st_target_ns=st_target_ns,
        baseline_cpd_ns=baseline_cpd_ns,
        graphs=graphs,
    )
    if model is not None and solution is not None:
        cert.merge(certify_solution(model, solution))
    counter("verify.certifications").inc()
    if cert.ok:
        event(
            "certification.checked",
            benchmark=design.name,
            checks=len(cert.checks),
        )
    else:
        counter("verify.cert_failures").inc()
        event(
            "certification.failed",
            benchmark=design.name,
            violations=[v.to_dict() for v in cert.violations[:8]],
        )
        _log.warning(
            "%s: certification failed with %d violation(s): %s",
            design.name,
            len(cert.violations),
            "; ".join(
                f"{v.kind}[{v.subject}]" for v in cert.violations[:5]
            ),
        )
    return cert
