"""Vectorized row audit for :func:`repro.verify.certify_solution`.

The verify side re-checks every constraint row against the *live*
``Constraint`` objects — deliberately sharing nothing with the
structure-cached :meth:`repro.milp.model.Model.compile` lowering it
audits.  That independence is preserved here: this module lowers the
live constraints itself into a second, verify-owned CSR form (cached on
the model's structure revision), and evaluates all row activities with
one sparse mat-vec.

Bit-identity: scipy's CSR mat-vec accumulates each row sequentially in
storage order, and this lowering stores each row's coefficients in the
constraint's ``lhs.terms`` dict order without sorting column indices —
exactly the scalar path's term-by-term ordered accumulation (the scalar
path uses an explicitly ordered sum for the same reason; see
``_ordered_dot`` in ``repro.verify.certifier``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.kernels import kernel_timer, note_lowering

_LOWERING_ATTR = "_kernels_verify_lowering"
_RHS_ATTR = "_kernels_verify_rhs"

#: Sense codes of ``sense_code`` (row order matches model.constraints).
SENSE_LE, SENSE_GE, SENSE_EQ = 0, 1, 2
_SENSE_CODES = {"<=": SENSE_LE, ">=": SENSE_GE, "==": SENSE_EQ}


@dataclass
class VerifyLowering:
    """Verify-side CSR of a model's live constraints.

    ``matrix`` keeps per-row storage in ``lhs.terms`` order (indices
    deliberately unsorted) so its mat-vec accumulates like the scalar
    term loop.  The RHS vector is *not* cached here — it changes on
    parameter restamps and is cached separately on the
    ``(structure_rev, restamp_rev)`` pair (see :func:`rhs_vector`).
    """

    matrix: sparse.csr_matrix
    sense_code: np.ndarray  # (rows,) SENSE_LE / SENSE_GE / SENSE_EQ
    num_variables: int
    structure_rev: int


def lower_model(model) -> VerifyLowering:
    """The (cached) verify-side CSR lowering of a model's constraints."""
    cached: VerifyLowering | None = getattr(model, _LOWERING_ATTR, None)
    if cached is not None and (
        cached.structure_rev == model._structure_rev
        and cached.num_variables == model.num_variables
    ):
        note_lowering("certify", hit=True)
        return cached
    note_lowering("certify", hit=False)
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    senses: list[int] = []
    for constraint in model.constraints:
        for var, coeff in constraint.lhs.terms.items():
            data.append(float(coeff))
            indices.append(var.index)
        indptr.append(len(data))
        senses.append(_SENSE_CODES[constraint.sense.value])
    matrix = sparse.csr_matrix(
        (
            np.asarray(data, dtype=float),
            np.asarray(indices, dtype=np.int64),
            np.asarray(indptr, dtype=np.int64),
        ),
        shape=(model.num_constraints, max(model.num_variables, 1)),
    )
    lowering = VerifyLowering(
        matrix=matrix,
        sense_code=np.asarray(senses, dtype=np.int8),
        num_variables=model.num_variables,
        structure_rev=model._structure_rev,
    )
    try:
        setattr(model, _LOWERING_ATTR, lowering)
    except AttributeError:  # pragma: no cover
        pass
    return lowering


def rhs_vector(model) -> np.ndarray:
    """The rows' current RHS values, cached on (structure, restamp) revs."""
    key = (model._structure_rev, model._restamp_rev)
    cached = getattr(model, _RHS_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    rows = model.row_metadata()
    rhs = np.fromiter((meta.rhs for meta in rows), dtype=float, count=len(rows))
    try:
        setattr(model, _RHS_ATTR, (key, rhs))
    except AttributeError:  # pragma: no cover
        pass
    return rhs


def audit_rows(
    model, resolved: dict, abs_tol: float, rel_tol: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(activities, excess, violated_row_indices)`` for every row.

    ``resolved`` maps :class:`~repro.milp.expr.Variable` objects to
    floats; variables absent from it contribute 0.0, matching the scalar
    path's ``resolved.get(v, 0.0)``.  ``excess`` is the per-row
    violation amount under the row's sense; ``violated_row_indices``
    flags rows whose excess exceeds the scalar path's
    ``abs_tol + rel_tol * max(1, |activity|, |rhs|)`` tolerance, in row
    order.
    """
    lowering = lower_model(model)
    with kernel_timer("certify"):
        x = np.zeros(lowering.matrix.shape[1], dtype=float)
        for var, value in resolved.items():
            x[var.index] = value
        activities = np.asarray(lowering.matrix.dot(x), dtype=float)
        rhs = rhs_vector(model)
        diff = activities - rhs
        excess = np.where(
            lowering.sense_code == SENSE_LE,
            diff,
            np.where(lowering.sense_code == SENSE_GE, -diff, np.abs(diff)),
        )
        scale = np.maximum(1.0, np.maximum(np.abs(activities), np.abs(rhs)))
        tol = abs_tol + rel_tol * scale
        violated = np.flatnonzero(excess > tol)
        return activities, excess, violated
