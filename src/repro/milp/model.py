"""The :class:`Model` container of the MILP modelling layer.

A model owns variables, constraints and an (optional) objective.  The
paper's formulation (3) is a *feasibility* MILP — ``ObjFunc: Null`` — so the
objective defaults to nothing; solvers then search for any feasible point.

Models compile themselves to a sparse matrix form
(:meth:`Model.to_matrix_form`) consumed by the scipy/HiGHS backend, and
support the transformations the paper's two-step method needs:

* :meth:`relaxed` — the LP relaxation (all discrete variables made
  continuous on the same bounds), used in Step 1 / the first half of the
  two-step solve;
* :meth:`fix_variable` — pin a variable to a value (used to pre-map
  assignment variables whose LP value exceeds the 0.95 threshold, and to
  freeze critical-path operations onto their original PEs), undone in
  bulk by :meth:`unfix_all` when a model is reused across solves;
* :meth:`compile` — the incremental-compilation path: the structural
  lowering (A matrix, senses, objective) is cached on a revision counter
  and shared with LP relaxations, and constraints registered against a
  named *parameter* (Algorithm 1's per-PE ``ST_target`` budget) re-stamp
  their RHS in O(rows) via :meth:`set_parameter` without re-traversing
  any expression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.errors import ModelError, WarmStartError
from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import LinExpr, Variable, VarType
from repro.milp.status import Solution
from repro.obs import counter

#: Tolerance used when validating a warm-start hint against a model.
HINT_TOL = 1e-6


@dataclass(frozen=True)
class RowMeta:
    """Identity of one constraint row, for human-readable audit messages.

    ``rhs`` is sampled at call time, so restamped parameter rows report
    their *current* right-hand side.  ``tags`` carries the constraint's
    domain metadata (family, PE coordinates, op/context ids — see
    :mod:`repro.core.constraints`) so diagnostics can speak in problem
    terms.  Row *identity* (index/name/sense/tags) is stable across
    restamps; only ``rhs`` moves.
    """

    index: int
    name: str
    sense: str
    rhs: float
    tags: Mapping[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """``name sense rhs`` plus a compact domain-tag suffix."""
        head = f"{self.name} {self.sense} {self.rhs:g}"
        if not self.tags:
            return head
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        return f"{head}  [{parts}]"


@dataclass
class MatrixForm:
    """Sparse standard form of a model.

    ``A x (sense) b`` row-wise, with per-column bounds and integrality
    markers.  ``senses`` holds one :class:`Sense` per row.
    """

    variables: list[Variable]
    a_matrix: sparse.csr_matrix
    senses: list[Sense]
    rhs: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # 1 where the column must be integral, else 0
    objective: np.ndarray
    #: Lazily-built derived views, cached per form because branch-and-bound
    #: re-reads them at every node of a search over the same form.
    _row_bounds: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _ub_eq: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(lower, upper)`` activity bounds from senses + rhs.

        LE rows bound above, GE rows below, EQ rows both.  Callers must
        treat the returned arrays as read-only (they are cached).
        """
        if self._row_bounds is None:
            m = len(self.senses)
            lower = np.full(m, -np.inf)
            upper = np.full(m, np.inf)
            for row, sense in enumerate(self.senses):
                if sense is Sense.LE:
                    upper[row] = self.rhs[row]
                elif sense is Sense.GE:
                    lower[row] = self.rhs[row]
                else:
                    lower[row] = upper[row] = self.rhs[row]
            self._row_bounds = (lower, upper)
        return self._row_bounds

    def ub_eq_split(self):
        """``(A_ub, b_ub, A_eq, b_eq)`` for linprog-style solvers.

        GE rows are negated into the A_ub block, preserving the original
        row order (LE and GE rows stay interleaved — row permutations
        steer HiGHS to different vertices among degenerate LP optima,
        which would change downstream rounding decisions).  Each block is
        ``None`` when empty; arrays are cached and must be treated as
        read-only.
        """
        if self._ub_eq is None:
            ge = np.array([s is Sense.GE for s in self.senses], dtype=bool)
            eq = np.array([s is Sense.EQ for s in self.senses], dtype=bool)
            a_csr = self.a_matrix.tocsr()
            a_ub = b_ub = a_eq = b_eq = None
            ub_mask = ~eq
            if ub_mask.any():
                a_ub = a_csr[ub_mask].copy()
                scale = np.where(ge[ub_mask], -1.0, 1.0)
                a_ub.data *= np.repeat(scale, np.diff(a_ub.indptr))
                b_ub = self.rhs[ub_mask] * scale
            if eq.any():
                a_eq = a_csr[eq]
                b_eq = self.rhs[eq]
            self._ub_eq = (a_ub, b_ub, a_eq, b_eq)
        return self._ub_eq


def hint_vector(
    form: MatrixForm, values, tol: float = HINT_TOL
) -> np.ndarray | None:
    """Validate a warm-start hint against ``form``.

    ``values`` is either a ``{Variable: value}`` mapping or an
    already-dense sequence in ``form.variables`` order.  Returns the dense
    solution vector (discrete entries snapped to integers) when the hint
    covers every column and satisfies bounds, integrality and all row
    constraints within ``tol``; ``None`` when the hint is *stale* or
    infeasible — callers then fall back to a cold solve.

    A *malformed* hint — non-finite entries (NaN/inf), or a dense hint of
    the wrong length — raises :class:`~repro.errors.WarmStartError`
    instead: NaN compares false against every bound, so without the
    explicit check a poisoned hint would sail through validation and
    reach the backends.
    """
    n = len(form.variables)
    if isinstance(values, Mapping):
        x = np.empty(n, dtype=float)
        for i, var in enumerate(form.variables):
            value = values.get(var)
            if value is None:
                return None
            x[i] = value
    else:
        x = np.asarray(values, dtype=float).ravel()
        if x.shape[0] != n:
            raise WarmStartError(
                f"warm-start hint has {x.shape[0]} entries; model has "
                f"{n} variables"
            )
        x = x.copy()
    if not np.all(np.isfinite(x)):
        bad = int(np.flatnonzero(~np.isfinite(x))[0])
        raise WarmStartError(
            f"warm-start hint contains non-finite value {x[bad]!r} for "
            f"variable {form.variables[bad].name!r}"
        )
    discrete = np.flatnonzero(form.integrality)
    if discrete.size:
        snapped = np.round(x[discrete])
        if np.max(np.abs(x[discrete] - snapped), initial=0.0) > 1e-4:
            return None
        x[discrete] = snapped
    if np.any(x < form.lower - tol) or np.any(x > form.upper + tol):
        return None
    if form.a_matrix.shape[0]:
        activity = form.a_matrix @ x
        lower, upper = form.row_bounds()
        if np.any(activity < lower - tol) or np.any(activity > upper + tol):
            return None
    return x


class CompiledModel:
    """The structural lowering of a :class:`Model`, reusable across solves.

    Everything that requires traversing Python expression objects — the
    sparse A matrix, row senses, the parameter row maps and the objective
    vector — is computed once here.  :meth:`matrix_form` then assembles a
    fresh :class:`MatrixForm` per call in O(rows + cols): variable bounds
    and integrality are re-read from the (shared) ``Variable`` objects, so
    ``fix_variable``/``unfix_all`` and :meth:`Model.relaxed` compose with
    the cache, and parameterized RHS entries are re-stamped from the
    model's current parameter values.
    """

    __slots__ = (
        "variables", "a_matrix", "senses", "rhs_base", "param_rows",
        "objective", "parameters", "structure_rev",
    )

    def __init__(
        self,
        variables: Sequence[Variable],
        a_matrix: sparse.csr_matrix,
        senses: Sequence[Sense],
        rhs_base: np.ndarray,
        param_rows: dict[str, tuple[np.ndarray, np.ndarray]],
        objective: np.ndarray,
        parameters: Mapping[str, float],
        structure_rev: int,
    ) -> None:
        self.variables = list(variables)
        self.a_matrix = a_matrix
        self.senses = list(senses)
        #: RHS with every parameter's contribution removed.
        self.rhs_base = rhs_base
        #: ``{parameter: (row_indices, coefficients)}``.
        self.param_rows = param_rows
        self.objective = objective
        #: Live reference to the owning model's parameter values.
        self.parameters = parameters
        self.structure_rev = structure_rev

    def stamp_rhs(self) -> np.ndarray:
        """RHS vector at the current parameter values (O(rows))."""
        rhs = self.rhs_base.copy()
        for name, (rows, coeffs) in self.param_rows.items():
            rhs[rows] += coeffs * self.parameters[name]
        return rhs

    def matrix_form(self) -> MatrixForm:
        """A fresh :class:`MatrixForm` at current bounds/types/parameters."""
        n = len(self.variables)
        lower = np.fromiter((v.lb for v in self.variables), float, count=n)
        upper = np.fromiter((v.ub for v in self.variables), float, count=n)
        integrality = np.fromiter(
            (0 if v.vtype is VarType.CONTINUOUS else 1 for v in self.variables),
            np.int8, count=n,
        )
        return MatrixForm(
            variables=list(self.variables),
            a_matrix=self.a_matrix,
            senses=list(self.senses),
            rhs=self.stamp_rhs(),
            lower=lower,
            upper=upper,
            integrality=integrality,
            objective=self.objective,
        )


class _CompileCache:
    """Mutable cache box shared between a model and its LP relaxations."""

    __slots__ = ("compiled",)

    def __init__(self) -> None:
        self.compiled: CompiledModel | None = None


class Model:
    """A mixed-integer linear program under construction.

    Parameters
    ----------
    name:
        Used in diagnostics only.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr.constant_expr(0.0)
        self._minimize = True
        self._fixed: dict[Variable, float] = {}
        #: Original (pre-fix) bounds of every currently-fixed variable,
        #: restored by :meth:`unfix_all`.
        self._fixed_bounds: dict[Variable, tuple[float, float]] = {}
        #: Named RHS parameters: current values and the constraints bound
        #: to each (``{name: [(constraint_list_index, coefficient), ...]}``).
        self._parameters: dict[str, float] = {}
        #: per parameter: ``[(constraint_index, coeff, absolute_rhs_base)]``
        self._param_rows: dict[str, list[tuple[int, float, float]]] = {}
        #: Bumped whenever the *structure* (variables, constraints,
        #: objective) changes; parameter re-stamps and bound changes do
        #: not count, so they reuse the compiled lowering.
        self._structure_rev = 0
        #: Bumped on every effective :meth:`set_parameter` re-stamp; with
        #: ``_structure_rev`` it keys the :meth:`row_metadata` cache.
        self._restamp_rev = 0
        self._row_meta_cache: tuple[int, int, tuple[RowMeta, ...]] | None = None
        self._compile_cache = _CompileCache()

    # -- variables -----------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable."""
        var = Variable(name, lb=lb, ub=ub, vtype=vtype)
        var.index = len(self._variables)
        self._variables.append(var)
        self._structure_rev += 1
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a {0, 1} variable (the ``OP_ijk`` variables of Eq. 3)."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_continuous(self, name: str, lb: float = 0.0, ub: float = math.inf) -> Variable:
        """Create a continuous variable (the auxiliary distance variables)."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def adopt_variable(self, var: Variable) -> Variable:
        """Register an externally constructed variable with this model."""
        if var.index is not None and var.index < len(self._variables) and (
            self._variables[var.index] is var
        ):
            return var
        var.index = len(self._variables)
        self._variables.append(var)
        self._structure_rev += 1
        return var

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_binary(self) -> int:
        return sum(1 for v in self._variables if v.vtype is VarType.BINARY)

    # -- constraints -----------------------------------------------------------
    def add_constraint(
        self,
        constraint: Constraint,
        name: str = "",
        parameter: str | None = None,
        parameter_coeff: float = 1.0,
        tags: Mapping[str, object] | None = None,
    ) -> Constraint:
        """Register a constraint (built with <=, >=, == on expressions).

        ``parameter`` binds the constraint's RHS to a named parameter
        previously declared via :meth:`declare_parameter`: the effective
        RHS becomes ``base + parameter_coeff * value`` where ``base`` is
        derived from the RHS at registration time and the parameter's
        current value.  :meth:`set_parameter` then re-stamps every bound
        row in O(rows) without touching the compiled lowering.

        ``tags`` attaches domain metadata to the constraint, surfaced in
        :meth:`row_metadata` for diagnostics (IIS membership, binding-row
        attribution, certification failures).
        """
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "expected a Constraint; did you compare two numbers instead of "
                "expressions?"
            )
        if name:
            constraint.name = name
        if tags:
            constraint.tags = dict(tags)
        if constraint.is_trivial():
            if not constraint.trivially_satisfied():
                raise ModelError(
                    f"constraint {constraint.name or constraint!r} is trivially "
                    "infeasible"
                )
            return constraint  # satisfied constants need not be stored
        for var in constraint.lhs.variables():
            self._check_owned(var)
        if parameter is not None:
            if parameter not in self._parameters:
                raise ModelError(
                    f"parameter {parameter!r} is not declared on model "
                    f"{self.name!r}"
                )
            coeff = float(parameter_coeff)
            # Absolute base: the RHS with the parameter's current
            # contribution removed.  Stamping is then ``base + coeff*v``
            # — history-free, so any restamp sequence lands on the same
            # bits as a fresh build at ``v`` (exact whenever the RHS is
            # the bare parameter, within 1 ULP otherwise).
            self._param_rows[parameter].append(
                (
                    len(self._constraints),
                    coeff,
                    constraint.rhs - coeff * self._parameters[parameter],
                )
            )
        self._constraints.append(constraint)
        self._structure_rev += 1
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Register several constraints."""
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def row_metadata(self) -> tuple[RowMeta, ...]:
        """Per-row identity (index, name, sense, current RHS).

        Derived from the *live* constraint objects — deliberately not from
        the compiled lowering — so :mod:`repro.verify` can label the rows
        it re-checks without touching the cache it is auditing.  Unnamed
        rows get a positional ``row[i]`` label.

        The tuple is cached against the structure and re-stamp revisions:
        per-solve diagnostics (attribution runs after every feasible
        solve) reuse it for free across warm re-solves.
        """
        cache = self._row_meta_cache
        if cache is not None and cache[:2] == (self._structure_rev, self._restamp_rev):
            return cache[2]
        metas = tuple(
            RowMeta(
                index=i,
                name=constraint.name or f"row[{i}]",
                sense=constraint.sense.value,
                rhs=constraint.rhs,
                tags=constraint.tags,
            )
            for i, constraint in enumerate(self._constraints)
        )
        self._row_meta_cache = (self._structure_rev, self._restamp_rev, metas)
        return metas

    def _check_owned(self, var: Variable) -> None:
        idx = var.index
        if idx is None or idx >= len(self._variables) or self._variables[idx] is not var:
            raise ModelError(
                f"variable {var.name!r} does not belong to model {self.name!r}"
            )

    # -- parameters -------------------------------------------------------------
    def declare_parameter(self, name: str, value: float) -> None:
        """Declare a named RHS parameter with its initial value.

        Constraints registered with ``add_constraint(..., parameter=name)``
        track the parameter; :meth:`set_parameter` later re-stamps them.
        Re-declaring an existing parameter just updates its value.
        """
        if name in self._parameters:
            self.set_parameter(name, value)
            return
        self._parameters[name] = float(value)
        self._param_rows[name] = []

    def parameter(self, name: str) -> float:
        """Current value of a declared parameter."""
        try:
            return self._parameters[name]
        except KeyError:
            raise ModelError(
                f"parameter {name!r} is not declared on model {self.name!r}"
            ) from None

    @property
    def parameters(self) -> dict[str, float]:
        return dict(self._parameters)

    def set_parameter(self, name: str, value: float) -> None:
        """Re-stamp every constraint bound to parameter ``name``.

        O(bound rows): only the stored constraints' constant terms move
        (keeping :meth:`check_solution` consistent); the compiled lowering
        and every expression object are untouched.
        """
        if name not in self._parameters:
            raise ModelError(
                f"parameter {name!r} is not declared on model {self.name!r}"
            )
        value = float(value)
        if value != self._parameters[name]:
            for index, coeff, base in self._param_rows[name]:
                # rhs = -lhs.constant; stamp the absolute RHS so repeated
                # restamps never accumulate rounding.
                self._constraints[index].lhs.constant = -(base + coeff * value)
            self._parameters[name] = value
            self._restamp_rev += 1
        counter("milp.rhs_restamps").inc()

    # -- objective --------------------------------------------------------------
    def set_objective(self, expr: LinExpr | Variable | float, minimize: bool = True) -> None:
        """Set the objective.  The paper's Eq. (3) leaves this Null."""
        if isinstance(expr, Variable):
            expr = LinExpr.from_term(expr)
        elif isinstance(expr, (int, float)):
            expr = LinExpr.constant_expr(expr)
        for var in expr.variables():
            self._check_owned(var)
        self._objective = expr
        self._minimize = minimize
        self._structure_rev += 1

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def minimize(self) -> bool:
        return self._minimize

    def has_objective(self) -> bool:
        """Whether a non-constant objective was set (else: feasibility model)."""
        return not self._objective.is_constant()

    # -- transformations ----------------------------------------------------------
    def fix_variable(self, var: Variable, value: float) -> None:
        """Pin ``var`` to ``value`` by collapsing its bounds.

        Used for the paper's pre-mapping step (LP values > 0.95 become 1)
        and for freezing critical-path operations.
        """
        self._check_owned(var)
        if value < var.lb - 1e-9 or value > var.ub + 1e-9:
            raise ModelError(
                f"cannot fix {var.name!r} to {value}: outside bounds "
                f"[{var.lb}, {var.ub}]"
            )
        if var.vtype is not VarType.CONTINUOUS and abs(value - round(value)) > 1e-9:
            raise ModelError(f"cannot fix discrete {var.name!r} to fractional {value}")
        if var not in self._fixed_bounds:
            self._fixed_bounds[var] = (var.lb, var.ub)
        var.lb = var.ub = float(value)
        self._fixed[var] = float(value)

    def unfix_all(self) -> None:
        """Restore the original bounds of every fixed variable.

        Lets one compiled model be reused across Algorithm 1 iterations:
        the two-step method's pre-mapping fixes collapse bounds, and this
        reopens them before the next ``ST_target`` re-stamp.  Bounds are
        read fresh at every :meth:`to_matrix_form`, so no recompilation.
        """
        for var, (lb, ub) in self._fixed_bounds.items():
            var.lb, var.ub = lb, ub
        self._fixed_bounds.clear()
        self._fixed.clear()

    @property
    def fixed_variables(self) -> dict[Variable, float]:
        return dict(self._fixed)

    def relaxed(self) -> "Model":
        """Return the LP relaxation sharing this model's Variable objects.

        Discrete domains become continuous with identical bounds.  Because
        Variable objects are shared, solutions of the relaxation index
        directly into the original variables; the relaxation records the
        original types so :meth:`restore_types` can undo it.
        """
        relaxation = Model(f"{self.name}.lp_relaxation")
        relaxation._variables = self._variables
        relaxation._constraints = self._constraints
        relaxation._objective = self._objective
        relaxation._minimize = self._minimize
        relaxation._fixed = dict(self._fixed)
        relaxation._fixed_bounds = dict(self._fixed_bounds)
        # Share the parameter store and compiled lowering: the relaxation
        # differs only in variable *types*, which the compiled path reads
        # fresh on every matrix_form() call.
        relaxation._parameters = self._parameters
        relaxation._param_rows = self._param_rows
        relaxation._structure_rev = self._structure_rev
        relaxation._compile_cache = self._compile_cache
        relaxation._saved_types = {  # type: ignore[attr-defined]
            v: v.vtype for v in self._variables if v.vtype is not VarType.CONTINUOUS
        }
        for var in relaxation._saved_types:  # type: ignore[attr-defined]
            var.vtype = VarType.CONTINUOUS
        return relaxation

    def restore_types(self) -> None:
        """Undo a :meth:`relaxed` transformation (no-op on a base model)."""
        saved = getattr(self, "_saved_types", None)
        if saved:
            for var, vtype in saved.items():
                var.vtype = vtype
            saved.clear()

    # -- compilation ------------------------------------------------------------
    def compile(self) -> CompiledModel:
        """Structural lowering, cached on the model's structure revision.

        The cache is shared with LP relaxations (:meth:`relaxed`), so the
        two-step method's LP and residual-ILP solves lower the expression
        tree exactly once.  Adding variables/constraints or changing the
        objective invalidates it; bound changes and parameter re-stamps
        do not.
        """
        cache = self._compile_cache
        if (
            cache.compiled is None
            or cache.compiled.structure_rev != self._structure_rev
        ):
            cache.compiled = self._lower()
            counter("milp.lowerings").inc()
        else:
            counter("milp.lowering_cache_hits").inc()
        return cache.compiled

    def _lower(self) -> CompiledModel:
        """Vectorized one-pass lowering of the expression tree."""
        constraints = self._constraints
        m = len(constraints)
        n = len(self._variables)
        term_maps = [c.lhs.terms for c in constraints]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(t) for t in term_maps), np.int64, count=m),
            out=indptr[1:],
        )
        nnz = int(indptr[-1]) if m else 0
        cols = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        pos = 0
        for terms in term_maps:
            k = len(terms)
            cols[pos:pos + k] = [var.index for var in terms]
            data[pos:pos + k] = list(terms.values())
            pos += k
        a_matrix = sparse.csr_matrix((data, cols, indptr), shape=(m, n))
        a_matrix.eliminate_zeros()  # terms like (x - x) may carry 0.0 coeffs
        a_matrix.sort_indices()
        rhs = np.fromiter((c.rhs for c in constraints), float, count=m)
        # Parameterized rows carry the registration-time absolute base, so
        # the compiled stamp ``base + coeff*value`` is bit-identical to
        # :meth:`set_parameter`'s live-constraint stamp.
        param_rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, bound in self._param_rows.items():
            if not bound:
                continue
            rows_arr = np.fromiter((r for r, _, _ in bound), np.int64, count=len(bound))
            coeffs_arr = np.fromiter((c for _, c, _ in bound), float, count=len(bound))
            rhs[rows_arr] = np.fromiter((b for _, _, b in bound), float, count=len(bound))
            param_rows[name] = (rows_arr, coeffs_arr)
        objective = np.zeros(n, dtype=float)
        for var, coeff in self._objective.terms.items():
            objective[var.index] = coeff  # type: ignore[index]
        if not self._minimize:
            objective = -objective
        return CompiledModel(
            variables=self._variables,
            a_matrix=a_matrix,
            senses=[c.sense for c in constraints],
            rhs_base=rhs,
            param_rows=param_rows,
            objective=objective,
            parameters=self._parameters,
            structure_rev=self._structure_rev,
        )

    def to_matrix_form(self) -> MatrixForm:
        """Compile to the sparse standard form consumed by backends.

        Delegates to the cached :meth:`compile` lowering; only the
        per-call pieces (bounds, integrality, parameterized RHS entries)
        are re-assembled, each in O(rows + cols).
        """
        return self.compile().matrix_form()

    # -- solving ------------------------------------------------------------------
    def solve(self, backend=None, **options) -> Solution:
        """Solve with ``backend`` (default: the scipy/HiGHS backend)."""
        if backend is None:
            from repro.milp.scipy_backend import ScipyBackend

            backend = ScipyBackend()
        solution = backend.solve(self, **options)
        if solution.status.has_solution and not self._minimize and self.has_objective():
            solution.objective = -solution.objective
        return solution

    def check_solution(self, solution: Solution, tol: float = 1e-5) -> list[Constraint]:
        """Return the constraints violated by ``solution`` (for debugging)."""
        if not solution.status.has_solution:
            raise ModelError("cannot check a solution-less result")
        return [c for c in self._constraints if not c.satisfied_by(solution.values, tol)]

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables} "
            f"(bin={self.num_binary}), cons={self.num_constraints})"
        )
