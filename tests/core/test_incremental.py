"""Incremental-solving tests for Algorithm 1's relax loop.

The Eq. (3) model must be assembled (lowered) exactly once per
Algorithm 1 run; every further relaxation iteration only re-stamps the
``st_target`` RHS parameter on the cached compiled model, optionally
warm-started from the previous iteration's pre-mapping.
"""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import Algorithm1Config, RemapConfig, WarmStart, run_algorithm1
from repro.core.remap import (
    build_remap_model,
    default_candidates,
    restamp_remap_model,
    solve_remap,
)
from repro.core.rotation import freeze_plan
from repro.core.targets import StressTargetResult
from repro.obs import CollectorSink, attached, counter
from repro.timing import all_critical_paths, analyze
from repro.timing.graph import build_timing_graphs
from repro.timing.kpaths import filter_paths


def spans_named(records, name, model=None):
    return [
        r for r in records
        if r["type"] == "span" and r["name"] == name
        and (model is None or r["attrs"].get("model") == model)
    ]


@pytest.fixture(scope="class")
def forced_relax_run(request, synth_design, synth_floorplan, fabric4):
    """Run Algorithm 1 with Step 1 pinned to a too-tight (but buildable)
    target, so the relax loop is guaranteed to execute at least twice —
    the scenario the incremental-compilation contract is about."""
    stress = compute_stress_map(synth_design, synth_floorplan)
    # Above the frozen per-PE stress (the model builds) yet below any
    # achievable levelling (the first solve is infeasible).
    target = stress.max_accumulated_ns * 0.40

    def fake_step1(*args, **kwargs):
        return StressTargetResult(
            st_target_ns=target,
            st_low_ns=stress.mean_accumulated_ns,
            st_up_ns=stress.max_accumulated_ns,
        )

    patch = pytest.MonkeyPatch()
    request.addfinalizer(patch.undo)
    patch.setattr(
        "repro.core.algorithm1.stress_target_lower_bound", fake_step1
    )
    collector = CollectorSink()
    config = Algorithm1Config(
        delta_ns=stress.max_accumulated_ns / 8.0,
        remap=RemapConfig(time_limit_s=30),
    )
    with attached(collector):
        result = run_algorithm1(
            synth_design, fabric4, synth_floorplan, config
        )
    return result, collector.records


class TestOneBuildPerRun:
    def test_forced_scenario_relaxes(self, forced_relax_run):
        result, _ = forced_relax_run
        assert result.iterations >= 2
        log = result.stats["iterations"]
        assert log[0]["result"] == "infeasible"
        assert log[-1]["result"] == "accepted"

    def test_exactly_one_model_build(self, forced_relax_run):
        _, records = forced_relax_run
        builds = spans_named(records, "milp_build", model="remap")
        assert len(builds) == 1

    def test_later_iterations_restamp(self, forced_relax_run):
        result, records = forced_relax_run
        restamps = spans_named(records, "milp_restamp", model="remap")
        assert len(restamps) == result.iterations - 1
        log = result.stats["iterations"]
        assert all(entry.get("restamped") for entry in log[1:])
        assert "restamped" not in log[0]

    def test_result_still_valid(self, forced_relax_run, synth_design):
        result, _ = forced_relax_run
        assert not result.fell_back
        report = analyze(synth_design, result.floorplan)
        assert report.cpd_ns <= result.original_cpd_ns + 1e-6


@pytest.fixture(scope="class")
def remap_inputs(synth_design, synth_floorplan, fabric4):
    """The Eq. (3) ingredients Algorithm 1 derives before its loop."""
    graphs = build_timing_graphs(synth_design)
    report = analyze(synth_design, synth_floorplan, graphs)
    critical = all_critical_paths(synth_design, synth_floorplan, graphs, report)
    by_context: dict[int, list[int]] = {}
    for path in critical:
        bucket = by_context.setdefault(path.context, [])
        for op in path.chain:
            if op not in bucket:
                bucket.append(op)
    frozen = freeze_plan(synth_floorplan, by_context)
    filtered = filter_paths(
        synth_design, synth_floorplan, graphs=graphs, report=report
    )
    config = RemapConfig(time_limit_s=30)
    candidates = default_candidates(
        synth_design, synth_floorplan, frozen, fabric4,
        config.resolved_window(fabric4),
    )
    stress = compute_stress_map(synth_design, synth_floorplan)
    return {
        "frozen": frozen,
        "candidates": candidates,
        "monitored": filtered.non_critical,
        "cpd_ns": report.cpd_ns,
        "config": config,
        "max_stress": stress.max_accumulated_ns,
    }


class TestWarmFixing:
    """Re-solving a re-stamped model re-uses the previous pre-mapping."""

    def test_warm_fixing_hit_after_restamp(
        self, remap_inputs, synth_design, fabric4
    ):
        inp = remap_inputs
        feasible_target = inp["max_stress"]
        model, variables, _ = build_remap_model(
            synth_design, fabric4, inp["frozen"], inp["candidates"],
            inp["monitored"], inp["cpd_ns"], feasible_target,
        )
        cold = solve_remap(model, variables, inp["config"])
        assert cold.feasible
        assert cold.warm is not None and cold.warm.values

        # Same model, looser target: the previous binding must still be
        # feasible, so the warm trial short-circuits the LP->ILP path.
        # (The LP's own >threshold fixing set can legitimately be empty,
        # so the hint carries the full previous assignment instead.)
        warm = WarmStart(
            fixing=dict(cold.assignment),
            values=dict(cold.warm.values),
            reason="infeasible",
        )
        restamp_remap_model(model, inp["max_stress"] * 1.1)
        hits = counter("milp.warm_fixing_hits")
        before = hits.value
        outcome = solve_remap(model, variables, inp["config"], warm=warm)
        assert outcome.feasible
        assert outcome.stats.get("warm_fixing") == len(warm.fixing)
        assert "lp_status" not in outcome.stats  # LP stage skipped
        assert hits.value == before + 1
        # The fixed groups are honoured; unfixed ops may move freely.
        for op, pe in warm.fixing.items():
            assert outcome.assignment[op] == pe

    def test_warm_fixing_miss_reopens_and_retries(
        self, remap_inputs, synth_design, fabric4
    ):
        inp = remap_inputs
        model, variables, _ = build_remap_model(
            synth_design, fabric4, inp["frozen"], inp["candidates"],
            inp["monitored"], inp["cpd_ns"], inp["max_stress"],
        )
        cold = solve_remap(model, variables, inp["config"])
        assert cold.feasible
        warm = WarmStart(
            fixing=dict(cold.assignment),
            values=dict(cold.warm.values),
            reason="infeasible",
        )
        # Tighten far below feasibility: the warm trial must miss, reopen
        # the fixes, and fall through to the (also infeasible) cold path.
        restamp_remap_model(model, inp["max_stress"] * 0.3)
        misses = counter("milp.warm_fixing_misses")
        before = misses.value
        outcome = solve_remap(model, variables, inp["config"], warm=warm)
        assert misses.value == before + 1
        assert outcome.stats.get("warm_fixing_retry") is True
        assert not outcome.feasible
        assert model.fixed_variables == {}

    def test_warm_ignored_without_infeasible_reason(
        self, remap_inputs, synth_design, fabric4
    ):
        inp = remap_inputs
        model, variables, _ = build_remap_model(
            synth_design, fabric4, inp["frozen"], inp["candidates"],
            inp["monitored"], inp["cpd_ns"], inp["max_stress"],
        )
        cold = solve_remap(model, variables, inp["config"])
        stale = WarmStart(
            fixing=dict(cold.assignment),
            values=dict(cold.warm.values),
            reason="cpd_violation",
        )
        restamp_remap_model(model, inp["max_stress"] * 1.1)
        outcome = solve_remap(model, variables, inp["config"], warm=stale)
        assert outcome.feasible
        assert "warm_fixing" not in outcome.stats
        assert "lp_status" in outcome.stats  # full two-step pipeline ran
