"""Shared fixtures: small designs, fabrics and placed floorplans.

Kept deliberately small so the full unit suite stays fast; the heavier
end-to-end configurations live in tests/test_integration.py.
"""

from __future__ import annotations

import pytest

from repro.arch import Fabric
from repro.benchgen import SyntheticSpec, generate_design
from repro.hls import compile_source, schedule_dfg, tech_map
from repro.place import place_baseline

#: A compact kernel exercising loops, arrays, if-conversion and both units.
SMALL_KERNEL = """
in int a, b;
int i;
int acc = 0;
int w[4];
for (i = 0; i < 4; i++) w[i] = (a >> i) ^ (b << i);
for (i = 0; i < 4; i++) acc += w[i] * (i + 1);
out int y;
if (acc < 0) y = -acc; else y = acc;
"""


@pytest.fixture(scope="session")
def small_dfg():
    return compile_source(SMALL_KERNEL, "small")


@pytest.fixture(scope="session")
def small_schedule(small_dfg):
    return schedule_dfg(small_dfg, capacity=16)


@pytest.fixture(scope="session")
def small_design(small_schedule):
    return tech_map(small_schedule)


@pytest.fixture(scope="session")
def fabric4():
    return Fabric(4, 4)


@pytest.fixture(scope="session")
def fabric8():
    return Fabric(8, 8)


@pytest.fixture(scope="session")
def small_floorplan(small_design, fabric4):
    return place_baseline(small_design, fabric4)


@pytest.fixture(scope="session")
def synth_spec():
    return SyntheticSpec(
        name="synthA", num_contexts=4, fabric_dim=4, total_ops=28, seed=7
    )


@pytest.fixture(scope="session")
def synth_design(synth_spec):
    return generate_design(synth_spec)


@pytest.fixture(scope="session")
def synth_floorplan(synth_design, fabric4):
    return place_baseline(synth_design, fabric4)
