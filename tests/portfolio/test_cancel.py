"""Cooperative cancellation token semantics."""

from __future__ import annotations

import contextvars
import threading

from repro.portfolio import CancelToken, cancel_scope, current_cancel_token


class TestCancelToken:
    def test_starts_live(self):
        token = CancelToken()
        assert not token.cancelled

    def test_cancel_is_idempotent(self):
        token = CancelToken()
        token.cancel()
        token.cancel()
        assert token.cancelled

    def test_wait_returns_immediately_when_cancelled(self):
        token = CancelToken()
        token.cancel()
        assert token.wait(timeout=5.0)

    def test_wait_times_out_when_live(self):
        token = CancelToken()
        assert not token.wait(timeout=0.01)

    def test_cross_thread_cancel(self):
        token = CancelToken()
        threading.Timer(0.02, token.cancel).start()
        assert token.wait(timeout=5.0)
        assert token.cancelled


class TestScope:
    def test_default_token_never_fires(self):
        token = current_cancel_token()
        assert not token.cancelled

    def test_scope_installs_and_restores(self):
        outer = current_cancel_token()
        token = CancelToken()
        with cancel_scope(token) as installed:
            assert installed is token
            assert current_cancel_token() is token
        assert current_cancel_token() is outer

    def test_scopes_nest(self):
        a, b = CancelToken(), CancelToken()
        with cancel_scope(a):
            with cancel_scope(b):
                assert current_cancel_token() is b
            assert current_cancel_token() is a

    def test_copied_context_isolates_token(self):
        """The executor's per-lane context copy: each lane sees only its
        own token, and installing one in a thread never leaks out."""
        token = CancelToken()
        seen = {}

        def lane():
            with cancel_scope(token):
                seen["inside"] = current_cancel_token()

        ctx = contextvars.copy_context()
        thread = threading.Thread(target=ctx.run, args=(lane,))
        thread.start()
        thread.join()
        assert seen["inside"] is token
        assert current_cancel_token() is not token
