"""Self-contained run reports: section assembly and both renderers.

The CI report gate asserts every rendered ``<section>`` is non-empty;
these tests pin the invariant that makes the gate sound — ``Report.add``
drops empty sections, and every builder populates its section only when
its inputs exist.
"""

from __future__ import annotations

import json

import pytest

from repro.io.serialize import design_to_dict, floorplan_to_dict
from repro.obs import summarize_records
from repro.obs.report import (
    Report,
    Section,
    build_report,
    render_html,
    render_markdown,
)


def _span(name, parent=None, duration=0.25, **attrs):
    return {
        "type": "span", "name": name,
        "path": name if parent is None else f"{parent} > {name}",
        "parent": parent, "t_s": 0.0, "duration_s": duration, "attrs": attrs,
    }


def _event(name, **attrs):
    return {
        "type": "event", "name": name, "path": name, "parent": "flow",
        "t_s": 0.0, "duration_s": 0.0, "attrs": attrs,
    }


@pytest.fixture(scope="module")
def record(small_design, small_floorplan):
    """A flow_result document assembled from the shared small fixtures."""
    return {
        "schema": 1,
        "kind": "flow_result",
        "summary": {
            "benchmark": small_design.name,
            "mttf_increase": 1.42,
            "cpd_preserved": True,
            "degradation": "none",
        },
        "design": design_to_dict(small_design),
        "original_floorplan": floorplan_to_dict(small_floorplan),
        "remapped_floorplan": floorplan_to_dict(small_floorplan),
        "algorithm1": {
            "degradation": "none",
            "certified": True,
            "st_target_ns": 3.2,
            "stats": {
                "st_low_ns": 2.0, "st_up_ns": 4.0, "delta_ns": 0.2,
                "iterations": 2, "relaxations": 1,
                "final_st_target_ns": 3.2, "solves": 4,
                "st_trajectory": [3.0, 3.2],
                "verdicts": ["infeasible", "accepted"],
            },
            "iterations": [
                {
                    "iteration": 1,
                    "lp_stats": {
                        "backend": "highs", "kind": "lp", "nodes": 0,
                        "elapsed_s": 0.01,
                        "attribution": {
                            "rows": 5, "binding": 2,
                            "families": {
                                "stress": {"rows": 3, "binding": 2,
                                           "min_slack": 0.0},
                                "path": {"rows": 2, "binding": 0,
                                         "min_slack": 0.4},
                            },
                            "top_binding": [
                                {"row": 0, "name": "stress[1]",
                                 "family": "stress", "sense": "<=",
                                 "rhs": 3.2, "slack": 0.0,
                                 "tags": {"family": "stress", "pe": 1}},
                            ],
                            "saturated_pes": [1],
                            "tight_paths": [],
                        },
                    },
                },
            ],
            "explanations": [
                {"cause": "iteration", "iteration": 1,
                 "result": "lp_infeasible", "st_target_ns": 3.0},
                {"cause": "terminal", "terminal_cause": "st_ceiling_exhausted",
                 "iis": {
                     "status": "iis", "minimal": True, "verified": True,
                     "probes": 9, "elapsed_s": 0.12,
                     "families": {"stress": 1, "assignment": 1},
                     "involves": {"pes": [1], "contexts": [0], "ops": [4]},
                     "members": [
                         {"index": 0, "name": "stress[1]", "sense": "<=",
                          "rhs": 3.2, "tags": {"family": "stress", "pe": 1}},
                         {"index": 7, "name": "assign[4]", "sense": "==",
                          "rhs": 1.0,
                          "tags": {"family": "assignment", "op": 4}},
                     ],
                 }},
            ],
            "degradation_reason": None,
        },
    }


@pytest.fixture(scope="module")
def trace_summary():
    return summarize_records([
        _span("flow", duration=1.0),
        _span("solver", parent="flow", nodes=5, kind="milp", model="remap",
              status="optimal"),
        _event("algorithm1.explain", cause="iteration", iteration=1,
               result="relaxed_st"),
    ])


class TestSectionModel:
    def test_empty_sections_are_dropped(self):
        report = Report("t")
        report.add(Section("empty", "Empty"))
        filled = Section("full", "Full")
        filled.text("content")
        report.add(filled)
        assert [s.slug for s in report.sections] == ["full"]

    def test_empty_mapping_and_table_add_no_block(self):
        section = Section("s", "S")
        section.mapping({})
        section.table(["a"], [])
        assert not section.blocks

    def test_unknown_format_rejected(self):
        report = Report("t")
        with pytest.raises(ValueError):
            report.render("pdf")


class TestBuildReport:
    def test_requires_some_artefact(self):
        with pytest.raises(ValueError):
            build_report(None, None)

    def test_record_only_report_has_core_sections(self, record):
        report = build_report(record)
        slugs = [s.slug for s in report.sections]
        for expected in (
            "overview", "convergence", "trajectory", "attribution",
            "stress", "explanations",
        ):
            assert expected in slugs
        # No trace -> no timeline section (and no empty shell of one).
        assert "timeline" not in slugs

    def test_trace_only_report(self, trace_summary):
        report = build_report(None, trace_summary)
        slugs = [s.slug for s in report.sections]
        assert "overview" in slugs and "timeline" in slugs
        assert "stress" not in slugs  # needs a record

    def test_every_section_carries_blocks(self, record, trace_summary):
        report = build_report(record, trace_summary)
        assert report.sections
        for section in report.sections:
            assert section.blocks, f"section {section.slug} is empty"

    def test_stress_section_survives_malformed_record(self, record):
        broken = dict(record)
        broken["design"] = {"kind": "mapped_design"}  # undecodable
        report = build_report(broken)
        assert "stress" not in [s.slug for s in report.sections]
        assert "overview" in [s.slug for s in report.sections]


class TestRenderers:
    def test_html_is_self_contained_and_populated(self, record, trace_summary):
        page = render_html(build_report(record, trace_summary))
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page and "<script" not in page
        assert "http://" not in page and "https://" not in page
        # Every section anchor present, none empty.
        for section in build_report(record, trace_summary).sections:
            marker = f'id="{section.slug}"'
            assert marker in page
        assert "stress[1]" in page          # IIS member name
        assert "st_ceiling_exhausted" in page

    def test_html_escapes_content(self, record):
        spiked = json.loads(json.dumps(record))
        spiked["summary"]["benchmark"] = "<script>alert(1)</script>"
        page = render_html(build_report(spiked))
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_markdown_renders_all_sections(self, record, trace_summary):
        report = build_report(record, trace_summary)
        text = render_markdown(report)
        for section in report.sections:
            assert f"## {section.title}" in text
        assert "| family |" in text or "| row |" in text

    def test_heatmap_rows_match_fabric(self, record):
        report = build_report(record)
        (stress,) = [s for s in report.sections if s.slug == "stress"]
        heatmaps = [b for b in stress.blocks if b[0] == "heatmap"]
        assert len(heatmaps) == 2  # original + re-mapped
        _, col_labels, row_labels, grid = heatmaps[0]
        num_pes = len(row_labels)
        assert all(len(r) == num_pes for r in grid)
        assert col_labels[-1] == "accumulated"
