"""Technology-mapping (MappedDesign) tests."""

from __future__ import annotations

import pytest

from repro.arch import OpKind, UnitKind
from repro.errors import HLSError
from repro.hls import DataflowGraph, MappedDesign, OpInfo, schedule_dfg, tech_map


@pytest.fixture
def design():
    g = DataflowGraph("t")
    a = g.add_input("a")
    c = g.add_const(3)
    m = g.add_node(OpKind.MUL, (a, c))
    s = g.add_node(OpKind.ADD, (m, a))
    g.add_output(s, "y")
    return tech_map(schedule_dfg(g, capacity=4))


class TestTechMap:
    def test_ops_are_compute_nodes(self, design):
        assert set(design.ops) == {2, 3}
        assert design.ops[2].unit is UnitKind.DMU
        assert design.ops[3].unit is UnitKind.ALU

    def test_stress_equals_delay(self, design):
        for op in design.ops.values():
            assert op.stress_ns == pytest.approx(op.delay_ns)

    def test_const_edges_elided(self, design):
        # The MUL's constant operand must not create a wire.
        assert all(src != 1 for src, _ in design.compute_edges)

    def test_input_and_output_edges(self, design):
        assert (0, 2) in design.input_edges  # pad 0 -> MUL
        assert (0, 3) in design.input_edges  # pad 0 -> ADD (a reused)
        assert design.output_edges == [(3, 0)]

    def test_compute_edge(self, design):
        assert (2, 3) in design.compute_edges

    def test_total_stress_invariant_quantity(self, design):
        expected = sum(op.stress_ns for op in design.ops.values())
        assert design.total_stress_ns() == pytest.approx(expected)

    def test_context_queries(self, design):
        sizes = design.context_sizes()
        assert sum(sizes) == 2
        assert design.max_context_size() == max(sizes)

    def test_producers_consumers(self, design):
        assert design.consumers_of(2) == [3]
        assert design.producers_of(3) == [2]


class TestValidation:
    def test_backward_edge_rejected(self):
        design = MappedDesign(name="bad", num_contexts=2)
        design.ops[0] = OpInfo(0, OpKind.ADD, 32, 1, UnitKind.ALU, 0.87, 0.87)
        design.ops[1] = OpInfo(1, OpKind.ADD, 32, 0, UnitKind.ALU, 0.87, 0.87)
        design.compute_edges.append((0, 1))  # context 1 -> context 0
        with pytest.raises(HLSError):
            design.validate()

    def test_unknown_edge_endpoint_rejected(self):
        design = MappedDesign(name="bad", num_contexts=1)
        design.ops[0] = OpInfo(0, OpKind.ADD, 32, 0, UnitKind.ALU, 0.87, 0.87)
        design.compute_edges.append((0, 42))
        with pytest.raises(HLSError):
            design.validate()

    def test_out_of_range_context_rejected(self):
        design = MappedDesign(name="bad", num_contexts=1)
        design.ops[0] = OpInfo(0, OpKind.ADD, 32, 5, UnitKind.ALU, 0.87, 0.87)
        with pytest.raises(HLSError):
            design.validate()

    def test_nonpositive_delay_rejected(self):
        design = MappedDesign(name="bad", num_contexts=1)
        design.ops[0] = OpInfo(0, OpKind.ADD, 32, 0, UnitKind.ALU, 0.0, 0.0)
        with pytest.raises(HLSError):
            design.validate()


class TestOnRealKernel:
    def test_small_design_consistent(self, small_design):
        small_design.validate()
        assert small_design.num_ops > 0
        assert small_design.num_contexts >= 1
        # Every context edge respects the schedule ordering.
        for src, dst in small_design.compute_edges:
            assert small_design.ops[src].context <= small_design.ops[dst].context
