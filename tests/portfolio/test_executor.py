"""The hedged racing executor: winners, lane faults, breaker wiring."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.milp import Model, ScipyBackend, SolveStatus, linear_sum
from repro.obs import counter
from repro.portfolio import PortfolioBackend
from repro.resilience.faults import fault_scope

pytest.importorskip("scipy")

#: Fast hedge for fault tests: the backup must start quickly once the
#: leader is struck, but slow enough that a healthy leader wins alone.
HEDGE_S = 0.2


def knapsack() -> Model:
    """A tiny knapsack with a unique optimum (pick x2 and x3 -> -7)."""
    model = Model("knap")
    xs = [model.add_binary(f"x{i}") for i in range(4)]
    model.add_constraint(linear_sum(xs) <= 2)
    model.set_objective(-(xs[0] + 2 * xs[1] + 3 * xs[2] + 4 * xs[3]))
    return model


def feasibility_model() -> Model:
    """Pure-feasibility (paper's ObjFunc: Null): any valid point answers."""
    model = Model("feas")
    xs = [model.add_binary(f"x{i}") for i in range(3)]
    model.add_constraint(linear_sum(xs) >= 1)
    model.add_constraint(linear_sum(xs) <= 2)
    model.set_objective(0.0)
    return model


def infeasible_model() -> Model:
    model = Model("broke")
    x = model.add_binary("x")
    model.add_constraint(x >= 2)
    model.set_objective(-x)
    return model


class TestHealthyRace:
    def test_leader_wins_and_backups_never_start(self):
        backend = PortfolioBackend(
            ("highs", "branch-bound"), hedge_delay_s=30.0
        )
        solution = backend.solve(knapsack())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats.lane == "highs"
        assert backend.winners == {"highs": 1}
        race = backend.races[-1]
        assert race["winner"] == "highs"
        by_lane = {row["lane"]: row for row in race["lanes"]}
        # The hedged backup was released (cancelled) without running.
        assert by_lane["branch-bound"]["verdict"] == "skipped"
        assert by_lane["branch-bound"]["started_s"] is None

    def test_no_fault_result_matches_serial(self):
        """The determinism contract: a healthy hedged race is
        bit-identical to a serial solve on the leader backend."""
        raced = PortfolioBackend(
            ("highs", "branch-bound"), hedge_delay_s=30.0
        ).solve(knapsack())
        serial = ScipyBackend().solve(knapsack())
        assert raced.status is serial.status
        assert raced.objective == serial.objective
        assert {v.name: x for v, x in raced.values.items()} == {
            v.name: x for v, x in serial.values.items()
        }

    def test_infeasible_leader_ends_race(self):
        backend = PortfolioBackend(
            ("highs", "branch-bound"), hedge_delay_s=30.0
        )
        solution = backend.solve(infeasible_model())
        assert solution.status is SolveStatus.INFEASIBLE
        assert backend.races[-1]["verdict"] == "infeasible"
        # A proven INFEASIBLE is a success, not a breaker charge.
        assert backend.board["highs"].failures == 0

    def test_snapshot_shape(self):
        backend = PortfolioBackend(("highs", "branch-bound"))
        backend.solve(knapsack())
        snapshot = backend.portfolio_snapshot()
        assert snapshot["solves"] == 1
        assert snapshot["lanes"] == ["highs", "branch-bound"]
        assert snapshot["winners"] == {"highs": 1}
        assert set(snapshot["breakers"]) == {"highs", "branch-bound"}
        assert len(snapshot["races"]) == 1


class TestLaneFaults:
    """Each injected lane fault strikes the leader; the backup serves."""

    def run_faulted(self, fault: str) -> PortfolioBackend:
        backend = PortfolioBackend(
            ("highs", "branch-bound"), hedge_delay_s=HEDGE_S
        )
        with fault_scope(f"{fault}@1"):
            solution = backend.solve(knapsack())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-7.0)
        assert solution.stats.lane == "branch-bound"
        return backend

    def test_lane_crash_recovers_on_backup(self):
        backend = self.run_faulted("lane_crash")
        assert backend.board["highs"].failure_kinds == {"crash": 1}

    def test_lane_hang_recovers_on_backup(self):
        backend = self.run_faulted("lane_hang")
        assert backend.board["highs"].failure_kinds == {"hang": 1}

    def test_lane_wrong_answer_is_gated_out(self):
        rejected = counter("portfolio.lane_rejected")
        before = rejected.value
        backend = self.run_faulted("lane_wrong_answer")
        assert backend.board["highs"].failure_kinds == {"rejected": 1}
        assert rejected.value == before + 1

    def test_persistent_fault_demotes_leader(self):
        """Crashing every solve trips the breaker: the configured leader
        is demoted to hedged and the backup takes the leader slot, so
        later solves stop paying the crash at all."""
        backend = PortfolioBackend(
            ("highs", "branch-bound"), hedge_delay_s=HEDGE_S
        )
        with fault_scope("lane_crash"):
            for _ in range(4):
                solution = backend.solve(knapsack())
                assert solution.status is SolveStatus.OPTIMAL
        highs = backend.board["highs"]
        assert highs.state in ("hedged", "open")
        assert any(dst == "hedged" for _, _, dst, _ in highs.transitions)
        assert backend.winners.get("branch-bound", 0) >= 1
        # Post-demotion the healthy lane leads; the faulty one either
        # loses its races or (leader fast inside the hedge) sits out.
        assert backend.winners.get("highs", 0) == 0

    def test_all_lanes_failed_raises(self):
        backend = PortfolioBackend(("highs",), hedge_delay_s=HEDGE_S)
        with fault_scope("lane_crash@1"):
            with pytest.raises(SolverError, match="all portfolio lanes"):
                backend.solve(knapsack())
        assert backend.board["highs"].failure_kinds == {"crash": 1}


class TestProberLane:
    def test_prober_skips_objective_models(self):
        backend = PortfolioBackend(
            ("highs", "prober"), hedge_delay_s=30.0
        )
        backend.solve(knapsack())
        lanes = {row["lane"] for row in backend.races[-1]["lanes"]}
        assert lanes == {"highs"}

    def test_prober_answers_feasibility_models(self):
        backend = PortfolioBackend(("prober",))
        solution = backend.solve(feasibility_model())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats.lane == "prober"
        total = sum(solution.values.values())
        assert 1.0 - 1e-9 <= total <= 2.0 + 1e-9

    def test_prober_proves_infeasibility(self):
        backend = PortfolioBackend(("prober",))
        model = infeasible_model()
        model.set_objective(0.0)
        solution = backend.solve(model)
        assert solution.status is SolveStatus.INFEASIBLE

    def test_no_applicable_lane_rejected(self):
        backend = PortfolioBackend(("prober",))
        with pytest.raises(SolverError, match="applicable"):
            backend.solve(knapsack())


class TestZeroVariableModels:
    """Every op frozen => the remap model has no variables at all.

    Algorithm 1's last rotate iteration really produces this; the race
    must treat the empty assignment as a valid certified answer, not as
    lanes failing to return values (the bug that broke `--portfolio` on
    fir8).
    """

    def test_race_accepts_empty_model(self):
        backend = PortfolioBackend(hedge_delay_s=30.0)
        solution = backend.solve(Model("all_frozen"))
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.values == {}
        race = backend.races[-1]
        assert race["winner"] == "highs"
        assert race["verdict"] == "won"
        for board in (backend.board["highs"], backend.board["branch-bound"]):
            assert board.failures == 0

    def test_prober_answers_empty_model_inline(self):
        backend = PortfolioBackend(("prober",))
        solution = backend.solve(Model("all_frozen"))
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.values == {}
        assert solution.stats.lane == "prober"

    def test_prober_proves_fixed_variable_infeasibility(self):
        model = Model("all_frozen_bad")
        x = model.add_binary("x")
        model.add_constraint(linear_sum([x]) >= 2)
        model.fix_variable(x, 0.0)
        backend = PortfolioBackend(("prober",))
        solution = backend.solve(model)
        assert solution.status is SolveStatus.INFEASIBLE


class TestConstruction:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(SolverError):
            PortfolioBackend(())

    def test_unknown_lane_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="unknown portfolio lane"):
            PortfolioBackend(("cplex",))
