"""Aging-unaware placement (the back half of the Musketeer substitute).

Constructive corner-packing placement plus simulated-annealing refinement,
with bounding-box + wirelength objectives matching the commercial tool's
behaviour described in the paper's Phase 1.
"""

from repro.place.annealing import AnnealingConfig, ContextAnnealer, anneal_placement
from repro.place.baseline import BaselinePlacer, BaselinePlacerConfig, place_baseline
from repro.place.cost import (
    PlacementCost,
    bounding_box,
    bounding_box_area,
    edge_positions,
    wirelength,
)
from repro.place.greedy import greedy_place

__all__ = [
    "AnnealingConfig",
    "BaselinePlacer",
    "BaselinePlacerConfig",
    "ContextAnnealer",
    "PlacementCost",
    "anneal_placement",
    "bounding_box",
    "bounding_box_area",
    "edge_positions",
    "greedy_place",
    "place_baseline",
    "wirelength",
]
