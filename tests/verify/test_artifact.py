"""Artifact certification (``repro verify``): round-trip, corruption,
differential mode and the CLI exit codes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import CertificationError
from repro.verify import KIND_SUMMARY, certify_artifact

pytest.importorskip("scipy")


@pytest.fixture(scope="module")
def flow_document(synth_design, fabric4):
    from repro.core.flow import AgingAwareFlow
    from repro.io.serialize import flow_summary_to_dict
    from repro.report.experiments import flow_config

    result = AgingAwareFlow(flow_config("rotate", 30.0)).run(
        synth_design, fabric4
    )
    # JSON round-trip: certify exactly what a reader of the file sees.
    return json.loads(json.dumps(flow_summary_to_dict(result)))


class TestCertifyArtifact:
    def test_saved_run_certifies(self, flow_document):
        report = certify_artifact(flow_document)
        assert report["ok"], report["certificate"]["violations"]
        assert report["certificate"]["checks"]

    def test_corrupted_summary_is_flagged(self, flow_document):
        corrupted = copy.deepcopy(flow_document)
        corrupted["summary"]["final_cpd_ns"] -= 0.5
        report = certify_artifact(corrupted)
        assert not report["ok"]
        kinds = {
            v["kind"] for v in report["certificate"]["violations"]
        }
        assert KIND_SUMMARY in kinds

    def test_dropped_binding_is_flagged(self, flow_document):
        corrupted = copy.deepcopy(flow_document)
        corrupted["remapped_floorplan"]["bindings"].pop()
        report = certify_artifact(corrupted)
        assert not report["ok"]
        kinds = {
            v["kind"] for v in report["certificate"]["violations"]
        }
        assert "unassigned" in kinds

    def test_wrong_kind_raises(self):
        with pytest.raises(CertificationError, match="flow_result"):
            certify_artifact({"kind": "bench_record"})

    def test_differential_backends_agree(self, flow_document):
        report = certify_artifact(
            flow_document, certify_backend="branch-bound", sample=1,
            time_limit_s=20.0,
        )
        assert report["ok"]
        differential = report["differential"]
        assert differential["ok"]
        assert differential["sampled_contexts"]
        for result in differential["contexts"].values():
            assert result["agree"]


class TestVerifyCli:
    def test_cli_pass_and_fail_exit_codes(
        self, flow_document, tmp_path, capsys
    ):
        from repro.cli import main

        good = tmp_path / "good.json"
        good.write_text(json.dumps(flow_document))
        assert main(["verify", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out

        corrupted = copy.deepcopy(flow_document)
        corrupted["summary"]["remapped_max_stress_ns"] += 1.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(corrupted))
        assert main(["verify", str(bad)]) == 4
        assert "FAIL" in capsys.readouterr().out
