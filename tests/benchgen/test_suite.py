"""Table I suite definition tests: the published configuration is encoded
exactly and every entry synthesizes."""

from __future__ import annotations

import pytest

from repro.benchgen import (
    TABLE1,
    TABLE1_AVERAGES,
    USAGE_CLASSES,
    entries,
    entry,
    load_benchmark,
)
from repro.errors import BenchmarkError


class TestTableStructure:
    def test_27_benchmarks(self):
        assert len(TABLE1) == 27
        assert [e.name for e in TABLE1] == [f"B{i}" for i in range(1, 28)]

    def test_nine_per_usage_class(self):
        for usage in USAGE_CLASSES:
            assert len(entries(usage_class=usage)) == 9

    def test_grid_of_configurations(self):
        """Each usage class covers {4,8,16} contexts x {4,8,16} fabrics."""
        for usage in USAGE_CLASSES:
            combos = {
                (e.num_contexts, e.fabric_dim)
                for e in entries(usage_class=usage)
            }
            assert combos == {
                (c, f) for c in (4, 8, 16) for f in (4, 8, 16)
            }

    def test_published_values_spot_checks(self):
        """A few cells of Table I, verbatim from the paper."""
        b1 = entry("B1")
        assert (b1.pe_count, b1.freeze_ref, b1.rotate_ref) == (24, 1.94, 1.94)
        b18 = entry("B18")
        assert (b18.pe_count, b18.freeze_ref, b18.rotate_ref) == (2165, 2.39, 3.08)
        b27 = entry("B27")
        assert (b27.pe_count, b27.freeze_ref, b27.rotate_ref) == (3089, 2.07, 2.44)

    def test_published_averages(self):
        assert TABLE1_AVERAGES["low"] == (2.78, 2.98)
        assert TABLE1_AVERAGES["medium"] == (2.06, 2.51)
        assert TABLE1_AVERAGES["high"] == (1.61, 2.01)

    def test_rotate_never_below_freeze_in_paper(self):
        for e in TABLE1:
            assert e.rotate_ref >= e.freeze_ref

    def test_utilization_classes_ordered(self):
        """Within each (contexts, fabric) group: low < medium < high."""
        for c in (4, 8, 16):
            for f in (4, 8, 16):
                group = [
                    e for e in TABLE1
                    if e.num_contexts == c and e.fabric_dim == f
                ]
                by_class = {e.usage_class: e.utilization for e in group}
                assert by_class["low"] < by_class["medium"] < by_class["high"]

    def test_all_fit_their_fabric(self):
        for e in TABLE1:
            assert e.pe_count <= e.num_contexts * e.fabric_dim**2


class TestLookups:
    def test_entry_lookup(self):
        assert entry("B13").usage_class == "medium"

    def test_unknown_entry(self):
        with pytest.raises(BenchmarkError):
            entry("B99")

    def test_filters(self):
        small = entries(max_contexts=4, max_fabric_dim=8)
        assert {e.name for e in small} == {"B1", "B2", "B10", "B11", "B19", "B20"}

    def test_unknown_class_rejected(self):
        with pytest.raises(BenchmarkError):
            entries(usage_class="extreme")

    def test_group_label(self):
        assert entry("B14").group == "C8F8"


class TestScaling:
    def test_scaled_preserves_utilization(self):
        scaled = entry("B27").scaled(8)
        original = entry("B27")
        assert scaled.fabric_dim == 8
        assert scaled.num_contexts == original.num_contexts
        assert scaled.utilization == pytest.approx(
            original.utilization, rel=0.05
        )

    def test_scaled_noop_for_small(self):
        assert entry("B1").scaled(8) is entry("B1")

    def test_scaled_name_marked(self):
        assert entry("B27").scaled(8).name == "B27s"


class TestSynthesis:
    @pytest.mark.parametrize("name", ["B1", "B10", "B19"])
    def test_small_benchmarks_build(self, name):
        design, fabric = load_benchmark(name)
        design.validate()
        e = entry(name)
        assert design.num_ops == e.pe_count
        assert fabric.rows == e.fabric_dim

    def test_scaled_large_benchmark_builds(self):
        from repro.benchgen import build_benchmark

        scaled = entry("B24").scaled(8)
        design, fabric = build_benchmark(scaled.spec())
        design.validate()
        assert fabric.rows == 8
