"""Experiment-driver tests (configuration logic only — the heavy runs
live in benchmarks/ and the CLI)."""

from __future__ import annotations

import pytest

from repro.report.experiments import (
    ExperimentConfig,
    QUICK_MAX_FABRIC,
    flow_config,
)


class TestExperimentConfig:
    def test_quick_suite_caps_fabrics(self):
        config = ExperimentConfig(scale="quick")
        suite = config.suite()
        assert len(suite) == 27
        assert all(e.fabric_dim <= QUICK_MAX_FABRIC for e in suite)

    def test_paper_suite_is_verbatim(self):
        config = ExperimentConfig(scale="paper")
        suite = config.suite()
        assert {e.fabric_dim for e in suite} == {4, 8, 16}
        assert suite[-1].pe_count == 3089

    def test_only_filter(self):
        config = ExperimentConfig(scale="paper", only=["B5", "B9"])
        assert [e.name for e in config.suite()] == ["B5", "B9"]

    def test_only_filter_applies_before_scaling(self):
        config = ExperimentConfig(scale="quick", only=["B27"])
        (entry,) = config.suite()
        assert entry.name == "B27s"
        assert entry.fabric_dim == QUICK_MAX_FABRIC

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="galactic").suite()


class TestFlowConfig:
    def test_mode_threading(self):
        config = flow_config("freeze", 42.0)
        assert config.algorithm1.mode == "freeze"
        assert config.algorithm1.remap.time_limit_s == 42.0

    def test_default_mode_rotate(self):
        assert flow_config("rotate", 10.0).algorithm1.mode == "rotate"

    def test_certify_on_by_default_and_optional(self):
        assert flow_config("rotate", 10.0).algorithm1.certify is True
        config = flow_config("rotate", 10.0, certify=False)
        assert config.algorithm1.certify is False
        assert ExperimentConfig().certify is True


class TestParallelSweep:
    def test_jobs2_matches_serial_and_resumes(self, tmp_path):
        """``--jobs 2`` is a pure wall-clock optimisation: measurements,
        checkpoint records and resume semantics are identical to serial."""
        pytest.importorskip("scipy")
        import json

        from repro.report.experiments import run_table1

        def sweep(checkpoint, jobs, resume=False):
            config = ExperimentConfig(
                scale="quick",
                only=["B1", "B4"],
                time_limit_s=8.0,
                checkpoint=str(checkpoint),
                resume=resume,
                jobs=jobs,
            )
            rows = run_table1(config, log=lambda line: None)
            return [
                (m.entry.name, m.freeze_increase, m.rotate_increase)
                for m in rows
            ]

        def records(path):
            with open(path) as fh:
                return [json.loads(line) for line in fh]

        serial_ckpt = tmp_path / "serial.jsonl"
        parallel_ckpt = tmp_path / "parallel.jsonl"
        serial = sweep(serial_ckpt, jobs=1)
        parallel = sweep(parallel_ckpt, jobs=2)
        assert parallel == serial

        by_entry = lambda record: record["entry"]  # noqa: E731
        serial_records = sorted(records(serial_ckpt), key=by_entry)
        parallel_records = sorted(records(parallel_ckpt), key=by_entry)
        assert parallel_records == serial_records

        # A truncated checkpoint resumes under --jobs without re-running
        # the completed entry, and the file ends up complete.
        done = [r for r in serial_records if r["entry"] == "B1"]
        resume_ckpt = tmp_path / "resume.jsonl"
        resume_ckpt.write_text(
            "".join(json.dumps(r) + "\n" for r in done)
        )
        resumed = sweep(resume_ckpt, jobs=2, resume=True)
        assert resumed == serial
        assert sorted(records(resume_ckpt), key=by_entry) == serial_records


def _fast_measure(entry, config, seed=None):
    """Instant deterministic stand-in for measure_benchmark.

    Patched into the experiments module before the pool forks, so workers
    inherit it — supervisor tests then exercise crash/hang/retry paths in
    milliseconds instead of real MILP runs.
    """
    from repro.report.paper import BenchmarkMeasurement

    return BenchmarkMeasurement(
        entry=entry, freeze_increase=1.5, rotate_increase=2.5
    )


def _checkpoint_statuses(path):
    import json

    statuses: dict[str, list[str]] = {}
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            statuses.setdefault(record["entry"], []).append(
                record["status"]
            )
    return statuses


class TestSupervisedSweep:
    @pytest.fixture(autouse=True)
    def fast_supervisor(self, monkeypatch):
        import repro.report.experiments as experiments

        monkeypatch.setattr(experiments, "_CRASH_BACKOFF_BASE_S", 0.01)
        monkeypatch.setattr(experiments, "_POLL_INTERVAL_S", 0.05)
        monkeypatch.setattr(
            experiments, "measure_benchmark", _fast_measure
        )

    def _config(self, tmp_path, **overrides):
        defaults = dict(
            scale="quick",
            only=["B1", "B4"],
            jobs=2,
            checkpoint=str(tmp_path / "sweep.jsonl"),
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    def test_single_crash_is_retried_in_isolation(self, tmp_path):
        from repro.report.experiments import run_table1
        from repro.resilience.faults import fault_scope

        config = self._config(tmp_path)
        with fault_scope("worker_crash@1") as plan:
            rows = run_table1(config, log=lambda line: None)
        assert plan.fired("worker_crash") == 1
        assert [m.entry.name for m in rows] == ["B1", "B4"]
        statuses = _checkpoint_statuses(config.checkpoint)
        # The injected entry dies, gets a "failed" record, and its
        # isolated retry lands the "ok" — the sweep never aborts.
        assert statuses["B1"][0] == "failed"
        assert statuses["B1"][-1] == "ok"
        assert statuses["B4"][-1] == "ok"

    def test_repeat_killer_is_quarantined_then_resumable(self, tmp_path):
        from repro.report.experiments import run_table1
        from repro.resilience.faults import fault_scope

        config = self._config(tmp_path)
        lines: list[str] = []
        with fault_scope("worker_crash"):
            rows = run_table1(config, log=lines.append)
        assert rows == []
        statuses = _checkpoint_statuses(config.checkpoint)
        assert statuses["B1"][-1] == "quarantined"
        assert statuses["B4"][-1] == "quarantined"
        assert any("quarantined" in line for line in lines)

        # Quarantine is not a tombstone: --resume retries the entries.
        resumed = run_table1(
            self._config(tmp_path, resume=True), log=lambda line: None
        )
        assert [m.entry.name for m in resumed] == ["B1", "B4"]
        statuses = _checkpoint_statuses(config.checkpoint)
        assert statuses["B1"][-1] == "ok"
        assert statuses["B4"][-1] == "ok"

    def test_hanging_worker_is_killed_and_retried(self, tmp_path):
        from repro.report.experiments import run_table1
        from repro.resilience.faults import fault_scope

        config = self._config(tmp_path, entry_timeout_s=2.0)
        with fault_scope("worker_hang@1"):
            rows = run_table1(config, log=lambda line: None)
        assert [m.entry.name for m in rows] == ["B1", "B4"]
        statuses = _checkpoint_statuses(config.checkpoint)
        assert statuses["B1"][-1] == "ok"
        failed = [
            record
            for record in self._records(config.checkpoint)
            if record["status"] == "failed"
        ]
        assert any("timeout" in record["error"] for record in failed)

    @staticmethod
    def _records(path):
        import json

        with open(path) as handle:
            return [json.loads(line) for line in handle]


class TestCliParsing:
    def test_main_rejects_unknown_experiment(self, capsys):
        from repro.report.experiments import main

        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_main_fig2a_runs(self, capsys):
        """fig2a is the cheapest experiment; run it through the CLI."""
        pytest.importorskip("scipy")
        from repro.report.experiments import main

        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "Original accumulated stress" in out
        assert "Re-mapped accumulated stress" in out
