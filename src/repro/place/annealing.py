"""Simulated-annealing refinement of a constructive placement.

A light per-context SA pass that reduces wirelength (the timing proxy)
while keeping the aging-unaware character of the baseline: the cost keeps
the bounding-box term, so solutions stay packed.

Moves: relocate an op to a free PE, or swap two ops within the context.
The evaluation is incremental — only wires incident to the moved ops are
re-measured.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.arch.context import Floorplan
from repro.arch.fabric import Fabric
from repro.hls.allocate import MappedDesign
from repro.obs import counter, event, get_logger, span
from repro.place.cost import bounding_box_area
from repro.resilience.deadline import current_deadline
from repro.resilience.faults import should_inject

_log = get_logger("place.annealing")


class _NonFiniteCost(Exception):
    """Internal signal: a move cost evaluated to NaN/inf.

    Never escapes this module — the annealer aborts the affected context
    gracefully (the floorplan stays valid because moves apply atomically)
    and the constructive placement stands.
    """


@dataclass
class AnnealingConfig:
    """Knobs for the SA pass.

    Defaults are sized for the evaluation fabrics (up to 16x16): a few
    thousand proposals per context, geometric cooling.
    """

    moves_per_op: int = 60
    initial_temperature: float = 1.0
    cooling: float = 0.80
    steps_per_temperature: int = 64
    bbox_weight: float = 2.0
    seed: int = 2020


class ContextAnnealer:
    """SA optimiser for one context of a floorplan."""

    def __init__(
        self,
        design: MappedDesign,
        floorplan: Floorplan,
        context: int,
        config: AnnealingConfig,
        rng: random.Random,
    ) -> None:
        self.design = design
        self.floorplan = floorplan
        self.context = context
        self.config = config
        self.rng = rng
        self.fabric: Fabric = floorplan.fabric
        self.ops = [op.op_id for op in design.ops_in_context(context)]
        self._build_incidence()

    def _build_incidence(self) -> None:
        """Wires incident to each movable op, with fixed-or-movable endpoints.

        Each entry is ``(other_end, movable)`` where ``other_end`` is an op
        id when ``movable`` else a fixed coordinate.
        """
        in_context = set(self.ops)
        self.incident: dict[int, list[tuple[object, bool]]] = {
            op: [] for op in self.ops
        }
        for src, dst in self.design.compute_edges:
            if src in in_context and dst in in_context:
                self.incident[src].append((dst, True))
                self.incident[dst].append((src, True))
            elif src in in_context:
                self.incident[src].append((self._pos_of(dst), False))
            elif dst in in_context:
                self.incident[dst].append((self._pos_of(src), False))
        for ordinal, dst in self.design.input_edges:
            if dst in in_context:
                pad = self.fabric.input_pad(ordinal)
                self.incident[dst].append(((pad.row, pad.col), False))
        for src, ordinal in self.design.output_edges:
            if src in in_context:
                pad = self.fabric.output_pad(ordinal)
                self.incident[src].append(((pad.row, pad.col), False))

    def _pos_of(self, op_id: int) -> tuple[float, float]:
        row, col = self.floorplan.position_of(op_id)
        return (float(row), float(col))

    def _op_cost(self, op_id: int, position: tuple[float, float]) -> float:
        """Wirelength of wires incident to ``op_id`` were it at ``position``."""
        total = 0.0
        for other, movable in self.incident[op_id]:
            if movable:
                other_pos = self._pos_of(other)  # type: ignore[arg-type]
            else:
                other_pos = other  # type: ignore[assignment]
            total += abs(position[0] - other_pos[0]) + abs(position[1] - other_pos[1])
        return total

    def _bbox(self) -> float:
        positions = [self._pos_of(op) for op in self.ops]
        return bounding_box_area(positions) if positions else 0.0

    def run(self) -> tuple[int, int]:
        """Anneal this context in place; returns (proposed, accepted).

        Move counts are tallied locally and flushed to the metrics
        registry once at the end, so the proposal loop itself carries no
        instrumentation overhead.
        """
        if len(self.ops) < 2:
            return (0, 0)
        config = self.config
        deadline = current_deadline()
        occupied = {self.floorplan.pe_of[op] for op in self.ops}
        free = [k for k in range(self.fabric.num_pes) if k not in occupied]
        temperature = config.initial_temperature
        total_moves = config.moves_per_op * len(self.ops)
        steps_done = 0
        accepted_moves = 0
        bbox_cached = self._bbox()
        try:
            while steps_done < total_moves:
                if deadline.expired:
                    # SA is a refinement: on budget expiry the current
                    # (valid) floorplan stands; no error, just a record.
                    counter("anneal.deadline_stops").inc()
                    event("anneal.deadline_stop", context=self.context)
                    break
                for _ in range(config.steps_per_temperature):
                    steps_done += 1
                    if steps_done > total_moves:
                        break
                    if free and self.rng.random() < 0.5:
                        accepted = self._try_relocate(free, temperature, bbox_cached)
                    else:
                        accepted = self._try_swap(temperature)
                    if accepted:
                        accepted_moves += 1
                        bbox_cached = self._bbox()
                temperature = max(temperature * config.cooling, 1e-3)
        except _NonFiniteCost as exc:
            counter("anneal.nan_aborts").inc()
            event("anneal.nan_abort", context=self.context)
            _log.warning(
                "annealing aborted in context %d: non-finite move cost (%s); "
                "keeping the constructive placement refined so far",
                self.context, exc,
            )
        proposed = min(steps_done, total_moves)
        counter("anneal.moves_proposed").inc(proposed)
        counter("anneal.moves_accepted").inc(accepted_moves)
        return (proposed, accepted_moves)

    def _metropolis(self, delta: float, temperature: float) -> bool:
        if should_inject("annealing_nan"):
            delta = float("nan")
        if not math.isfinite(delta):
            raise _NonFiniteCost(f"delta={delta!r}")
        if delta <= 0:
            return True
        return self.rng.random() < math.exp(-delta / temperature)

    def _try_relocate(
        self, free: list[int], temperature: float, bbox_before: float
    ) -> bool:
        op = self.rng.choice(self.ops)
        slot_index = self.rng.randrange(len(free))
        new_pe = free[slot_index]
        old_pe = self.floorplan.pe_of[op]
        new_pos = (float(self.fabric.pe(new_pe).row), float(self.fabric.pe(new_pe).col))
        old_cost = self._op_cost(op, self._pos_of(op))
        new_cost = self._op_cost(op, new_pos)
        # Bounding-box delta requires the tentative move.
        self.floorplan.rebind(op, new_pe)
        bbox_after = self._bbox()
        delta = (new_cost - old_cost) + self.config.bbox_weight * (
            bbox_after - bbox_before
        )
        if self._metropolis(delta, temperature):
            free[slot_index] = old_pe
            return True
        self.floorplan.rebind(op, old_pe)
        return False

    def _try_swap(self, temperature: float) -> bool:
        op_a, op_b = self.rng.sample(self.ops, 2)
        pos_a, pos_b = self._pos_of(op_a), self._pos_of(op_b)
        old_cost = self._op_cost(op_a, pos_a) + self._op_cost(op_b, pos_b)
        new_cost = self._op_cost(op_a, pos_b) + self._op_cost(op_b, pos_a)
        # Swapping cannot change the bounding box.
        if not self._metropolis(new_cost - old_cost, temperature):
            return False
        self.floorplan.swap(op_a, op_b)
        return True


def anneal_placement(
    design: MappedDesign,
    floorplan: Floorplan,
    config: AnnealingConfig | None = None,
) -> Floorplan:
    """Refine ``floorplan`` in place with per-context SA; returns it."""
    config = config or AnnealingConfig()
    rng = random.Random(config.seed)
    with span("anneal", contexts=floorplan.num_contexts) as anneal_span:
        proposed = accepted = 0
        for context in range(floorplan.num_contexts):
            annealer = ContextAnnealer(design, floorplan, context, config, rng)
            ctx_proposed, ctx_accepted = annealer.run()
            proposed += ctx_proposed
            accepted += ctx_accepted
        floorplan.validate()
        anneal_span.set(moves_proposed=proposed, moves_accepted=accepted)
    _log.debug(
        "annealed %d context(s): %d/%d moves accepted",
        floorplan.num_contexts, accepted, proposed,
    )
    return floorplan
