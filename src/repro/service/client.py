"""Synchronous stdlib client for a running floorplanning service.

Built on :mod:`http.client` only, so examples, tests and the CI soak
driver can hammer the service without any extra dependency.  The client
implements the polite half of the admission contract: on a ``503`` shed
it honours the server's ``Retry-After`` hint (with jitter-free
exponential escalation) instead of hot-looping.
"""

from __future__ import annotations

import http.client
import json
import pathlib
import time

from repro.errors import AdmissionError, ServiceError


def read_endpoint(state_dir: str | pathlib.Path) -> tuple[str, int]:
    """Discover ``(host, port)`` from a service's ``endpoint.json``."""
    path = pathlib.Path(state_dir) / "endpoint.json"
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        return document["host"], int(document["port"])
    except (OSError, ValueError, KeyError) as exc:
        raise ServiceError(
            f"no service endpoint at {path} ({exc}); is the service running?"
        ) from exc


class ServiceClient:
    """One service endpoint, tiny JSON-over-HTTP verbs."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787,
        timeout_s: float = 630.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def from_state_dir(cls, state_dir: str | pathlib.Path, **kwargs):
        host, port = read_endpoint(state_dir)
        return cls(host, port, **kwargs)

    # -- transport ------------------------------------------------------------
    def request(
        self, method: str, path: str, document: dict | None = None
    ) -> tuple[int, dict, dict]:
        """One HTTP exchange; returns ``(status, body, headers)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {}
            if document is not None:
                body = json.dumps(document).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8") or "{}")
            return response.status, payload, dict(response.getheaders())
        except (ConnectionError, OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"service at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()

    # -- probes ---------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/healthz")[1]

    def ready(self) -> bool:
        status, _, _ = self.request("GET", "/readyz")
        return status == 200

    def metrics(self) -> dict:
        return self.request("GET", "/metricsz")[1]

    # -- jobs -----------------------------------------------------------------
    def submit(self, request: dict, wait: bool = False) -> dict:
        """Submit one floorplan request; raise typed errors on rejection.

        With ``wait=True`` the call blocks server-side until the job is
        terminal and the returned view includes the result document.
        """
        path = "/v1/floorplan" + ("?wait=1" if wait else "")
        status, body, headers = self.request("POST", path, request)
        if status == 503:
            raise AdmissionError(
                body.get("reason", "unavailable"),
                float(body.get("retry_after_s")
                      or headers.get("Retry-After", 1.0)),
            )
        if status not in (200, 202):
            raise ServiceError(
                f"submit failed ({status}): {body.get('error', body)}"
            )
        return body

    def submit_retry(
        self, request: dict, wait: bool = False,
        attempts: int = 20, max_sleep_s: float = 10.0,
    ) -> dict:
        """Submit, honouring shed responses' retry hints."""
        last: AdmissionError | None = None
        for _ in range(attempts):
            try:
                return self.submit(request, wait=wait)
            except AdmissionError as exc:
                last = exc
                time.sleep(min(max_sleep_s, max(0.05, exc.retry_after_s)))
        raise last if last is not None else ServiceError("submit never ran")

    def job(self, job_id: str, include_result: bool = False) -> dict:
        path = f"/v1/jobs/{job_id}" + ("?result=1" if include_result else "")
        status, body, _ = self.request("GET", path)
        if status == 404:
            raise ServiceError(body.get("error", f"unknown job {job_id!r}"))
        return body

    def wait_job(
        self, job_id: str, timeout_s: float = 600.0, poll_s: float = 0.2
    ) -> dict:
        """Poll until the job is terminal; returns the final view."""
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.job(job_id, include_result=True)
            if view["status"] in ("done", "failed", "quarantined"):
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {view['status']} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)
