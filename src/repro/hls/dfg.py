"""Dataflow-graph intermediate representation of a benchmark.

The HLS frontend lowers mini-C into a :class:`DataflowGraph`: a DAG whose
nodes are operations (:class:`~repro.arch.opcodes.OpKind`) and whose edges
carry values.  Compute nodes (ALU/DMU) later occupy PEs; INPUT/OUTPUT/CONST
pseudo nodes become I/O pads or immediate fields and neither occupy nor
stress PEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.arch.opcodes import OpKind, arity_of, is_compute
from repro.errors import HLSError


@dataclass(frozen=True)
class DfgNode:
    """One operation in the dataflow graph.

    Attributes
    ----------
    node_id:
        Dense integer id (stable across the whole flow — floorplans and
        stress maps key on it).
    kind:
        The operation kind.
    width:
        Operand bitwidth (8/16/32).
    inputs:
        Producer node ids in port order.
    name:
        Optional human-readable label (source variable for I/O nodes).
    value:
        Immediate value for CONST nodes.
    """

    node_id: int
    kind: OpKind
    width: int = 32
    inputs: tuple[int, ...] = ()
    name: str = ""
    value: int | None = None

    @property
    def is_compute(self) -> bool:
        return is_compute(self.kind)


class DataflowGraph:
    """A DAG of operations with dense node ids.

    Node ids are assigned in creation order, so a graph built in program
    order has ids consistent with a topological order of any *straight-line*
    program; :meth:`topological_order` is nevertheless computed properly.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: dict[int, DfgNode] = {}
        self._succs: dict[int, list[int]] = {}
        self._next_id = 0

    # -- construction -----------------------------------------------------------
    def add_node(
        self,
        kind: OpKind,
        inputs: Sequence[int] = (),
        width: int = 32,
        name: str = "",
        value: int | None = None,
    ) -> int:
        """Create a node, wiring it to existing producers; returns its id."""
        expected = arity_of(kind)
        if kind not in (OpKind.INPUT, OpKind.CONST) and len(inputs) != expected:
            raise HLSError(
                f"{kind.value} expects {expected} inputs, got {len(inputs)}"
            )
        for producer in inputs:
            if producer not in self._nodes:
                raise HLSError(f"input node {producer} does not exist")
        node_id = self._next_id
        self._next_id += 1
        node = DfgNode(
            node_id=node_id,
            kind=kind,
            width=width,
            inputs=tuple(inputs),
            name=name,
            value=value,
        )
        self._nodes[node_id] = node
        self._succs[node_id] = []
        for producer in inputs:
            self._succs[producer].append(node_id)
        return node_id

    def add_input(self, name: str, width: int = 32) -> int:
        return self.add_node(OpKind.INPUT, (), width=width, name=name)

    def add_const(self, value: int, width: int = 32) -> int:
        return self.add_node(OpKind.CONST, (), width=width, value=value)

    def add_output(self, producer: int, name: str) -> int:
        width = self.node(producer).width
        return self.add_node(OpKind.OUTPUT, (producer,), width=width, name=name)

    # -- queries --------------------------------------------------------------
    def node(self, node_id: int) -> DfgNode:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise HLSError(f"node {node_id} does not exist") from exc

    @property
    def nodes(self) -> dict[int, DfgNode]:
        return dict(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def successors(self, node_id: int) -> list[int]:
        """Consumer node ids of a node (in wiring order)."""
        self.node(node_id)
        return list(self._succs[node_id])

    def predecessors(self, node_id: int) -> tuple[int, ...]:
        """Producer node ids of a node (port order)."""
        return self.node(node_id).inputs

    def compute_nodes(self) -> list[DfgNode]:
        """Nodes that occupy PEs, in id order."""
        return [n for n in self._nodes.values() if n.is_compute]

    @property
    def num_compute(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_compute)

    def input_nodes(self) -> list[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is OpKind.INPUT]

    def output_nodes(self) -> list[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is OpKind.OUTPUT]

    def const_nodes(self) -> list[DfgNode]:
        return [n for n in self._nodes.values() if n.kind is OpKind.CONST]

    def __iter__(self) -> Iterator[DfgNode]:
        return iter(self._nodes.values())

    # -- analysis -------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Node ids in a deterministic topological order.

        Construction guarantees acyclicity (inputs must pre-exist), but this
        re-verifies and provides the canonical processing order for
        scheduling and evaluation.
        """
        in_degree = {nid: len(n.inputs) for nid, n in self._nodes.items()}
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: list[int] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            nid = heapq.heappop(ready)
            order.append(nid)
            for succ in self._succs[nid]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != len(self._nodes):
            raise HLSError("dataflow graph contains a cycle")
        return order

    def evaluate(self, input_values: dict[str, int]) -> dict[str, int]:
        """Execute the DFG on concrete integers (reference semantics).

        Used by tests to prove the frontend's lowering preserves program
        meaning.  Arithmetic wraps to the node width, matching fixed-width
        hardware.
        """
        values: dict[int, int] = {}
        for nid in self.topological_order():
            node = self._nodes[nid]
            args = [values[p] for p in node.inputs]
            values[nid] = _evaluate_node(node, args, input_values)
        return {
            node.name: values[node.node_id]
            for node in self.output_nodes()
        }

    def validate(self) -> None:
        """Structural checks: arities, dangling edges, acyclicity."""
        for node in self._nodes.values():
            if node.kind not in (OpKind.INPUT, OpKind.CONST):
                expected = arity_of(node.kind)
                if len(node.inputs) != expected:
                    raise HLSError(
                        f"node {node.node_id} ({node.kind.value}) has "
                        f"{len(node.inputs)} inputs, expected {expected}"
                    )
            for producer in node.inputs:
                if producer not in self._nodes:
                    raise HLSError(
                        f"node {node.node_id} references missing node {producer}"
                    )
        self.topological_order()

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, nodes={self.num_nodes}, "
            f"compute={self.num_compute})"
        )


def _truncate(value: int, width: int) -> int:
    """Wrap a Python int to a signed two's-complement value of ``width`` bits."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def _evaluate_node(node: DfgNode, args: list[int], inputs: dict[str, int]) -> int:
    """Reference semantics for one node (signed, width-wrapped)."""
    kind = node.kind
    if kind is OpKind.INPUT:
        try:
            raw = inputs[node.name]
        except KeyError as exc:
            raise HLSError(f"missing value for input {node.name!r}") from exc
        return _truncate(raw, node.width)
    if kind is OpKind.CONST:
        return _truncate(int(node.value or 0), node.width)
    if kind is OpKind.OUTPUT:
        return args[0]

    a = args[0] if args else 0
    b = args[1] if len(args) > 1 else 0
    if kind is OpKind.ADD:
        result = a + b
    elif kind is OpKind.SUB:
        result = a - b
    elif kind is OpKind.MUL:
        result = a * b
    elif kind is OpKind.DIV:
        result = int(a / b) if b else 0  # C-style truncation; div-by-0 -> 0
    elif kind is OpKind.MOD:
        result = int(abs(a) % abs(b)) * (1 if a >= 0 else -1) if b else 0
    elif kind is OpKind.AND:
        result = a & b
    elif kind is OpKind.OR:
        result = a | b
    elif kind is OpKind.XOR:
        result = a ^ b
    elif kind is OpKind.SHL:
        result = a << (b % node.width)
    elif kind is OpKind.SHR:
        result = a >> (b % node.width)
    elif kind is OpKind.NEG:
        result = -a
    elif kind is OpKind.NOT:
        result = ~a
    elif kind is OpKind.LT:
        result = int(a < b)
    elif kind is OpKind.LE:
        result = int(a <= b)
    elif kind is OpKind.GT:
        result = int(a > b)
    elif kind is OpKind.GE:
        result = int(a >= b)
    elif kind is OpKind.EQ:
        result = int(a == b)
    elif kind is OpKind.NE:
        result = int(a != b)
    elif kind is OpKind.SELECT:
        result = args[1] if args[0] else args[2]
    elif kind is OpKind.LOAD:
        result = a  # register-file passthrough in the reference model
    elif kind is OpKind.STORE:
        result = b
    else:  # pragma: no cover - exhaustive over OpKind
        raise HLSError(f"no semantics for {kind.value}")
    return _truncate(result, node.width)
