"""LP-guided greedy completion tests (the large-model completion path)."""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    solve_remap,
)
from repro.core.remap import GreedyContext
from repro.timing import analyze, filter_paths


def empty_frozen():
    return FrozenPlan(positions={}, orientation_of_context={})


@pytest.fixture
def problem(synth_design, synth_floorplan, fabric4):
    report = analyze(synth_design, synth_floorplan)
    stress = compute_stress_map(synth_design, synth_floorplan)
    monitored = filter_paths(synth_design, synth_floorplan).non_critical
    candidates = default_candidates(
        synth_design, synth_floorplan, empty_frozen(), fabric4, None
    )
    return synth_design, fabric4, synth_floorplan, report.cpd_ns, stress, monitored, candidates


def solve_with_completion(problem, st_target, completion):
    design, fabric, floorplan, cpd, stress, monitored, candidates = problem
    config = RemapConfig(time_limit_s=30, completion=completion)
    model, variables, _ = build_remap_model(
        design, fabric, empty_frozen(), candidates, monitored, cpd, st_target
    )
    ctx = GreedyContext(
        design=design,
        fabric=fabric,
        frozen_positions={},
        st_target_ns=st_target,
        frozen_stress_ns={},
    )
    return solve_remap(model, variables, config, greedy_context=ctx)


class TestGreedyCompletion:
    def test_respects_stress_budget(self, problem):
        design, fabric, floorplan, cpd, stress, *_ = problem
        target = 0.8 * stress.max_accumulated_ns
        outcome = solve_with_completion(problem, target, "greedy")
        assert outcome.feasible
        assert outcome.stats["completion"] == "greedy"
        new = outcome.floorplan(floorplan, empty_frozen())
        new_stress = compute_stress_map(design, new)
        assert new_stress.max_accumulated_ns <= target + 1e-9

    def test_produces_legal_floorplan(self, problem):
        design, fabric, floorplan, cpd, stress, *_ = problem
        outcome = solve_with_completion(
            problem, stress.max_accumulated_ns, "greedy"
        )
        assert outcome.feasible
        new = outcome.floorplan(floorplan, empty_frozen())
        new.validate()
        assert set(new.ops) == set(floorplan.ops)

    def test_greedy_matches_ilp_feasibility(self, problem):
        """At a comfortably feasible target both completions succeed."""
        *_, stress, _, _ = problem[:7]
        target = problem[4].max_accumulated_ns * 0.9
        greedy = solve_with_completion(problem, target, "greedy")
        ilp = solve_with_completion(problem, target, "ilp")
        assert greedy.feasible == ilp.feasible is True

    def test_auto_uses_ilp_on_small_models(self, problem):
        *_, stress, _, _ = problem[:7]
        outcome = solve_with_completion(
            problem, problem[4].max_accumulated_ns, "auto"
        )
        # 28 ops x 16 PEs = 448 binaries < greedy threshold -> ILP path.
        assert outcome.feasible
        assert "completion" not in outcome.stats

    def test_infeasible_budget_fails_cleanly(self, problem):
        outcome = solve_with_completion(problem, 0.5, "greedy")
        # Greedy dead-ends, ILP confirms infeasibility.
        assert not outcome.feasible

    def test_greedy_wire_quality_reasonable(self, problem):
        """The wire-guided greedy should not produce wildly longer wires
        than the LP-optimal ILP result."""
        from repro.core.constraints import design_wire_endpoints

        design, fabric, floorplan, cpd, stress, *_ = problem
        target = stress.max_accumulated_ns

        def total_wirelength(fp):
            total = 0.0
            for a, b in design_wire_endpoints(design):
                pa, pb = a.position(fp), b.position(fp)
                total += abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])
            return total

        greedy = solve_with_completion(problem, target, "greedy")
        ilp = solve_with_completion(problem, target, "ilp")
        wl_greedy = total_wirelength(greedy.floorplan(floorplan, empty_frozen()))
        wl_ilp = total_wirelength(ilp.floorplan(floorplan, empty_frozen()))
        assert wl_greedy <= 2.0 * wl_ilp
