#!/usr/bin/env python
"""Quickstart: one mini-C kernel through the full aging-aware CAD flow.

Runs the complete pipeline of the paper on a small FIR-like kernel:

1. HLS frontend: mini-C -> dataflow graph -> contexts (list scheduling);
2. Phase 1: aging-unaware placement (Musketeer substitute), STA,
   stress map, thermal map, baseline MTTF;
3. Phase 2: MILP-based aging-aware re-mapping (Algorithm 1);
4. Reports the MTTF increase and shows the stress grids of Fig. 2(a).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Fabric, compile_source, run_flow, schedule_dfg, tech_map
from repro.report import format_mapping, stress_grid

KERNEL = """
// A small multiply-accumulate kernel with a saturation branch.
in int a, b;
int i;
int acc = 0;
int w[4];
for (i = 0; i < 4; i++) w[i] = (a >> i) ^ (b << i);
for (i = 0; i < 4; i++) acc += w[i] * (i + 1);
out int y;
if (acc < 0) y = -acc; else y = acc;
"""


def main() -> None:
    # -- HLS frontend --------------------------------------------------------
    dfg = compile_source(KERNEL, "quickstart")
    print(f"compiled: {dfg.num_compute} compute ops, "
          f"{len(dfg.input_nodes())} inputs, {len(dfg.output_nodes())} outputs")

    fabric = Fabric(4, 4)
    schedule = schedule_dfg(dfg, capacity=fabric.num_pes)
    design = tech_map(schedule)
    print(f"scheduled into {design.num_contexts} contexts "
          f"(= clock cycles of latency)")

    # -- Phase 1 + Phase 2 ------------------------------------------------------
    result = run_flow(design, fabric)

    print()
    print(format_mapping("Flow result", {
        "MTTF increase": f"{result.mttf_increase:.2f}x",
        "original CPD (ns)": result.remap.original_cpd_ns,
        "re-mapped CPD (ns)": result.remap.final_cpd_ns,
        "CPD preserved": result.cpd_preserved,
        "max stress before (ns)": result.original.stress.max_accumulated_ns,
        "max stress after (ns)": result.remapped.stress.max_accumulated_ns,
        "peak temperature before (K)": result.original.thermal.peak_k,
        "peak temperature after (K)": result.remapped.thermal.peak_k,
        "MILP iterations": result.remap.iterations,
    }))

    print()
    print("Accumulated stress (ns) per PE — aging-unaware floorplan:")
    print(stress_grid(fabric, result.original.stress.accumulated_ns))
    print()
    print("Accumulated stress (ns) per PE — aging-aware floorplan:")
    print(stress_grid(fabric, result.remapped.stress.accumulated_ns))


if __name__ == "__main__":
    main()
