"""Thermal grid solver tests: physical sanity properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import Fabric
from repro.errors import ThermalError
from repro.thermal import ThermalGrid, ThermalGridConfig


@pytest.fixture
def grid():
    return ThermalGrid(Fabric(4, 4))


class TestSteadyState:
    def test_zero_power_is_ambient(self, grid):
        temps = grid.solve(np.zeros(16))
        np.testing.assert_allclose(temps, grid.config.ambient_k, rtol=1e-10)

    def test_uniform_power_uniform_rise(self, grid):
        power = np.full(16, 0.05)
        temps = grid.solve(power)
        expected = grid.config.ambient_k + 0.05 / grid.config.g_vertical_w_per_k
        np.testing.assert_allclose(temps, expected, rtol=1e-9)

    def test_hotspot_peaks_at_source(self, grid):
        power = np.zeros(16)
        power[5] = 0.1
        temps = grid.solve(power)
        assert np.argmax(temps) == 5
        assert temps[5] > grid.config.ambient_k

    def test_energy_conservation(self, grid):
        """Total heat into ambient equals total power injected."""
        rng = np.random.default_rng(1)
        power = rng.uniform(0, 0.1, 16)
        temps = grid.solve(power)
        heat_out = grid.config.g_vertical_w_per_k * (
            temps - grid.config.ambient_k
        )
        assert heat_out.sum() == pytest.approx(power.sum(), rel=1e-9)

    def test_spreading_reduces_peak(self, grid):
        concentrated = np.zeros(16)
        concentrated[0] = 0.2
        spread = np.full(16, 0.2 / 16)
        assert grid.solve(concentrated).max() > grid.solve(spread).max()

    def test_lateral_conduction_couples_neighbors(self):
        fabric = Fabric(4, 4)
        isolated = ThermalGrid(
            fabric, ThermalGridConfig(g_lateral_w_per_k=0.0)
        )
        coupled = ThermalGrid(
            fabric, ThermalGridConfig(g_lateral_w_per_k=0.05)
        )
        power = np.zeros(16)
        power[0] = 0.1
        t_isolated = isolated.solve(power)
        t_coupled = coupled.solve(power)
        assert t_coupled[1] > t_isolated[1]  # neighbour warms up
        assert t_coupled[0] < t_isolated[0]  # source cools down


class TestValidation:
    def test_wrong_shape_rejected(self, grid):
        with pytest.raises(ThermalError):
            grid.solve(np.zeros(9))

    def test_negative_power_rejected(self, grid):
        power = np.zeros(16)
        power[3] = -0.1
        with pytest.raises(ThermalError):
            grid.solve(power)

    def test_bad_config_rejected(self):
        with pytest.raises(ThermalError):
            ThermalGrid(Fabric(2, 2), ThermalGridConfig(g_vertical_w_per_k=0.0))
        with pytest.raises(ThermalError):
            ThermalGrid(Fabric(2, 2), ThermalGridConfig(ambient_k=-3))

    def test_as_grid_reshape(self, grid):
        vector = np.arange(16.0)
        reshaped = grid.as_grid(vector)
        assert reshaped.shape == (4, 4)
        assert reshaped[1, 2] == 6.0


power_vectors = st.lists(
    st.floats(0, 0.2, allow_nan=False), min_size=16, max_size=16
)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(power=power_vectors)
    def test_above_ambient_everywhere(self, power):
        grid = ThermalGrid(Fabric(4, 4))
        temps = grid.solve(np.array(power))
        assert np.all(temps >= grid.config.ambient_k - 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(power=power_vectors, extra=st.integers(0, 15))
    def test_monotone_in_power(self, power, extra):
        """Adding power anywhere cannot cool any PE."""
        grid = ThermalGrid(Fabric(4, 4))
        base = np.array(power)
        bumped = base.copy()
        bumped[extra] += 0.05
        assert np.all(grid.solve(bumped) >= grid.solve(base) - 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(power=power_vectors)
    def test_linearity(self, power):
        """Temperature rise is linear in power (the model is linear)."""
        grid = ThermalGrid(Fabric(4, 4))
        base = np.array(power)
        rise1 = grid.solve(base) - grid.config.ambient_k
        rise2 = grid.solve(2 * base) - grid.config.ambient_k
        np.testing.assert_allclose(rise2, 2 * rise1, atol=1e-8)
