"""Solver portfolio: hedged backend racing with certified winners.

Races the HiGHS backend, the pure-Python branch-and-bound backend, and
(on feasibility models) a greedy LP-rounding prober over each
Algorithm-1 solve.  The first answer that passes independent
certification wins; losers are cooperatively cancelled; flaky lanes are
demoted by per-lane circuit breakers.  See ``docs/robustness.md``
("Solver portfolio").
"""

from repro.portfolio.breaker import (
    ADMIT_HEDGED,
    ADMIT_RUN,
    ADMIT_SKIP,
    FAILURE_KINDS,
    HEDGE_AFTER,
    MAX_PROBE_SKIP,
    OPEN_AFTER,
    BreakerBoard,
    CircuitBreaker,
)
from repro.portfolio.cancel import CancelToken, cancel_scope, current_cancel_token
from repro.portfolio.executor import PortfolioBackend
from repro.portfolio.lanes import (
    DEFAULT_LANES,
    FeasibilityProber,
    lane_applicable,
    make_lane_backend,
)

__all__ = [
    "ADMIT_HEDGED",
    "ADMIT_RUN",
    "ADMIT_SKIP",
    "BreakerBoard",
    "CancelToken",
    "CircuitBreaker",
    "DEFAULT_LANES",
    "FAILURE_KINDS",
    "FeasibilityProber",
    "HEDGE_AFTER",
    "MAX_PROBE_SKIP",
    "OPEN_AFTER",
    "PortfolioBackend",
    "cancel_scope",
    "current_cancel_token",
    "lane_applicable",
    "make_lane_backend",
]
