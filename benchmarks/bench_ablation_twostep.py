"""Ablation A1: two-step LP->ILP vs the monolithic primary ILP.

Section V-A motivates the whole method: the primary ILP formulation "does
not scale well; ... the ILP solver could not find a solution within a
reasonable amount of time (5 days)".  This ablation times the paper's
two-step relaxation against the monolithic solve on the same model at
identical ST_target, and additionally counts branch-and-bound nodes with
the pure-Python reference solver on a tiny instance to show *why*: the
pre-mapping collapses most of the branching tree.

Run::

    pytest benchmarks/bench_ablation_twostep.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_entry
from repro.aging import compute_stress_map
from repro.benchgen.synth import build_benchmark
from repro.core import (
    FrozenPlan,
    RemapConfig,
    build_remap_model,
    default_candidates,
    solve_remap,
)
from repro.place import place_baseline
from repro.timing import analyze, filter_paths


@pytest.fixture(scope="module")
def problem():
    entry = scaled_entry("B13")
    design, fabric = build_benchmark(entry.spec())
    floorplan = place_baseline(design, fabric)
    stress = compute_stress_map(design, floorplan)
    report = analyze(design, floorplan)
    monitored = filter_paths(design, floorplan).non_critical
    frozen = FrozenPlan(positions={}, orientation_of_context={})
    candidates = default_candidates(design, floorplan, frozen, fabric, None)
    # A mildly tight budget: feasible, but not trivially so.
    st_target = 0.75 * stress.max_accumulated_ns
    return design, fabric, frozen, candidates, monitored, report.cpd_ns, st_target


@pytest.mark.parametrize("strategy", ["two-step", "monolithic"])
def test_strategy_runtime(benchmark, problem, strategy):
    design, fabric, frozen, candidates, monitored, cpd, st_target = problem
    config = RemapConfig(strategy=strategy, time_limit_s=60)

    def solve():
        model, variables, _ = build_remap_model(
            design, fabric, frozen, candidates, monitored, cpd, st_target
        )
        return solve_remap(model, variables, config)

    outcome = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert outcome.feasible
    benchmark.extra_info.update(
        {
            "strategy": strategy,
            "status": outcome.stats.get("status"),
            "fixed_fraction": outcome.stats.get("fixed_fraction"),
            "lp_s": outcome.stats.get("lp_s"),
            "ilp_s": outcome.stats.get("ilp_s") or outcome.stats.get("solve_s"),
        }
    )


def test_premapping_shrinks_branching_tree(benchmark):
    """Reference-solver node counts with and without LP pre-mapping."""
    from repro.milp import BranchBoundBackend, threshold_fix

    entry = scaled_entry("B1")
    design, fabric = build_benchmark(entry.spec())
    floorplan = place_baseline(design, fabric)
    stress = compute_stress_map(design, floorplan)
    frozen = FrozenPlan(positions={}, orientation_of_context={})
    candidates = default_candidates(design, floorplan, frozen, fabric, 8)
    st_target = 0.8 * stress.max_accumulated_ns

    def build():
        return build_remap_model(
            design, fabric, frozen, candidates, (), float("inf"), st_target,
            objective="null",
        )

    def run():
        # Monolithic reference solve.
        model, variables, _ = build()
        raw_backend = BranchBoundBackend(max_nodes=20_000)
        raw = model.solve(raw_backend)
        raw_nodes = raw.stats.nodes
        # Two-step: LP relax, fix, then reference-solve the residue.
        model2, variables2, _ = build()
        relaxed = model2.relaxed()
        lp = relaxed.solve()
        relaxed.restore_types()
        threshold_fix(model2, variables2.groups(), lp)
        fixed_backend = BranchBoundBackend(max_nodes=20_000)
        fixed = model2.solve(fixed_backend)
        return raw_nodes, fixed.stats.nodes, raw, fixed

    raw_nodes, fixed_nodes, raw, fixed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert fixed.status.has_solution
    # The pre-mapped tree must be no larger (and is typically far smaller).
    assert fixed_nodes <= raw_nodes
    benchmark.extra_info.update(
        {"monolithic_nodes": raw_nodes, "premapped_nodes": fixed_nodes}
    )
