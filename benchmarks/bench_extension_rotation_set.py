"""Extension benchmark: rotation-set size sweep (saturation curve).

Not a paper table — the measurement for the multi-configuration extension
(see repro.core.multiconfig): how the time-averaged worst-PE stress and
MTTF improve with the number of configurations K, saturating toward the
fabric-mean floor.

Run::

    pytest benchmarks/bench_extension_rotation_set.py --benchmark-only
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled_entry
from repro.aging import compute_stress_map
from repro.benchgen.synth import build_benchmark
from repro.core import Algorithm1Config, RemapConfig, build_rotation_set
from repro.place import place_baseline


@pytest.fixture(scope="module")
def placed():
    entry = scaled_entry("B19")
    design, fabric = build_benchmark(entry.spec())
    return design, fabric, place_baseline(design, fabric)


@pytest.mark.parametrize("k", [1, 2])
def test_rotation_set_k(benchmark, placed, k):
    design, fabric, original = placed
    config = Algorithm1Config(max_iterations=10, remap=RemapConfig(time_limit_s=15))

    rotation = benchmark.pedantic(
        build_rotation_set,
        args=(design, fabric, original),
        kwargs={"k": k, "config": config},
        rounds=1,
        iterations=1,
    )

    original_stress = compute_stress_map(design, original)
    mean_floor = original_stress.mean_accumulated_ns
    combined_max = rotation.combined_stress.max_accumulated_ns
    # Joint levelling can never beat the fabric mean...
    assert combined_max >= mean_floor - 1e-9
    # ...and must not exceed the single aging-unaware worst case.
    assert combined_max <= original_stress.max_accumulated_ns + 1e-9

    benchmark.extra_info.update(
        {
            "k": k,
            "combined_max_ns": round(combined_max, 3),
            "mean_floor_ns": round(mean_floor, 3),
            "mttf_years": round(rotation.mttf.mttf_years, 2),
            "per_config_max_ns": [
                round(v, 3) for v in rotation.per_config_max_ns
            ],
        }
    )
