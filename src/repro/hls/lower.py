"""Lowering: mini-C AST -> dataflow graph.

Synthesizable-C transformations applied here, mirroring what a commercial
HLS frontend (the paper's Musketeer) does before technology mapping:

* **full loop unrolling** — ``for`` loops must have compile-time-constant
  trip counts; the body is replicated per iteration with the loop variable
  constant-folded away;
* **if-conversion** — both branches of an ``if`` are lowered and every
  variable modified in either branch is merged through a SELECT (the DMU
  multiplexer op), turning control flow into dataflow;
* **array scalarisation** — fixed-size arrays become one SSA value per
  element; all indices must constant-fold after unrolling;
* **constant folding** — expressions over constants never materialise
  nodes; constants feeding compute ops become CONST nodes.

The result is a pure :class:`~repro.hls.dfg.DataflowGraph` whose reference
semantics (``DataflowGraph.evaluate``) provably match C integer semantics
— the test suite checks lowered kernels against direct Python evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.opcodes import OpKind
from repro.errors import HLSError, TypeCheckError
from repro.hls.ast_nodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    Conditional,
    Decl,
    Expr,
    For,
    If,
    NumberLit,
    Program,
    Stmt,
    TYPE_WIDTHS,
    UnaryOp,
    VarRef,
)
from repro.hls.dfg import DataflowGraph, _truncate
from repro.hls.parser import parse_source
from repro.hls.typecheck import check_program

#: Hard cap on total unrolled loop iterations, to catch runaway bounds.
MAX_UNROLL = 65536

_BINOP_KINDS = {
    "+": OpKind.ADD,
    "-": OpKind.SUB,
    "*": OpKind.MUL,
    "/": OpKind.DIV,
    "%": OpKind.MOD,
    "&": OpKind.AND,
    "|": OpKind.OR,
    "^": OpKind.XOR,
    "<<": OpKind.SHL,
    ">>": OpKind.SHR,
    "<": OpKind.LT,
    "<=": OpKind.LE,
    ">": OpKind.GT,
    ">=": OpKind.GE,
    "==": OpKind.EQ,
    "!=": OpKind.NE,
    # Logical operators assume boolean (0/1) operands, as produced by the
    # comparison ops; they lower to their bitwise counterparts.
    "&&": OpKind.AND,
    "||": OpKind.OR,
}


@dataclass
class _Value:
    """Either a compile-time constant or a DFG node id, plus its width."""

    width: int
    node: int | None = None
    const: int | None = None

    @property
    def is_const(self) -> bool:
        return self.const is not None


@dataclass
class _VarState:
    """Lowering-time state of one declared variable."""

    width: int
    qualifier: str
    #: Scalar: single-element list.  Array: one value per element.
    values: list[_Value | None] = field(default_factory=list)
    is_array: bool = False


class _Lowerer:
    """Stateful AST walker building the DFG."""

    def __init__(self, program: Program) -> None:
        check_program(program)
        self.program = program
        self.dfg = DataflowGraph(program.name)
        self.env: dict[str, _VarState] = {}
        self.output_order: list[str] = []
        self._unrolled = 0

    # -- value helpers ---------------------------------------------------------
    def _materialize(self, value: _Value) -> int:
        """Node id for a value, creating a CONST node when needed."""
        if value.node is not None:
            return value.node
        node = self.dfg.add_const(int(value.const or 0), width=value.width)
        return node

    def _const_of(self, expr: Expr, context: str) -> int:
        """Evaluate an expression that must be a compile-time constant."""
        value = self._lower_expr(expr)
        if not value.is_const:
            raise HLSError(f"{context} must be a compile-time constant")
        return int(value.const)  # type: ignore[arg-type]

    # -- program -------------------------------------------------------------------
    def run(self) -> DataflowGraph:
        for stmt in self.program.statements:
            self._lower_stmt(stmt)
        # Emit OUTPUT nodes for all `out` variables, in declaration order.
        for name in self.output_order:
            state = self.env[name]
            for i, value in enumerate(state.values):
                if value is None:
                    raise HLSError(f"output {name!r}[{i}] never assigned")
                producer = self._materialize(value)
                label = name if not state.is_array else f"{name}[{i}]"
                self.dfg.add_output(producer, label)
        self.dfg.validate()
        return self.dfg

    # -- statements ---------------------------------------------------------------
    def _lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Decl):
            self._lower_decl(stmt)
        elif isinstance(stmt, Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, If):
            self._lower_if(stmt)
        elif isinstance(stmt, For):
            self._lower_for(stmt)
        else:  # pragma: no cover - exhaustive over Stmt
            raise HLSError(f"cannot lower {type(stmt).__name__}")

    def _lower_decl(self, decl: Decl) -> None:
        width = TYPE_WIDTHS[decl.ctype]
        size = decl.array_size or 1
        state = _VarState(
            width=width,
            qualifier=decl.qualifier,
            values=[None] * size,
            is_array=decl.array_size is not None,
        )
        if decl.qualifier == "in":
            for i in range(size):
                label = decl.name if not state.is_array else f"{decl.name}[{i}]"
                node = self.dfg.add_input(label, width=width)
                state.values[i] = _Value(width=width, node=node)
        elif decl.init is not None:
            value = self._lower_expr(decl.init)
            state.values[0] = _Value(
                width=width, node=value.node, const=value.const
            )
        self.env[decl.name] = state
        if decl.qualifier == "out":
            self.output_order.append(decl.name)

    def _lower_assign(self, stmt: Assign) -> None:
        state = self.env[stmt.target.name]
        index = 0
        if isinstance(stmt.target, ArrayRef):
            index = self._const_of(stmt.target.index, "array index")
            if not 0 <= index < len(state.values):
                raise HLSError(
                    f"line {stmt.line}: index {index} out of bounds for "
                    f"{stmt.target.name}[{len(state.values)}]"
                )
        rhs = self._lower_expr(stmt.value)
        if stmt.op != "=":
            current = state.values[index]
            if current is None:
                raise HLSError(
                    f"line {stmt.line}: {stmt.target.name!r} used before assignment"
                )
            rhs = self._apply_binop(stmt.op[:-1], current, rhs)
        state.values[index] = _Value(width=state.width, node=rhs.node, const=rhs.const)

    def _lower_if(self, stmt: If) -> None:
        cond = self._lower_expr(stmt.cond)
        if cond.is_const:
            # Statically decidable branch: lower only the taken side.
            body = stmt.then_body if cond.const else stmt.else_body
            for sub in body:
                self._lower_stmt(sub)
            return
        # If-conversion: lower both branches on snapshots, merge via SELECT.
        snapshot = self._snapshot_env()
        for sub in stmt.then_body:
            self._lower_stmt(sub)
        then_env = self._snapshot_env()
        self._restore_env(snapshot)
        for sub in stmt.else_body:
            self._lower_stmt(sub)
        else_env = self._snapshot_env()
        self._restore_env(snapshot)
        cond_node = self._materialize(cond)
        self._merge_envs(cond_node, then_env, else_env)

    def _lower_for(self, stmt: For) -> None:
        state = self.env[stmt.var]
        current = self._const_of(stmt.init, "loop initialiser")
        while True:
            state.values[0] = _Value(width=state.width, const=current)
            cond = self._lower_expr(stmt.cond)
            if not cond.is_const:
                raise HLSError(
                    f"line {stmt.line}: loop condition must be compile-time constant"
                )
            if not cond.const:
                break
            self._unrolled += 1
            if self._unrolled > MAX_UNROLL:
                raise HLSError(
                    f"line {stmt.line}: loop unrolling exceeded {MAX_UNROLL} iterations"
                )
            for sub in stmt.body:
                self._lower_stmt(sub)
            # Apply the step to the compile-time loop variable.
            step_value = self._lower_expr(stmt.step.value)
            if not step_value.is_const:
                raise HLSError(
                    f"line {stmt.line}: loop step must be compile-time constant"
                )
            if stmt.step.op == "=":
                current = int(step_value.const)  # type: ignore[arg-type]
            else:
                current = _fold_binop(
                    stmt.step.op[:-1], current, int(step_value.const), state.width  # type: ignore[arg-type]
                )
        state.values[0] = _Value(width=state.width, const=current)

    # -- environment snapshots for if-conversion ------------------------------
    def _snapshot_env(self) -> dict[str, list[_Value | None]]:
        return {name: list(state.values) for name, state in self.env.items()}

    def _restore_env(self, snapshot: dict[str, list[_Value | None]]) -> None:
        for name, values in snapshot.items():
            self.env[name].values = list(values)

    def _merge_envs(
        self,
        cond_node: int,
        then_env: dict[str, list[_Value | None]],
        else_env: dict[str, list[_Value | None]],
    ) -> None:
        for name, state in self.env.items():
            then_values = then_env[name]
            else_values = else_env[name]
            for i in range(len(state.values)):
                t, e = then_values[i], else_values[i]
                if _values_equal(t, e):
                    state.values[i] = t
                    continue
                if t is None or e is None:
                    # Assigned on one path only: conservatively require both.
                    raise HLSError(
                        f"variable {name!r} assigned on only one branch of an "
                        "if with no prior value"
                    )
                select = self.dfg.add_node(
                    OpKind.SELECT,
                    (cond_node, self._materialize(t), self._materialize(e)),
                    width=state.width,
                )
                state.values[i] = _Value(width=state.width, node=select)

    # -- expressions --------------------------------------------------------------
    def _lower_expr(self, expr: Expr) -> _Value:
        if isinstance(expr, NumberLit):
            return _Value(width=32, const=expr.value)
        if isinstance(expr, VarRef):
            return self._read_var(expr.name, 0, expr.line)
        if isinstance(expr, ArrayRef):
            index = self._const_of(expr.index, "array index")
            return self._read_var(expr.name, index, expr.line)
        if isinstance(expr, UnaryOp):
            operand = self._lower_expr(expr.operand)
            return self._apply_unop(expr.op, operand)
        if isinstance(expr, BinaryOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            return self._apply_binop(expr.op, left, right)
        if isinstance(expr, Conditional):
            cond = self._lower_expr(expr.cond)
            if cond.is_const:
                return self._lower_expr(expr.if_true if cond.const else expr.if_false)
            if_true = self._lower_expr(expr.if_true)
            if_false = self._lower_expr(expr.if_false)
            width = max(if_true.width, if_false.width)
            node = self.dfg.add_node(
                OpKind.SELECT,
                (
                    self._materialize(cond),
                    self._materialize(if_true),
                    self._materialize(if_false),
                ),
                width=width,
            )
            return _Value(width=width, node=node)
        raise HLSError(f"cannot lower expression {type(expr).__name__}")

    def _read_var(self, name: str, index: int, line: int) -> _Value:
        state = self.env[name]
        if not 0 <= index < len(state.values):
            raise HLSError(
                f"line {line}: index {index} out of bounds for "
                f"{name}[{len(state.values)}]"
            )
        value = state.values[index]
        if value is None:
            raise HLSError(f"line {line}: {name!r} used before assignment")
        return value

    def _apply_unop(self, op: str, operand: _Value) -> _Value:
        if operand.is_const:
            c = int(operand.const)  # type: ignore[arg-type]
            if op == "-":
                result = -c
            elif op == "~":
                result = ~c
            elif op == "!":
                result = int(c == 0)
            else:
                raise HLSError(f"unknown unary operator {op!r}")
            return _Value(width=operand.width, const=_truncate(result, operand.width))
        if op == "-":
            node = self.dfg.add_node(
                OpKind.NEG, (self._materialize(operand),), width=operand.width
            )
        elif op == "~":
            node = self.dfg.add_node(
                OpKind.NOT, (self._materialize(operand),), width=operand.width
            )
        elif op == "!":
            zero = self.dfg.add_const(0, width=operand.width)
            node = self.dfg.add_node(
                OpKind.EQ, (self._materialize(operand), zero), width=operand.width
            )
        else:
            raise HLSError(f"unknown unary operator {op!r}")
        return _Value(width=operand.width, node=node)

    def _apply_binop(self, op: str, left: _Value, right: _Value) -> _Value:
        kind = _BINOP_KINDS.get(op)
        if kind is None:
            raise HLSError(f"unknown binary operator {op!r}")
        width = max(left.width, right.width)
        if left.is_const and right.is_const:
            folded = _fold_binop(op, int(left.const), int(right.const), width)  # type: ignore[arg-type]
            return _Value(width=width, const=folded)
        node = self.dfg.add_node(
            kind,
            (self._materialize(left), self._materialize(right)),
            width=width,
        )
        return _Value(width=width, node=node)


def _values_equal(a: _Value | None, b: _Value | None) -> bool:
    if a is None or b is None:
        return a is b
    return a.node == b.node and a.const == b.const


def _fold_binop(op: str, a: int, b: int, width: int) -> int:
    """Compile-time evaluation matching the DFG reference semantics."""
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op == "/":
        result = int(a / b) if b else 0
    elif op == "%":
        result = int(abs(a) % abs(b)) * (1 if a >= 0 else -1) if b else 0
    elif op == "&" or op == "&&":
        result = (a & b) if op == "&" else int(bool(a) and bool(b))
    elif op == "|" or op == "||":
        result = (a | b) if op == "|" else int(bool(a) or bool(b))
    elif op == "^":
        result = a ^ b
    elif op == "<<":
        result = a << (b % width)
    elif op == ">>":
        result = a >> (b % width)
    elif op == "<":
        result = int(a < b)
    elif op == "<=":
        result = int(a <= b)
    elif op == ">":
        result = int(a > b)
    elif op == ">=":
        result = int(a >= b)
    elif op == "==":
        result = int(a == b)
    elif op == "!=":
        result = int(a != b)
    else:
        raise HLSError(f"cannot fold operator {op!r}")
    return _truncate(result, width)


def lower_program(program: Program) -> DataflowGraph:
    """Lower a checked AST to a dataflow graph."""
    return _Lowerer(program).run()


def compile_source(source: str, name: str = "program") -> DataflowGraph:
    """Front-door: mini-C text -> validated dataflow graph."""
    try:
        program = parse_source(source, name)
    except TypeCheckError:
        raise
    return lower_program(program)
