"""Steady-state compact thermal model on the PE grid.

This is the HotSpot substitute: the same block-level abstraction HotSpot's
grid model uses — each PE is a thermal cell with lateral conduction to its
4-neighbours and a vertical conduction path (package + heat sink) to
ambient.  Steady state solves the linear system

``(G_lat_laplacian + G_vert I) T = P + G_vert T_amb``

with scipy sparse LU.  Transient behaviour is irrelevant here because the
aging model consumes long-term-average temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.arch.fabric import Fabric
from repro.errors import ThermalError
from repro.kernels import vectorized


@dataclass(frozen=True)
class ThermalGridConfig:
    """Conduction constants of the compact model.

    Attributes
    ----------
    g_lateral_w_per_k:
        Conductance between adjacent PE cells.
    g_vertical_w_per_k:
        Conductance from each cell through the package to ambient.
    ambient_k:
        Ambient (heat-sink) temperature in kelvin.
    """

    g_lateral_w_per_k: float = 0.020
    g_vertical_w_per_k: float = 0.008
    ambient_k: float = 318.15  # 45 C case temperature

    def validate(self) -> None:
        if self.g_lateral_w_per_k < 0 or self.g_vertical_w_per_k <= 0:
            raise ThermalError(
                "conductances must be positive (vertical strictly so)"
            )
        if self.ambient_k <= 0:
            raise ThermalError(f"ambient temperature {self.ambient_k} K invalid")


class ThermalGrid:
    """Pre-factorised steady-state solver for one fabric geometry.

    The conduction matrix is LU-factorised **once** at construction
    (SuperLU via :func:`scipy.sparse.linalg.splu`); every steady-state
    solve — scalar :meth:`solve` or batched :meth:`solve_many` — is then
    a pair of triangular back-substitutions.  Both paths share the same
    factorisation, and SuperLU back-substitutes multi-RHS systems one
    column at a time, so a batched solve is bitwise identical to the
    per-context scalar solves it replaces.
    """

    def __init__(self, fabric: Fabric, config: ThermalGridConfig | None = None):
        self.fabric = fabric
        self.config = config or ThermalGridConfig()
        self.config.validate()
        self._matrix = self._build_matrix()
        self._lu = splu(self._matrix)

    def _build_matrix(self) -> sparse.csc_matrix:
        n = self.fabric.num_pes
        g_lat = self.config.g_lateral_w_per_k
        g_vert = self.config.g_vertical_w_per_k
        if vectorized():
            from repro.kernels.thermal import laplacian_coo

            rows, cols, data = laplacian_coo(self.fabric, g_lat, g_vert)
            return sparse.csc_matrix((data, (rows, cols)), shape=(n, n))
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for i in range(n):
            neighbors = self.fabric.neighbors(i)
            diagonal = g_vert + g_lat * len(neighbors)
            rows.append(i)
            cols.append(i)
            data.append(diagonal)
            for j in neighbors:
                rows.append(i)
                cols.append(j)
                data.append(-g_lat)
        return sparse.csc_matrix((data, (rows, cols)), shape=(n, n))

    def solve(self, power_w: np.ndarray) -> np.ndarray:
        """Steady-state temperature (K) per PE for a power map (W)."""
        power_w = np.asarray(power_w, dtype=float)
        n = self.fabric.num_pes
        if power_w.shape != (n,):
            raise ThermalError(f"power vector shape {power_w.shape} != ({n},)")
        if np.any(power_w < 0):
            raise ThermalError("negative PE power")
        rhs = power_w + self.config.g_vertical_w_per_k * self.config.ambient_k
        temperatures = self._lu.solve(rhs)
        return np.asarray(temperatures, dtype=float)

    def solve_many(self, power_w: np.ndarray) -> np.ndarray:
        """Steady-state temperatures for many power maps at once.

        ``power_w`` has shape ``(contexts, num_pes)``; the result has the
        same shape.  One multi-RHS back-substitution against the shared
        LU factorisation — per-row results are bitwise equal to
        :meth:`solve` on each row.
        """
        power_w = np.asarray(power_w, dtype=float)
        n = self.fabric.num_pes
        if power_w.ndim != 2 or power_w.shape[1] != n:
            raise ThermalError(
                f"power matrix shape {power_w.shape} incompatible with ({n},)"
            )
        if np.any(power_w < 0):
            raise ThermalError("negative PE power")
        if power_w.shape[0] == 0:
            return np.empty_like(power_w)
        rhs = power_w + self.config.g_vertical_w_per_k * self.config.ambient_k
        temperatures = self._lu.solve(np.ascontiguousarray(rhs.T))
        return np.asarray(temperatures, dtype=float).T

    def as_grid(self, per_pe: np.ndarray) -> np.ndarray:
        """Reshape a per-PE vector into the (rows, cols) grid layout."""
        return np.asarray(per_pe, dtype=float).reshape(
            self.fabric.rows, self.fabric.cols
        )
