"""Stress-time maps: how much each PE works, per context and accumulated.

Section III of the paper: the stress time a PE accumulates in one context
equals the active time of its engaged functional unit within the clock
cycle (unit delay; e.g. ALU 0.87 ns, DMU 3.14 ns), i.e. stress rate x
clock period.  Summing over all contexts of one schedule iteration gives
the *accumulated stress time* — the quantity the MILP levels, and (divided
by the schedule duration) the long-term duty cycle that drives both the
thermal and the NBTI models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.context import Floorplan
from repro.errors import AgingError
from repro.hls.allocate import MappedDesign
from repro.kernels import stress as stress_kernel
from repro.kernels import vectorized


@dataclass
class StressMap:
    """Per-PE stress times for one floorplan.

    Attributes
    ----------
    per_context_ns:
        ``(contexts, num_pes)`` stress time each PE accrues while each
        context is resident, in ns per schedule iteration.
    clock_period_ns:
        The design clock.
    """

    per_context_ns: np.ndarray
    clock_period_ns: float

    @property
    def num_contexts(self) -> int:
        return int(self.per_context_ns.shape[0])

    @property
    def num_pes(self) -> int:
        return int(self.per_context_ns.shape[1])

    @property
    def accumulated_ns(self) -> np.ndarray:
        """Accumulated stress time per PE over one schedule iteration."""
        return self.per_context_ns.sum(axis=0)

    @property
    def max_accumulated_ns(self) -> float:
        """The paper's headline quantity: the worst PE's accumulated stress."""
        return float(self.accumulated_ns.max(initial=0.0))

    @property
    def mean_accumulated_ns(self) -> float:
        """Average accumulated stress over all PEs (the paper's ST_low)."""
        return float(self.accumulated_ns.mean()) if self.num_pes else 0.0

    @property
    def total_ns(self) -> float:
        """Total stress deposited per schedule iteration (re-mapping invariant)."""
        return float(self.per_context_ns.sum())

    def duty_per_context(self) -> np.ndarray:
        """Per-context duty cycles: stress within the cycle / clock period."""
        return self.per_context_ns / self.clock_period_ns

    def average_duty(self) -> np.ndarray:
        """Long-term duty cycle of each PE over the whole schedule."""
        period = self.num_contexts * self.clock_period_ns
        return self.accumulated_ns / period

    def argmax_pe(self) -> int:
        """Index of the most-stressed PE."""
        return int(np.argmax(self.accumulated_ns))


def compute_stress_map(design: MappedDesign, floorplan: Floorplan) -> StressMap:
    """Build the stress map of a design under a floorplan.

    Raises :class:`AgingError` if any op's stress exceeds the clock period
    (a physically impossible duty > 1).

    Under ``REPRO_KERNELS=vector`` (the default) the map is assembled by
    one :mod:`repro.kernels.stress` scatter-add over cached per-design
    index arrays — bit-identical accumulation (``np.add.at`` applies
    deposits sequentially in index order, the scalar loop's order).  The
    kernel declines on any validation failure so errors always carry the
    scalar loop's exact first-offender message.
    """
    if vectorized():
        per_context = stress_kernel.per_context_stress(design, floorplan)
        if per_context is not None:
            return StressMap(
                per_context_ns=per_context,
                clock_period_ns=design.clock_period_ns,
            )
    return _compute_stress_map_scalar(design, floorplan)


def _compute_stress_map_scalar(
    design: MappedDesign, floorplan: Floorplan
) -> StressMap:
    """The original per-op Python loop (the kernel's reference path)."""
    num_pes = floorplan.fabric.num_pes
    per_context = np.zeros((design.num_contexts, num_pes))
    for op in design.ops.values():
        if op.stress_ns > design.clock_period_ns + 1e-9:
            raise AgingError(
                f"op {op.op_id} stress {op.stress_ns}ns exceeds the clock "
                f"period {design.clock_period_ns}ns"
            )
        pe_index = floorplan.pe_of.get(op.op_id)
        if pe_index is None:
            raise AgingError(f"op {op.op_id} is not placed")
        per_context[op.context, pe_index] += op.stress_ns
    return StressMap(
        per_context_ns=per_context, clock_period_ns=design.clock_period_ns
    )


def stress_summary(stress: StressMap) -> dict[str, float]:
    """Headline statistics used in reports and tests."""
    accumulated = stress.accumulated_ns
    used = accumulated[accumulated > 0]
    return {
        "max_ns": stress.max_accumulated_ns,
        "mean_ns": stress.mean_accumulated_ns,
        "total_ns": stress.total_ns,
        "used_pes": int((accumulated > 0).sum()),
        "max_over_mean": (
            stress.max_accumulated_ns / stress.mean_accumulated_ns
            if stress.mean_accumulated_ns
            else 0.0
        ),
        "used_mean_ns": float(used.mean()) if used.size else 0.0,
    }
