"""Vector/scalar equivalence: every kernel output must be bit-identical.

The kernels' contract (see ``repro/kernels/__init__.py``) is *bitwise*
equality with the scalar reference loops, not approximate agreement —
these tests therefore compare with ``==``, never ``pytest.approx``.
Designs come from :mod:`repro.benchgen` (seeded, so failures reproduce)
and each design is checked under both the baseline placement and
several random placements.
"""

from __future__ import annotations

import random

import pytest

from repro.aging.stress import compute_stress_map
from repro.arch import Floorplan
from repro.benchgen import SyntheticSpec, build_benchmark
from repro.core.flow import AgingAwareFlow
from repro.errors import MappingError
from repro.kernels import kernels_scope
from repro.place import place_baseline
from repro.thermal.hotspot import ThermalSimulator
from repro.timing import all_critical_paths, analyze, build_timing_graphs
from repro.timing.kpaths import filter_paths

SPECS = [
    SyntheticSpec(name="eqA", num_contexts=1, fabric_dim=4, total_ops=12, seed=1),
    SyntheticSpec(name="eqB", num_contexts=3, fabric_dim=5, total_ops=40, seed=2),
    SyntheticSpec(name="eqC", num_contexts=6, fabric_dim=8, total_ops=150, seed=3),
]


def _random_floorplan(design, fabric, seed):
    """A legal random placement: per context, ops on distinct random PEs."""
    rng = random.Random(seed)
    floorplan = Floorplan(fabric, design.num_contexts)
    for context in range(design.num_contexts):
        ops = [op.op_id for op in design.ops_in_context(context)]
        pes = rng.sample(range(fabric.num_pes), len(ops))
        for op_id, pe in zip(ops, pes):
            floorplan.bind(op_id, context, pe)
    return floorplan


def _placements(design, fabric):
    yield place_baseline(design, fabric)
    for seed in (11, 12, 13):
        yield _random_floorplan(design, fabric, seed)


def _both_modes(fn):
    with kernels_scope("scalar"):
        reference = fn()
    with kernels_scope("vector"):
        vector = fn()
    return reference, vector


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestStaEquivalence:
    def test_analyze_bit_identical(self, spec):
        design, fabric = build_benchmark(spec)
        graphs = build_timing_graphs(design)
        for floorplan in _placements(design, fabric):
            ref, vec = _both_modes(lambda: analyze(design, floorplan, graphs))
            assert ref.cpd_ns == vec.cpd_ns
            for a, b in zip(ref.per_context, vec.per_context):
                assert a.context == b.context
                assert a.cpd_ns == b.cpd_ns
                assert a.critical_ops == b.critical_ops
                assert a.arrival_ns == b.arrival_ns

    def test_critical_paths_identical(self, spec):
        design, fabric = build_benchmark(spec)
        graphs = build_timing_graphs(design)
        for floorplan in _placements(design, fabric):
            ref, vec = _both_modes(
                lambda: all_critical_paths(design, floorplan, graphs)
            )
            assert [(p.context, p.chain) for p in ref] == [
                (p.context, p.chain) for p in vec
            ]

    def test_path_filter_identical(self, spec):
        design, fabric = build_benchmark(spec)
        graphs = build_timing_graphs(design)
        for floorplan in _placements(design, fabric):
            ref, vec = _both_modes(
                lambda: filter_paths(design, floorplan, graphs=graphs)
            )
            assert ref.truncated == vec.truncated
            assert len(ref.paths) == len(vec.paths)
            for a, b in zip(ref.paths, vec.paths):
                assert a.path.context == b.path.context
                assert a.path.chain == b.path.chain
                assert a.delay_ns == b.delay_ns
                assert a.is_critical == b.is_critical


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestAgingThermalEquivalence:
    def test_stress_maps_bit_identical(self, spec):
        design, fabric = build_benchmark(spec)
        for floorplan in _placements(design, fabric):
            ref, vec = _both_modes(
                lambda: compute_stress_map(design, floorplan)
            )
            assert ref.clock_period_ns == vec.clock_period_ns
            assert (ref.per_context_ns == vec.per_context_ns).all()

    def test_thermal_maps_bit_identical(self, spec):
        design, fabric = build_benchmark(spec)
        floorplan = place_baseline(design, fabric)
        duty = compute_stress_map(design, floorplan).duty_per_context()

        def run():
            return ThermalSimulator(fabric).simulate(duty)

        ref, vec = _both_modes(run)
        assert (ref.per_context_k == vec.per_context_k).all()
        assert (ref.accumulated_k == vec.accumulated_k).all()
        assert ref.hottest_pe == vec.hottest_pe

    def test_full_evaluation_bit_identical(self, spec):
        design, fabric = build_benchmark(spec)
        floorplan = place_baseline(design, fabric)
        flow = AgingAwareFlow()

        def run():
            return flow.evaluate(design, fabric, floorplan)

        ref, vec = _both_modes(run)
        assert ref.mttf.mttf_s == vec.mttf.mttf_s
        assert ref.mttf.limiting_pe == vec.mttf.limiting_pe
        assert (ref.mttf.per_pe_mttf_s == vec.mttf.per_pe_mttf_s).all()
        assert (ref.thermal.accumulated_k == vec.thermal.accumulated_k).all()
        assert (ref.stress.per_context_ns == vec.stress.per_context_ns).all()


class TestFallbacks:
    def test_unbound_op_raises_same_error_in_both_modes(self):
        design, fabric = build_benchmark(SPECS[1])
        floorplan = place_baseline(design, fabric)
        missing = next(iter(design.ops))
        floorplan.pe_of.pop(missing)

        def run():
            try:
                analyze(design, floorplan)
            except MappingError as exc:
                return ("MappingError", str(exc))
            return None  # pragma: no cover

        ref, vec = _both_modes(run)
        assert ref == vec
        assert ref is not None
