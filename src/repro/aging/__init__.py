"""NBTI aging and MTTF models (paper Section III).

Stress-time maps from floorplans, the Eq. (1) threshold-voltage shift
model, and fabric MTTF evaluation including the Fig. 2(b) Vth curves.
"""

from repro.aging.mttf import (
    MttfReport,
    VthCurve,
    compute_mttf,
    mttf_increase,
    vth_curve,
)
from repro.aging.nbti import NbtiModel, calibrate_prefactor
from repro.aging.stress import StressMap, compute_stress_map, stress_summary

__all__ = [
    "MttfReport",
    "NbtiModel",
    "StressMap",
    "VthCurve",
    "calibrate_prefactor",
    "compute_mttf",
    "compute_stress_map",
    "mttf_increase",
    "stress_summary",
    "vth_curve",
]
