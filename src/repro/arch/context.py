"""Multi-context floorplans: per-context operation-to-PE bindings.

A multi-context CGRRA time-shares one physical fabric: context ``i`` is the
configuration loaded in clock cycle ``i`` (paper Fig. 1).  A
:class:`Floorplan` records, for every compute operation, which context it
executes in and which PE it is bound to.  Re-mapping (the paper's Phase 2)
produces a new Floorplan with identical contexts but different bindings.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.arch.fabric import Fabric
from repro.errors import MappingError


class Floorplan:
    """Binding of operations to (context, PE) slots on a fabric.

    Attributes
    ----------
    fabric:
        The target :class:`~repro.arch.fabric.Fabric`.
    num_contexts:
        Number of contexts (= clock cycles = latency, per Section VI).
    context_of:
        ``{op_id: context index}`` — fixed by scheduling, never changed by
        re-mapping.
    pe_of:
        ``{op_id: PE linear index}`` — the floorplan proper.
    """

    def __init__(
        self,
        fabric: Fabric,
        num_contexts: int,
        context_of: Mapping[int, int] | None = None,
        pe_of: Mapping[int, int] | None = None,
    ) -> None:
        if num_contexts < 1:
            raise MappingError(f"num_contexts must be positive, got {num_contexts}")
        self.fabric = fabric
        self.num_contexts = num_contexts
        self.context_of: dict[int, int] = {}
        self.pe_of: dict[int, int] = {}
        #: (context, pe_index) -> op_id occupancy index, kept in sync by bind().
        self._slots: dict[tuple[int, int], int] = {}
        if context_of or pe_of:
            context_of = dict(context_of or {})
            pe_of = dict(pe_of or {})
            if set(context_of) != set(pe_of):
                raise MappingError(
                    "context_of and pe_of must bind the same operations"
                )
            for op_id in context_of:
                self.bind(op_id, context_of[op_id], pe_of[op_id])

    # -- construction -----------------------------------------------------------
    def bind(self, op_id: int, context: int, pe_index: int) -> None:
        """Bind an operation to a PE in a context, validating the slot."""
        if not 0 <= context < self.num_contexts:
            raise MappingError(
                f"context {context} out of range 0..{self.num_contexts - 1}"
            )
        if not 0 <= pe_index < self.fabric.num_pes:
            raise MappingError(
                f"PE index {pe_index} out of range 0..{self.fabric.num_pes - 1}"
            )
        slot = (context, pe_index)
        current = self._slots.get(slot)
        if current is not None and current != op_id:
            raise MappingError(
                f"PE {pe_index} in context {context} already hosts op {current}"
            )
        if op_id in self.context_of:
            old_slot = (self.context_of[op_id], self.pe_of[op_id])
            if self._slots.get(old_slot) == op_id:
                del self._slots[old_slot]
        self.context_of[op_id] = context
        self.pe_of[op_id] = pe_index
        self._slots[slot] = op_id

    def rebind(self, op_id: int, pe_index: int) -> None:
        """Move an already-bound operation to a different PE (same context)."""
        if op_id not in self.context_of:
            raise MappingError(f"op {op_id} is not bound")
        self.bind(op_id, self.context_of[op_id], pe_index)

    def swap(self, op_a: int, op_b: int) -> None:
        """Exchange the PEs of two operations bound in the same context."""
        if op_a not in self.context_of or op_b not in self.context_of:
            raise MappingError("both operations must be bound before swapping")
        context = self.context_of[op_a]
        if context != self.context_of[op_b]:
            raise MappingError(
                f"cannot swap ops across contexts ({context} vs "
                f"{self.context_of[op_b]})"
            )
        pe_a, pe_b = self.pe_of[op_a], self.pe_of[op_b]
        del self._slots[(context, pe_a)]
        del self._slots[(context, pe_b)]
        self.pe_of[op_a], self.pe_of[op_b] = pe_b, pe_a
        self._slots[(context, pe_b)] = op_a
        self._slots[(context, pe_a)] = op_b

    def copy(self) -> "Floorplan":
        """Deep copy (bindings are copied; the fabric object is shared)."""
        clone = Floorplan(self.fabric, self.num_contexts)
        clone.context_of = dict(self.context_of)
        clone.pe_of = dict(self.pe_of)
        clone._slots = dict(self._slots)
        return clone

    def with_bindings(self, new_pe_of: Mapping[int, int]) -> "Floorplan":
        """A copy of this floorplan with some operations re-bound.

        ``new_pe_of`` maps op ids to new PE indices; unmentioned operations
        keep their binding.  The result is validated for slot exclusivity.
        """
        result = Floorplan(self.fabric, self.num_contexts)
        for op_id, context in self.context_of.items():
            pe_index = new_pe_of.get(op_id, self.pe_of[op_id])
            if op_id not in self.pe_of:
                raise MappingError(f"op {op_id} is not bound in the source floorplan")
            result.bind(op_id, context, pe_index)
        unknown = set(new_pe_of) - set(self.context_of)
        if unknown:
            raise MappingError(
                f"ops {sorted(unknown)} are not bound in the source floorplan"
            )
        return result

    # -- queries ----------------------------------------------------------------
    @property
    def ops(self) -> Iterable[int]:
        return self.pe_of.keys()

    @property
    def num_ops(self) -> int:
        return len(self.pe_of)

    def ops_in_context(self, context: int) -> list[int]:
        """Operation ids bound in ``context`` (sorted for determinism)."""
        return sorted(op for op, ctx in self.context_of.items() if ctx == context)

    def op_on(self, context: int, pe_index: int) -> int | None:
        """The op occupying a (context, PE) slot, or None."""
        return self._slots.get((context, pe_index))

    def occupancy(self, context: int) -> dict[int, int]:
        """``{pe_index: op_id}`` for one context."""
        return {
            pe_index: op
            for (ctx, pe_index), op in self._slots.items()
            if ctx == context
        }

    def used_pes(self, context: int) -> set[int]:
        """PE indices used in one context."""
        return {pe_index for (ctx, pe_index) in self._slots if ctx == context}

    def usage_counts(self) -> list[int]:
        """Number of contexts in which each PE is used, indexed by PE.

        This is the quantity levelled in the paper's Fig. 2(a) toy example
        (unit stress per use).
        """
        counts = [0] * self.fabric.num_pes
        for (_, pe_index) in self._slots:
            counts[pe_index] += 1
        return counts

    def position_of(self, op_id: int) -> tuple[int, int]:
        """Grid position of an operation's PE."""
        try:
            pe_index = self.pe_of[op_id]
        except KeyError as exc:
            raise MappingError(f"op {op_id} is not bound") from exc
        pe = self.fabric.pe(pe_index)
        return (pe.row, pe.col)

    def utilization(self) -> float:
        """Average fraction of the fabric used per context.

        Table I groups benchmarks into low / medium / high *fabric usage
        rate*; this is that rate: PE# / (contexts x fabric size).
        """
        total_slots = self.num_contexts * self.fabric.num_pes
        return self.num_ops / total_slots if total_slots else 0.0

    # -- validation --------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`MappingError` on any structural violation."""
        if set(self.context_of) != set(self.pe_of):
            raise MappingError("context_of and pe_of must bind the same operations")
        seen: dict[tuple[int, int], int] = {}
        for op, ctx in self.context_of.items():
            if not 0 <= ctx < self.num_contexts:
                raise MappingError(f"op {op}: context {ctx} out of range")
            pe_index = self.pe_of[op]
            if not 0 <= pe_index < self.fabric.num_pes:
                raise MappingError(f"op {op}: PE {pe_index} out of range")
            slot = (ctx, pe_index)
            if slot in seen:
                raise MappingError(
                    f"context {ctx}: PE {pe_index} hosts both op {seen[slot]} "
                    f"and op {op}"
                )
            seen[slot] = op

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Floorplan):
            return NotImplemented
        return (
            self.num_contexts == other.num_contexts
            and self.fabric.rows == other.fabric.rows
            and self.fabric.cols == other.fabric.cols
            and self.context_of == other.context_of
            and self.pe_of == other.pe_of
        )

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.fabric.rows}x{self.fabric.cols}, "
            f"contexts={self.num_contexts}, ops={self.num_ops}, "
            f"util={self.utilization():.2f})"
        )
