"""Wall-clock budgets for the CAD flow.

A :class:`Deadline` is a single budget that bounds an entire flow run —
Phase 1 placement/annealing, thermal solves, Algorithm 1's relax loop and
every MILP solve underneath it.  It is threaded through the flow the same
way spans are: a :mod:`contextvars` variable set by :func:`deadline_scope`,
so deeply nested library code (solver backends, the annealer, the thermal
grid) can consult :func:`current_deadline` without every signature growing
a parameter.

Semantics
---------
* :meth:`Deadline.check` raises :class:`~repro.errors.DeadlineExceededError`
  once the budget is spent.  It is called at *iteration boundaries* —
  Algorithm 1 iterations, MILP solve entry, thermal context solves — never
  inside inner numeric loops.
* Work that can stop early without failing (the simulated-annealing
  refinement) polls :attr:`Deadline.expired` and stops instead of raising.
* Inside a :func:`shielded` scope, expired checks record metrics but do
  not raise — Phase 1 runs shielded because its stages are mandatory and
  intrinsically bounded, so overrunning there is logged, not fatal.
* :meth:`Deadline.cap` shrinks a solver time limit to the remaining
  budget, so a single long MILP solve cannot blow through the deadline.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import time
from typing import Iterator

from repro.errors import DeadlineExceededError
from repro.obs import counter, event, get_logger

_log = get_logger("resilience.deadline")

_current: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_resilience_deadline", default=None
)
_shield: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_resilience_deadline_shield", default=False
)

#: Smallest time limit (s) handed to a solver once the budget runs low;
#: keeps HiGHS from being called with a zero/negative limit.
MIN_SOLVER_LIMIT_S = 0.05


class Deadline:
    """A wall-clock budget anchored at its creation time.

    Use :meth:`after` for a bounded budget and :meth:`unlimited` for the
    no-op budget (every check passes, every cap is identity).
    """

    __slots__ = ("budget_s", "started_s", "_reported")

    def __init__(self, budget_s: float | None) -> None:
        if budget_s is not None and budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = budget_s
        self.started_s = time.perf_counter()
        self._reported = False

    # -- constructors ---------------------------------------------------------
    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A budget of ``seconds`` starting now."""
        return cls(float(seconds))

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A budget that never expires."""
        return cls(None)

    # -- accessors ------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        return self.budget_s is not None

    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started_s

    def remaining_s(self) -> float:
        """Seconds left; ``math.inf`` for unlimited budgets."""
        if self.budget_s is None:
            return math.inf
        return self.budget_s - self.elapsed_s()

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    # -- enforcement ----------------------------------------------------------
    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent.

        Inside a :func:`shielded` scope the overrun is recorded (metrics +
        one warning) but execution continues.
        """
        if not self.expired:
            return
        counter("deadline.expired_checks").inc()
        if not self._reported:
            self._reported = True
            event(
                "deadline.expired",
                stage=stage,
                budget_s=self.budget_s,
                elapsed_s=self.elapsed_s(),
            )
            _log.warning(
                "deadline of %.3fs expired at %s (elapsed %.3fs)",
                self.budget_s, stage, self.elapsed_s(),
            )
        if _shield.get():
            return
        counter("deadline.hits").inc()
        raise DeadlineExceededError(stage, float(self.budget_s), self.elapsed_s())

    def cap(self, limit_s: float | None) -> float | None:
        """Shrink a solver time limit to the remaining budget.

        Returns ``limit_s`` unchanged for unlimited deadlines; otherwise
        ``min(limit_s, remaining)``, floored at :data:`MIN_SOLVER_LIMIT_S`
        so backends always receive a positive limit.
        """
        remaining = self.remaining_s()
        if not math.isfinite(remaining):
            return limit_s
        remaining = max(remaining, MIN_SOLVER_LIMIT_S)
        if limit_s is None:
            return remaining
        return min(float(limit_s), remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.budget_s is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.budget_s:.3f}s, remaining={self.remaining_s():.3f}s)"


#: Shared no-op budget returned when no deadline is in scope.
_UNLIMITED = Deadline.unlimited()


def current_deadline() -> Deadline:
    """The deadline governing this context (unlimited when none is set)."""
    return _current.get() or _UNLIMITED


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline]:
    """Install ``deadline`` as the current budget for the ``with`` body.

    ``None`` leaves the enclosing scope's deadline in force (so wrappers
    can pass their optional parameter straight through).
    """
    if deadline is None:
        yield current_deadline()
        return
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


@contextlib.contextmanager
def shielded() -> Iterator[None]:
    """Suppress deadline *raises* for the ``with`` body (metrics still fire).

    Used around mandatory, intrinsically bounded work (Phase 1): skipping
    it cannot produce a result at all, so an overrun is recorded rather
    than fatal.
    """
    token = _shield.set(True)
    try:
        yield
    finally:
        _shield.reset(token)
