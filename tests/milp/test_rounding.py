"""Tests for the LP-relaxation rounding strategies (paper Step 1)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ModelError
from repro.milp import (
    Model,
    ScipyBackend,
    Solution,
    SolveStatus,
    extract_assignment,
    linear_sum,
    randomized_round,
    threshold_fix,
)


def one_hot_model(num_groups=3, group_size=4):
    model = Model("onehot")
    groups = []
    for g in range(num_groups):
        group = [model.add_binary(f"x{g}_{k}") for k in range(group_size)]
        model.add_constraint(linear_sum(group) == 1)
        groups.append(group)
    return model, groups


def fake_lp_solution(groups, masses):
    values = {}
    for group, group_masses in zip(groups, masses):
        for var, mass in zip(group, group_masses):
            values[var] = mass
    return Solution(status=SolveStatus.OPTIMAL, objective=0.0, values=values)


class TestThresholdFix:
    def test_fixes_above_threshold(self):
        model, groups = one_hot_model(2)
        lp = fake_lp_solution(
            groups, [[0.97, 0.01, 0.01, 0.01], [0.5, 0.5, 0.0, 0.0]]
        )
        report = threshold_fix(model, groups, lp)
        assert report.groups_fixed == 1
        assert report.variables_fixed_one == 1
        assert report.variables_fixed_zero == 3
        assert groups[0][0].lb == 1.0
        assert groups[0][1].ub == 0.0
        # Undecided group untouched.
        assert groups[1][0].ub == 1.0

    def test_paper_default_is_095(self):
        from repro.milp import DEFAULT_FIX_THRESHOLD

        assert DEFAULT_FIX_THRESHOLD == pytest.approx(0.95)

    def test_threshold_validation(self):
        model, groups = one_hot_model(1)
        lp = fake_lp_solution(groups, [[1, 0, 0, 0]])
        with pytest.raises(ModelError):
            threshold_fix(model, groups, lp, threshold=0.4)

    def test_fraction_fixed(self):
        model, groups = one_hot_model(4)
        masses = [[1, 0, 0, 0]] * 2 + [[0.5, 0.5, 0, 0]] * 2
        report = threshold_fix(model, groups, fake_lp_solution(groups, masses))
        assert report.fraction_fixed == pytest.approx(0.5)


class TestRandomizedRound:
    def test_samples_proportionally(self):
        model, groups = one_hot_model(1)
        lp = fake_lp_solution(groups, [[0.7, 0.3, 0.0, 0.0]])
        report = randomized_round(model, groups, lp, random.Random(1))
        assert report.groups_fixed == 1
        winners = [var for var in groups[0] if var.lb == 1.0]
        assert len(winners) == 1
        assert winners[0] in groups[0][:2]

    def test_skips_flat_groups(self):
        model, groups = one_hot_model(1)
        lp = fake_lp_solution(groups, [[0.25, 0.25, 0.25, 0.25]])
        report = randomized_round(model, groups, lp, random.Random(1))
        assert report.groups_fixed == 0

    def test_deterministic_under_seed(self):
        results = []
        for _ in range(2):
            model, groups = one_hot_model(3)
            lp = fake_lp_solution(
                groups,
                [[0.6, 0.4, 0, 0], [0.9, 0.1, 0, 0], [0.55, 0.45, 0, 0]],
            )
            randomized_round(model, groups, lp, random.Random(42))
            results.append(
                tuple(var.lb for group in groups for var in group)
            )
        assert results[0] == results[1]


class TestExtractAssignment:
    def test_decodes_one_hot(self):
        model, groups = one_hot_model(2)
        model_groups = {
            f"op{i}": [(var, f"pe{k}") for k, var in enumerate(group)]
            for i, group in enumerate(groups)
        }
        solution = fake_lp_solution(groups, [[0, 1, 0, 0], [0, 0, 0, 1]])
        decoded = extract_assignment(model_groups, solution)
        assert decoded == {"op0": "pe1", "op1": "pe3"}

    def test_non_integral_rejected(self):
        model, groups = one_hot_model(1)
        model_groups = {
            "op0": [(var, k) for k, var in enumerate(groups[0])]
        }
        solution = fake_lp_solution(groups, [[0.5, 0.5, 0, 0]])
        with pytest.raises(ModelError):
            extract_assignment(model_groups, solution)


class TestEndToEndTwoStep:
    def test_lp_then_fix_then_ilp(self):
        """The paper's pipeline on a small assignment problem."""
        model, groups = one_hot_model(3, 3)
        # Stress-style budget: at most one winner per 'pe' column.
        for k in range(3):
            model.add_constraint(
                linear_sum(group[k] for group in groups) <= 1
            )
        relaxed = model.relaxed()
        lp = relaxed.solve(ScipyBackend())
        relaxed.restore_types()
        assert lp.status.has_solution
        threshold_fix(model, groups, lp)
        final = model.solve(ScipyBackend())
        assert final.status.has_solution
        decoded = extract_assignment(
            {i: [(v, k) for k, v in enumerate(g)] for i, g in enumerate(groups)},
            final,
        )
        assert sorted(decoded.values()) == [0, 1, 2]
