"""ASCII figure renderer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.mttf import VthCurve
from repro.arch import Fabric
from repro.report import ascii_curve, bar_chart, series_csv, stress_grid


def curve(label, slope, mttf=1e8, points=16):
    times = np.linspace(0, 1.5e8, points)
    return VthCurve(
        label=label,
        times_s=times,
        shifts_v=slope * times**0.25,
        mttf_s=mttf,
        failure_shift_v=0.04,
    )


class TestBarChart:
    def test_bars_scale_with_value(self):
        text = bar_chart(
            ["C4F4"], {"low": [2.0], "high": [1.0]}, width=20
        )
        low_line = next(l for l in text.splitlines() if "low" in l)
        high_line = next(l for l in text.splitlines() if "high" in l)
        assert low_line.count("#") == 20
        assert high_line.count("#") == 10

    def test_missing_values_marked(self):
        text = bar_chart(["G"], {"low": [None]})
        assert "(n/a)" in text

    def test_values_annotated(self):
        text = bar_chart(["G"], {"low": [2.52]})
        assert "2.52x" in text

    def test_group_labels_once(self):
        text = bar_chart(["G1", "G2"], {"a": [1, 1], "b": [1, 1]})
        assert text.count("G1") == 1


class TestAsciiCurve:
    def test_contains_markers_and_threshold(self):
        text = ascii_curve([curve("orig", 2e-4), curve("new", 1e-4)])
        assert "o" in text and "x" in text
        assert "=" in text
        assert "orig" in text and "new" in text

    def test_empty(self):
        assert ascii_curve([]) == "(no curves)"

    def test_mttf_in_legend(self):
        text = ascii_curve([curve("orig", 2e-4, mttf=365.25 * 24 * 3600 * 2)])
        assert "2.0y" in text


class TestSeriesCsv:
    def test_columns(self):
        text = series_csv([curve("orig", 2e-4, points=4), curve("new", 1e-4, points=4)])
        lines = text.splitlines()
        assert lines[0] == "time_years,orig,new"
        assert len(lines) == 5
        assert all(len(line.split(",")) == 3 for line in lines[1:])


class TestStressGrid:
    def test_layout(self):
        fabric = Fabric(2, 3)
        grid = stress_grid(fabric, np.arange(6.0))
        lines = grid.splitlines()
        assert len(lines) == 2
        assert "5.0" in lines[1]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            stress_grid(Fabric(2, 2), np.arange(6.0))
