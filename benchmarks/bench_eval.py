"""Evaluation-kernel microbenchmarks (docs/performance.md).

Every Algorithm 1 iteration re-evaluates candidate floorplans: STA
arrival propagation, stress-map assembly, thermal grid solves, path
filtering, and (per accepted solve) the certification audit.  This bench
isolates each evaluation stage on the largest smoke-suite entry and runs
it under both ``REPRO_KERNELS`` modes, so the pytest-benchmark JSON
directly exposes the vector/scalar speedup per stage (group by the
benchmark group, compare the ``mode`` parameter).

The scalar rows are the *reference semantics* — the vector rows must
match them bit-for-bit (asserted here on CPD/MTTF and enforced in depth
by ``tests/kernels``), so any speedup shown is a pure implementation
win, never a numerics change.

Run::

    pytest benchmarks/bench_eval.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.aging import compute_stress_map
from repro.core import AgingAwareFlow
from repro.kernels import kernels_scope
from repro.place import place_baseline
from repro.thermal.hotspot import ThermalSimulator
from repro.timing import analyze
from repro.timing.graph import build_timing_graphs
from repro.timing.kpaths import filter_paths

MODES = ("scalar", "vector")


@pytest.fixture(scope="module")
def eval_inputs(built_benchmarks):
    """Evaluation-stage ingredients for the largest smoke entry."""
    entry, design, fabric = max(
        built_benchmarks.values(),
        key=lambda item: (item[2].num_pes, item[0].pe_count),
    )
    floorplan = place_baseline(design, fabric)
    graphs = build_timing_graphs(design)
    stress = compute_stress_map(design, floorplan)
    return {
        "entry": entry,
        "design": design,
        "fabric": fabric,
        "floorplan": floorplan,
        "graphs": graphs,
        "duty": stress.duty_per_context(),
    }


def _run(benchmark, mode, fn):
    """Benchmark ``fn`` under one kernel mode (lowering caches warmed)."""
    with kernels_scope(mode):
        fn()  # warm the lowering caches: steady-state cost is what matters
        result = benchmark(fn)
    benchmark.extra_info["mode"] = mode
    return result


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="eval-sta")
def test_sta(benchmark, eval_inputs, mode):
    design = eval_inputs["design"]
    floorplan = eval_inputs["floorplan"]
    graphs = eval_inputs["graphs"]
    report = _run(benchmark, mode, lambda: analyze(design, floorplan, graphs))
    benchmark.extra_info["cpd_ns"] = report.cpd_ns
    # Bit-identity spot check against the scalar reference.
    with kernels_scope("scalar"):
        assert analyze(design, floorplan, graphs).cpd_ns == report.cpd_ns


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="eval-stress")
def test_stress(benchmark, eval_inputs, mode):
    design = eval_inputs["design"]
    floorplan = eval_inputs["floorplan"]
    stress = _run(
        benchmark, mode, lambda: compute_stress_map(design, floorplan)
    )
    benchmark.extra_info["max_accumulated_ns"] = stress.max_accumulated_ns


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="eval-thermal")
def test_thermal(benchmark, eval_inputs, mode):
    fabric = eval_inputs["fabric"]
    duty = eval_inputs["duty"]
    with kernels_scope(mode):
        simulator = ThermalSimulator(fabric)  # grid factorised once
    report = _run(benchmark, mode, lambda: simulator.simulate(duty))
    benchmark.extra_info["peak_k"] = report.peak_k


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="eval-pathfilter")
def test_path_filter(benchmark, eval_inputs, mode):
    design = eval_inputs["design"]
    floorplan = eval_inputs["floorplan"]
    graphs = eval_inputs["graphs"]
    result = _run(
        benchmark, mode,
        lambda: filter_paths(design, floorplan, graphs=graphs),
    )
    benchmark.extra_info["monitored_paths"] = len(result.paths)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="eval-full")
def test_full_evaluation(benchmark, eval_inputs, mode):
    """The whole evaluate() pipeline: stress -> thermal -> MTTF."""
    design = eval_inputs["design"]
    fabric = eval_inputs["fabric"]
    floorplan = eval_inputs["floorplan"]
    flow = AgingAwareFlow()
    evaluation = _run(
        benchmark, mode, lambda: flow.evaluate(design, fabric, floorplan)
    )
    benchmark.extra_info["mttf_s"] = evaluation.mttf.mttf_s
    with kernels_scope("scalar"):
        reference = flow.evaluate(design, fabric, floorplan)
    assert reference.mttf.mttf_s == evaluation.mttf.mttf_s
