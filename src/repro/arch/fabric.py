"""The CGRRA fabric: a 2-D grid of PEs with buffered Manhattan interconnect.

The paper models inter-PE wires as buffered segments whose delay is linear
in wire length with a simulated proportionality constant, the *unit wire
delay* (Section V-B).  Wire length between PEs is the Manhattan distance
between their grid positions (Eq. 5).  Primary inputs and outputs attach at
pads just outside the west and east fabric edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.arch.pe import PECell
from repro.errors import ArchitectureError
from repro.units import UNIT_WIRE_DELAY_NS


@dataclass(frozen=True)
class Pad:
    """An I/O pad just outside the fabric edge.

    Pads have real-valued grid coordinates so Manhattan distances to PEs are
    well defined; they carry no delay or stress of their own.
    """

    name: str
    row: float
    col: float

    @property
    def position(self) -> tuple[float, float]:
        return (self.row, self.col)


class Fabric:
    """A ``rows x cols`` grid of PEs.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.  The paper evaluates square fabrics 4x4, 8x8 and
        16x16; rectangular fabrics are supported everywhere except the
        critical-path *rotation* optimisation, which requires the 90-degree
        rotations to stay on-grid.
    unit_wire_delay_ns:
        Delay of one grid unit of buffered wire.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        unit_wire_delay_ns: float = UNIT_WIRE_DELAY_NS,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ArchitectureError(f"fabric dimensions must be positive: {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.unit_wire_delay_ns = unit_wire_delay_ns
        self._pes = tuple(
            PECell(index=r * cols + c, row=r, col=c)
            for r in range(rows)
            for c in range(cols)
        )
        #: Row/col coordinate arrays indexed by PE index (used to build the
        #: linear coordinate expressions of the MILP).
        self.row_of = np.array([pe.row for pe in self._pes], dtype=float)
        self.col_of = np.array([pe.col for pe in self._pes], dtype=float)

    # -- basic queries ---------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def pes(self) -> Sequence[PECell]:
        return self._pes

    def pe(self, index: int) -> PECell:
        """PE by linear index."""
        if not 0 <= index < self.num_pes:
            raise ArchitectureError(f"PE index {index} out of range 0..{self.num_pes - 1}")
        return self._pes[index]

    def pe_at(self, row: int, col: int) -> PECell:
        """PE by grid coordinates."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ArchitectureError(
                f"coordinates ({row},{col}) outside {self.rows}x{self.cols} fabric"
            )
        return self._pes[row * self.cols + col]

    def index_at(self, row: int, col: int) -> int:
        """Linear index of the PE at grid coordinates."""
        return self.pe_at(row, col).index

    def __iter__(self) -> Iterator[PECell]:
        return iter(self._pes)

    def __contains__(self, position: tuple[int, int]) -> bool:
        row, col = position
        return 0 <= row < self.rows and 0 <= col < self.cols

    # -- geometry ----------------------------------------------------------------
    def manhattan(self, a: int, b: int) -> int:
        """Manhattan distance between two PEs by index, in grid units."""
        pa, pb = self.pe(a), self.pe(b)
        return abs(pa.row - pb.row) + abs(pa.col - pb.col)

    @staticmethod
    def manhattan_points(a: tuple[float, float], b: tuple[float, float]) -> float:
        """Manhattan distance between arbitrary points (PEs or pads)."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def wire_delay(self, length: float) -> float:
        """Delay of a buffered wire of ``length`` grid units, in ns (Eq. 4/5)."""
        if length < 0:
            raise ArchitectureError(f"negative wire length {length}")
        return length * self.unit_wire_delay_ns

    def wire_delay_between(self, a: int, b: int) -> float:
        """Wire delay between two PEs by index, in ns."""
        return self.wire_delay(self.manhattan(a, b))

    def neighbors(self, index: int) -> list[int]:
        """Indices of the 4-connected neighbours of a PE."""
        pe = self.pe(index)
        result = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            row, col = pe.row + dr, pe.col + dc
            if (row, col) in self:
                result.append(row * self.cols + col)
        return result

    def indices_by_distance(self, origin: int) -> list[int]:
        """All PE indices sorted by Manhattan distance from ``origin``.

        Ties are broken by linear index so the ordering is deterministic —
        important for the candidate-windowing used on large fabrics.
        """
        o = self.pe(origin)
        return sorted(
            range(self.num_pes),
            key=lambda k: (
                abs(self.pe(k).row - o.row) + abs(self.pe(k).col - o.col),
                k,
            ),
        )

    # -- I/O pads ---------------------------------------------------------------
    def input_pad(self, ordinal: int) -> Pad:
        """Pad for the ``ordinal``-th primary input, on the west edge."""
        return Pad(f"in{ordinal}", row=float(ordinal % self.rows), col=-1.0)

    def output_pad(self, ordinal: int) -> Pad:
        """Pad for the ``ordinal``-th primary output, on the east edge."""
        return Pad(f"out{ordinal}", row=float(ordinal % self.rows), col=float(self.cols))

    # -- misc ----------------------------------------------------------------------
    def is_square(self) -> bool:
        return self.rows == self.cols

    def center(self) -> tuple[float, float]:
        """Geometric centre of the grid (used by the rotation transforms)."""
        return ((self.rows - 1) / 2.0, (self.cols - 1) / 2.0)

    def __repr__(self) -> str:
        return f"Fabric({self.rows}x{self.cols}, uwd={self.unit_wire_delay_ns}ns)"
