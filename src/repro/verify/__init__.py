"""Trust-but-verify: independent certification of solver results.

The fast path (incremental compilation, RHS restamping, warm starts) is
never allowed to be its own judge.  This package re-checks accepted
solutions row-by-row against the *uncompiled* model, re-derives the
paper's domain invariants (stress budget, exactly-one-PE, frozen pinning,
CPD preservation) from first principles, certifies saved run artifacts
(``repro verify``), and cross-checks the two solver backends against each
other.  See ``docs/robustness.md`` ("Certification").
"""

from repro.verify.certifier import (
    ABS_TOL,
    INT_TOL,
    KIND_BOUNDS,
    KIND_CPD,
    KIND_FROZEN,
    KIND_INTEGRALITY,
    KIND_MISSING_VALUE,
    KIND_ROW,
    KIND_SCHEDULE,
    KIND_SLOT,
    KIND_STRESS,
    KIND_UNASSIGNED,
    REL_TOL,
    Certificate,
    Violation,
    certify_floorplan,
    certify_remap,
    certify_solution,
)
from repro.verify.artifact import KIND_SUMMARY, certify_artifact
from repro.verify.differential import (
    BACKEND_NAMES,
    differential_solve,
    make_backend,
)

__all__ = [
    "ABS_TOL",
    "BACKEND_NAMES",
    "Certificate",
    "INT_TOL",
    "KIND_BOUNDS",
    "KIND_CPD",
    "KIND_FROZEN",
    "KIND_INTEGRALITY",
    "KIND_MISSING_VALUE",
    "KIND_ROW",
    "KIND_SCHEDULE",
    "KIND_SLOT",
    "KIND_STRESS",
    "KIND_SUMMARY",
    "KIND_UNASSIGNED",
    "REL_TOL",
    "Violation",
    "certify_artifact",
    "certify_floorplan",
    "certify_remap",
    "certify_solution",
    "differential_solve",
    "make_backend",
]
